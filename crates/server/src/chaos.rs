//! Deterministic network fault injection: [`ChaosStream`] wraps any
//! transport and misbehaves on a seeded schedule.
//!
//! This is the network-layer sibling of `scc_storage::FaultyDisk`
//! (DESIGN.md §11): every fault decision is a pure function of
//! `(plan.seed, connection id, operation index)`, so a run with the
//! same seed replays the exact same resets, truncations and stalls —
//! which is what lets `scc loadgen --chaos` assert *zero* incorrect
//! responses rather than "mostly fine". The injected faults are the
//! ways real networks fail:
//!
//! * **reset** — the peer vanishes; the op fails with
//!   `ConnectionReset` and every later op on the stream fails too.
//! * **truncate** — a write delivers only a prefix and then the
//!   connection dies: the receiver sees a *torn frame* (the framing
//!   layer reports `UnexpectedEof`, never a misparse).
//! * **short write** — a write honestly accepts only part of the
//!   buffer (a full send buffer); correct callers loop, buggy callers
//!   lose bytes. Exercises the explicit loop in `frame::write_frame`.
//! * **delayed / throttled read** — bytes arrive late or a few at a
//!   time, landing reads at arbitrary offsets inside a frame.
//! * **stall** — a slow-loris pause long enough to trip the other
//!   side's read/write timeout.
//!
//! Faults compose: one plan can carry nonzero rates for all of them,
//! and each operation draws independently per fault with a distinct
//! salt, exactly like `FaultPlan`'s per-(chunk, attempt) draws.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A connection transport the protocol [`crate::Client`] can run over:
/// either a bare [`TcpStream`] or a [`ChaosStream`] wrapping one.
pub trait Transport: Read + Write + Send {
    /// Per-call read timeout (`None` blocks forever).
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()>;
    /// Per-call write timeout (`None` blocks forever).
    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()>;
}

impl Transport for TcpStream {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, d)
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, d)
    }
}

/// Per-operation fault probabilities for a [`ChaosStream`], drawn
/// deterministically from `seed` and the `(connection, op)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed for the per-(connection, op) hash.
    pub seed: u64,
    /// Probability an operation finds the connection reset.
    pub reset: f64,
    /// Probability a write delivers a truncated prefix and then the
    /// connection dies (a torn frame on the receiver).
    pub truncate: f64,
    /// Probability a write accepts only a prefix of the buffer
    /// (honest short return; the caller must loop).
    pub short_write: f64,
    /// Probability a read is delayed by [`ChaosPlan::delay_ms`].
    pub delay: f64,
    /// Read delay, in milliseconds.
    pub delay_ms: u64,
    /// Probability a read is throttled to at most a few bytes.
    pub throttle: f64,
    /// Probability an operation stalls for [`ChaosPlan::stall_ms`]
    /// first (slow-loris; meant to trip the peer's timeouts).
    pub stall: f64,
    /// Stall length, in milliseconds.
    pub stall_ms: u64,
    /// Deterministic override: the stream delivers exactly this many
    /// bytes of written data, then dies. Lets tests place a torn frame
    /// at *every* byte offset of a frame, not just random ones.
    pub cut_write_at: Option<usize>,
}

impl ChaosPlan {
    /// A plan that never faults (baseline; also what `--chaos` tests
    /// compose single faults on top of).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            reset: 0.0,
            truncate: 0.0,
            short_write: 0.0,
            delay: 0.0,
            delay_ms: 1,
            throttle: 0.0,
            stall: 0.0,
            stall_ms: 50,
            cut_write_at: None,
        }
    }

    /// The named single-fault plans the chaos harness sweeps, each at
    /// rate `p`: `(name, plan)` pairs covering every injected fault
    /// type.
    pub fn matrix(seed: u64, p: f64) -> Vec<(&'static str, ChaosPlan)> {
        let base = ChaosPlan::none(seed);
        vec![
            ("reset", ChaosPlan { reset: p, ..base }),
            ("truncate", ChaosPlan { truncate: p, ..base }),
            ("short_write", ChaosPlan { short_write: p.max(0.5), ..base }),
            ("delay", ChaosPlan { delay: p.max(0.25), delay_ms: 2, ..base }),
            ("throttle", ChaosPlan { throttle: p.max(0.25), ..base }),
            ("stall", ChaosPlan { stall: p, stall_ms: 40, ..base }),
        ]
    }

    /// Everything at once: the composite plan `scc loadgen --chaos`
    /// runs by default. Lethal faults (reset, truncate, stall) are
    /// rare *per operation* because a single request — a streamed scan
    /// especially — spans on the order of a hundred reads and writes,
    /// and the whole request must survive one attempt end-to-end;
    /// benign faults (short writes, throttles, delays) are frequent
    /// because correct code absorbs them without a retry. A few
    /// hundred requests see every fault type repeatedly while staying
    /// inside the default retry budget.
    pub fn composite(seed: u64) -> Self {
        ChaosPlan {
            reset: 0.002,
            truncate: 0.002,
            short_write: 0.30,
            delay: 0.05,
            delay_ms: 1,
            throttle: 0.05,
            stall: 0.001,
            stall_ms: 30,
            ..ChaosPlan::none(seed)
        }
    }
}

/// SplitMix64 finalizer, the same mixer `FaultyDisk` uses.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fault-injecting decorator over any transport.
///
/// Faults are a pure function of `(plan.seed, conn, op index)`; the
/// `conn` id distinguishes connections sharing one plan (each retry
/// attempt gets a fresh id, so a fault that killed attempt 1 does not
/// deterministically kill attempt 2 — the behaviour bounded retry
/// exploits, mirroring `FaultyDisk`'s per-attempt draws).
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    plan: ChaosPlan,
    conn: u64,
    op: u64,
    delivered: usize,
    dead: bool,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner` with the given plan; `conn` salts the draws.
    pub fn new(inner: S, plan: ChaosPlan, conn: u64) -> Self {
        Self { inner, plan, conn, op: 0, delivered: 0, dead: false }
    }

    /// Operations performed so far (reads + writes, including faulted
    /// ones).
    pub fn ops(&self) -> u64 {
        self.op
    }

    /// Whether an injected reset or truncation has killed the stream.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn draw(&self, op: u64, salt: u64) -> f64 {
        let h = mix(self.plan.seed ^ mix(self.conn) ^ mix(op << 8 | salt));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    fn draw_u64(&self, op: u64, salt: u64) -> u64 {
        mix(self.plan.seed ^ mix(self.conn) ^ mix(op << 8 | salt))
    }

    fn reset_err() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos: injected connection reset")
    }

    /// Common per-op preamble: bump the op counter, stall/reset draws.
    fn begin_op(&mut self) -> io::Result<u64> {
        if self.dead {
            return Err(Self::reset_err());
        }
        self.op += 1;
        let op = self.op;
        if self.draw(op, 1) < self.plan.stall {
            std::thread::sleep(Duration::from_millis(self.plan.stall_ms));
        }
        if self.draw(op, 2) < self.plan.reset {
            self.dead = true;
            return Err(Self::reset_err());
        }
        Ok(op)
    }
}

impl<S: Read + Write> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let op = self.begin_op()?;
        if self.draw(op, 3) < self.plan.delay {
            std::thread::sleep(Duration::from_millis(self.plan.delay_ms));
        }
        let cap = if self.draw(op, 4) < self.plan.throttle {
            // 1..=4 bytes: lands read boundaries inside length
            // prefixes, payloads and trailing checksums alike.
            (1 + self.draw_u64(op, 5) % 4) as usize
        } else {
            buf.len()
        };
        let cap = cap.min(buf.len());
        self.inner.read(&mut buf[..cap])
    }
}

impl<S: Read + Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let op = self.begin_op()?;
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        if let Some(cut) = self.plan.cut_write_at {
            // Deterministic torn frame: deliver exactly `cut` bytes
            // over the stream's lifetime, then die.
            if self.delivered >= cut {
                self.dead = true;
                let _ = self.inner.flush();
                return Err(Self::reset_err());
            }
            let n = buf.len().min(cut - self.delivered);
            let w = self.inner.write(&buf[..n])?;
            self.delivered += w;
            return Ok(w);
        }
        if self.draw(op, 6) < self.plan.truncate {
            // Deliver a proper prefix (possibly empty), then die. The
            // receiver sees a torn frame, not a checksum failure.
            let n = (self.draw_u64(op, 7) % buf.len() as u64) as usize;
            if n > 0 {
                let _ = self.inner.write(&buf[..n]);
                let _ = self.inner.flush();
            }
            self.dead = true;
            return Err(Self::reset_err());
        }
        if self.draw(op, 8) < self.plan.short_write && buf.len() > 1 {
            // Honest short write: accept a nonempty proper prefix.
            let n = 1 + (self.draw_u64(op, 9) % (buf.len() as u64 - 1)) as usize;
            let w = self.inner.write(&buf[..n])?;
            self.delivered += w;
            return Ok(w);
        }
        let w = self.inner.write(buf)?;
        self.delivered += w;
        Ok(w)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(Self::reset_err());
        }
        self.inner.flush()
    }
}

impl<S: Transport> Transport for ChaosStream<S> {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(d)
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_core::frame;
    use std::io::Cursor;

    /// In-memory duplex stand-in: reads from `input`, writes to `out`.
    struct Pipe {
        input: Cursor<Vec<u8>>,
        out: Vec<u8>,
    }

    impl Read for Pipe {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Pipe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.out.write(buf)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn pipe(input: Vec<u8>) -> Pipe {
        Pipe { input: Cursor::new(input), out: Vec::new() }
    }

    #[test]
    fn same_seed_same_faults_different_seed_different_faults() {
        // Non-lethal faults only: a reset would freeze the trace into
        // all-errors and hide the schedule being compared.
        let plan = ChaosPlan { short_write: 0.5, throttle: 0.5, ..ChaosPlan::none(7) };
        let trace = |plan: ChaosPlan, conn: u64| {
            let mut s = ChaosStream::new(pipe(vec![0u8; 4096]), plan, conn);
            let mut events = Vec::new();
            for _ in 0..40 {
                let mut buf = [0u8; 8];
                events.push(s.read(&mut buf).unwrap_or(99));
                events.push(s.write(&[1u8; 8]).unwrap_or(99));
            }
            events
        };
        // Same (seed, conn) → identical fault schedule.
        assert_eq!(trace(plan, 11), trace(plan, 11));
        // Different seeds and different connection ids both decorrelate.
        assert_ne!(trace(plan, 11), trace(ChaosPlan { seed: 8, ..plan }, 11));
        assert_ne!(trace(plan, 1), trace(plan, 2));
    }

    #[test]
    fn reset_kills_the_stream_permanently() {
        let plan = ChaosPlan { reset: 1.0, ..ChaosPlan::none(3) };
        let mut s = ChaosStream::new(pipe(vec![0u8; 16]), plan, 0);
        let mut buf = [0u8; 4];
        for _ in 0..3 {
            let err = s.read(&mut buf).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        }
        assert!(s.is_dead());
        assert_eq!(s.write(&[1]).unwrap_err().kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn cut_write_at_every_offset_tears_the_frame_exactly_there() {
        let payload = b"fault injection at the network layer";
        let framed = frame::encode(payload);
        for cut in 0..framed.len() {
            let plan = ChaosPlan { cut_write_at: Some(cut), ..ChaosPlan::none(1) };
            let mut s = ChaosStream::new(pipe(Vec::new()), plan, cut as u64);
            let err = frame::write_frame(&mut s, payload).unwrap_err();
            assert_eq!(err, frame::FrameError::Io(io::ErrorKind::ConnectionReset), "cut {cut}");
            assert_eq!(&s.inner.out[..], &framed[..cut], "cut {cut}");
            // The receiving side of those bytes sees a torn frame (or,
            // at cut 0, a clean EOF) — never a misparse.
            let res = frame::read_frame(&mut Cursor::new(&s.inner.out), framed.len());
            match res.unwrap_err() {
                frame::FrameError::Eof => assert_eq!(cut, 0),
                frame::FrameError::Io(k) => assert_eq!(k, io::ErrorKind::UnexpectedEof),
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn short_writes_never_lose_bytes_through_the_frame_writer() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(2000).collect();
        let plan = ChaosPlan { short_write: 1.0, ..ChaosPlan::none(9) };
        let mut s = ChaosStream::new(pipe(Vec::new()), plan, 5);
        frame::write_frame(&mut s, &payload).unwrap();
        assert_eq!(
            frame::read_frame(&mut Cursor::new(&s.inner.out), payload.len()).unwrap(),
            payload
        );
    }

    #[test]
    fn throttled_reads_still_reassemble_whole_frames() {
        let payload: Vec<u8> = (0..1000u32).flat_map(|v| v.to_le_bytes()).collect();
        let plan = ChaosPlan { throttle: 1.0, ..ChaosPlan::none(21) };
        let mut s = ChaosStream::new(pipe(frame::encode(&payload)), plan, 2);
        assert_eq!(frame::read_frame(&mut s, payload.len()).unwrap(), payload);
        assert!(s.ops() > (payload.len() / 4) as u64, "reads were not throttled");
    }
}
