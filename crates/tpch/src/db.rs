//! The stored TPC-H database: raw columns loaded into `scc-storage`
//! tables, plus the query-execution plumbing shared by all eleven
//! queries.

use crate::gen::RawTables;
use scc_engine::{Batch, ExplainNode};
use scc_storage::disk::{stats_handle, ScanStats, StatsHandle};
use scc_storage::{
    DecompressionGranularity, Disk, Layout, ParallelScan, PoolHandle, Scan, ScanMode, ScanOptions,
    Table, TableBuilder,
};
use std::sync::Arc;
use std::time::Instant;

/// The eight stored tables plus the raw data they were loaded from (kept
/// for reference-result validation in tests).
pub struct TpchDb {
    /// Scale factor.
    pub sf: f64,
    /// Raw generated columns.
    pub raw: RawTables,
    /// LINEITEM.
    pub lineitem: Arc<Table>,
    /// ORDERS.
    pub orders: Arc<Table>,
    /// CUSTOMER.
    pub customer: Arc<Table>,
    /// SUPPLIER.
    pub supplier: Arc<Table>,
    /// PART.
    pub part: Arc<Table>,
    /// PARTSUPP.
    pub partsupp: Arc<Table>,
    /// NATION.
    pub nation: Arc<Table>,
    /// REGION.
    pub region: Arc<Table>,
}

impl TpchDb {
    /// Loads generated data into compressed column stores. `seg_rows`
    /// defaults to [`scc_storage::SEGMENT_ROWS`] when `None`.
    pub fn load(raw: RawTables, seg_rows: Option<usize>) -> Self {
        let sr = seg_rows.unwrap_or(scc_storage::SEGMENT_ROWS);
        let l = &raw.lineitem;
        let lineitem = TableBuilder::new("lineitem")
            .seg_rows(sr)
            .add_i64("l_orderkey", l.orderkey.clone())
            .add_i64("l_partkey", l.partkey.clone())
            .add_i64("l_suppkey", l.suppkey.clone())
            .add_i32("l_linenumber", l.linenumber.clone())
            .add_i64("l_quantity", l.quantity.clone())
            .add_i64("l_extendedprice", l.extendedprice.clone())
            .add_i64("l_discount", l.discount.clone())
            .add_i64("l_tax", l.tax.clone())
            .add_str("l_returnflag", l.returnflag.clone())
            .add_str("l_linestatus", l.linestatus.clone())
            .add_i32("l_shipdate", l.shipdate.clone())
            .add_i32("l_commitdate", l.commitdate.clone())
            .add_i32("l_receiptdate", l.receiptdate.clone())
            .add_str("l_shipinstruct", l.shipinstruct.clone())
            .add_str("l_shipmode", l.shipmode.clone())
            .add_blob("l_comment", l.comment_bytes)
            .build();
        let o = &raw.orders;
        let orders = TableBuilder::new("orders")
            .seg_rows(sr)
            .add_i64("o_orderkey", o.orderkey.clone())
            .add_i64("o_custkey", o.custkey.clone())
            .add_str("o_orderstatus", o.orderstatus.clone())
            .add_i64("o_totalprice", o.totalprice.clone())
            .add_i32("o_orderdate", o.orderdate.clone())
            .add_str("o_orderpriority", o.orderpriority.clone())
            .add_i32("o_shippriority", o.shippriority.clone())
            .add_blob("o_comment", o.comment_bytes)
            .build();
        let c = &raw.customer;
        let customer = TableBuilder::new("customer")
            .seg_rows(sr)
            .add_i64("c_custkey", c.custkey.clone())
            .add_i64("c_nationkey", c.nationkey.clone())
            .add_i64("c_acctbal", c.acctbal.clone())
            .add_str("c_mktsegment", c.mktsegment.clone())
            .add_blob("c_comment", c.comment_bytes)
            .build();
        let s = &raw.supplier;
        let supplier = TableBuilder::new("supplier")
            .seg_rows(sr)
            .add_i64("s_suppkey", s.suppkey.clone())
            .add_i64("s_nationkey", s.nationkey.clone())
            .add_i64("s_acctbal", s.acctbal.clone())
            .add_blob("s_comment", s.comment_bytes)
            .build();
        let p = &raw.part;
        let part = TableBuilder::new("part")
            .seg_rows(sr)
            .add_i64("p_partkey", p.partkey.clone())
            .add_str("p_mfgr", p.mfgr.clone())
            .add_str("p_brand", p.brand.clone())
            .add_str("p_type", p.ptype.clone())
            .add_i32("p_size", p.size.clone())
            .add_str("p_container", p.container.clone())
            .add_i64("p_retailprice", p.retailprice.clone())
            .add_blob("p_comment", p.comment_bytes)
            .build();
        let ps = &raw.partsupp;
        let partsupp = TableBuilder::new("partsupp")
            .seg_rows(sr)
            .add_i64("ps_partkey", ps.partkey.clone())
            .add_i64("ps_suppkey", ps.suppkey.clone())
            .add_i32("ps_availqty", ps.availqty.clone())
            .add_i64("ps_supplycost", ps.supplycost.clone())
            .add_blob("ps_comment", ps.comment_bytes)
            .build();
        let n = &raw.nation;
        let nation = TableBuilder::new("nation")
            .seg_rows(sr)
            .add_i64("n_nationkey", n.nationkey.clone())
            .add_str("n_name", n.name.clone())
            .add_i64("n_regionkey", n.regionkey.clone())
            .build();
        let r = &raw.region;
        let region = TableBuilder::new("region")
            .seg_rows(sr)
            .add_i64("r_regionkey", r.regionkey.clone())
            .add_str("r_name", r.name.clone())
            .build();
        Self {
            sf: raw.sf,
            raw,
            lineitem,
            orders,
            customer,
            supplier,
            part,
            partsupp,
            nation,
            region,
        }
    }

    /// Generates and loads in one step.
    pub fn generate(sf: f64, seed: u64) -> Self {
        Self::load(crate::gen::generate(sf, seed), None)
    }
}

/// How a query run scans its tables.
#[derive(Clone)]
pub struct QueryConfig {
    /// Compressed or plain representation.
    pub mode: ScanMode,
    /// DSM or PAX I/O accounting.
    pub layout: Layout,
    /// Vector-wise or page-wise decompression.
    pub granularity: DecompressionGranularity,
    /// The modeled disk.
    pub disk: Disk,
    /// Tuples per vector.
    pub vector_size: usize,
    /// Optional shared buffer pool.
    pub pool: Option<PoolHandle>,
    /// Scan worker threads. `1` runs the serial [`Scan`]; higher counts
    /// run every table scan as a [`ParallelScan`] over that many
    /// workers (the rest of the pipeline stays on the calling thread).
    pub threads: usize,
    /// Compressed-domain predicate pushdown: scans emit codes and
    /// `Select` filters before decompression (see
    /// [`ScanOptions::code_scan`]). Off reproduces the decode-then-test
    /// baseline.
    pub code_scan: bool,
}

impl Default for QueryConfig {
    fn default() -> Self {
        Self {
            mode: ScanMode::Compressed,
            layout: Layout::Dsm,
            granularity: DecompressionGranularity::VectorWise,
            disk: Disk::middle_end(),
            vector_size: scc_engine::VECTOR_SIZE,
            pool: None,
            threads: 1,
            code_scan: true,
        }
    }
}

impl QueryConfig {
    /// Builds a scan over `cols` of `table` under this config, reporting
    /// into `stats`.
    pub fn scan(
        &self,
        table: &Arc<Table>,
        cols: &[&str],
        stats: &StatsHandle,
    ) -> Box<dyn scc_engine::Operator> {
        let opts = ScanOptions {
            mode: self.mode,
            granularity: self.granularity,
            vector_size: self.vector_size,
            disk: self.disk,
            layout: self.layout,
            code_scan: self.code_scan,
        };
        if self.threads > 1 {
            Box::new(ParallelScan::new(
                Arc::clone(table),
                cols,
                opts,
                Arc::clone(stats),
                self.pool.clone(),
                self.threads,
            ))
        } else {
            Box::new(Scan::new(Arc::clone(table), cols, opts, Arc::clone(stats), self.pool.clone()))
        }
    }
}

/// Result of one query execution.
pub struct QueryRun {
    /// The result rows.
    pub batch: Batch,
    /// Accumulated scan counters (I/O, decompression).
    pub stats: ScanStats,
    /// Measured wall-clock CPU seconds (simulated I/O does not sleep, so
    /// this is pure compute: decompression + processing).
    pub cpu_seconds: f64,
    /// Post-execution operator tree with per-operator profiles (rows,
    /// vectors, calls, wall time) — the `scc explain` payload.
    pub explain: ExplainNode,
}

impl QueryRun {
    /// Total modeled elapsed time: CPU plus I/O stalls (prefetched I/O
    /// overlaps compute; see `scc_storage::disk`).
    pub fn total_seconds(&self) -> f64 {
        self.cpu_seconds + self.stats.stall_seconds(self.cpu_seconds)
    }

    /// Processing seconds excluding decompression.
    pub fn processing_seconds(&self) -> f64 {
        (self.cpu_seconds - self.stats.decompress_seconds).max(0.0)
    }
}

/// Runs a query closure, timing it and collecting its stats. The closure
/// returns the result batch plus the executed plan's explain tree.
pub fn run_query(f: impl FnOnce(&StatsHandle) -> (Batch, ExplainNode)) -> QueryRun {
    let stats = stats_handle();
    let t0 = Instant::now();
    let (batch, explain) = f(&stats);
    let cpu_seconds = t0.elapsed().as_secs_f64();
    let stats = *stats.lock().unwrap();
    QueryRun { batch, stats, cpu_seconds, explain }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_engine::Operator as _;

    #[test]
    fn load_compresses_lineitem_well() {
        let db = TpchDb::generate(0.002, 1);
        // The paper reports 3-4x on TPC-H columns (DSM, excluding
        // comments). Check the scannable lineitem columns.
        let cols = [
            "l_orderkey",
            "l_suppkey",
            "l_linenumber",
            "l_quantity",
            "l_discount",
            "l_tax",
            "l_shipdate",
            "l_commitdate",
            "l_receiptdate",
        ];
        let ratio = db.lineitem.ratio_over(&cols);
        assert!(ratio > 2.5, "lineitem ratio {ratio}");
    }

    #[test]
    fn scan_roundtrips_through_storage() {
        let db = TpchDb::generate(0.001, 2);
        let cfg = QueryConfig::default();
        let run = run_query(|stats| {
            let mut scan = cfg.scan(&db.lineitem, &["l_orderkey", "l_quantity"], stats);
            let batch = scc_engine::ops::collect(scan.as_mut());
            (batch, scan.explain())
        });
        assert!(run.explain.label.starts_with("Scan(lineitem"), "label {}", run.explain.label);
        assert_eq!(run.explain.profile.rows, run.batch.len() as u64);
        assert_eq!(run.batch.len(), db.raw.lineitem.orderkey.len());
        assert_eq!(run.batch.col(0).as_i64(), &db.raw.lineitem.orderkey[..]);
        assert_eq!(run.batch.col(1).as_i64(), &db.raw.lineitem.quantity[..]);
        assert!(run.stats.io_bytes > 0);
        assert!(run.total_seconds() >= run.cpu_seconds);
    }
}
