//! Date arithmetic: days since 1992-01-01 stored as `i32` (the TPC-H
//! data window is 1992-01-01 .. 1998-12-31).

/// A date as days since 1992-01-01.
pub type Date = i32;

const DAYS_IN_MONTH: [i32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days since 1992-01-01 for a calendar date (1992 <= year <= 1998 for
/// TPC-H data, but any year >= 1992 works).
pub fn date(year: i32, month: i32, day: i32) -> Date {
    assert!((1..=12).contains(&month) && day >= 1);
    let mut days = 0i32;
    for y in 1992..year {
        days += if is_leap(y) { 366 } else { 365 };
    }
    for m in 1..month {
        days += DAYS_IN_MONTH[(m - 1) as usize];
        if m == 2 && is_leap(year) {
            days += 1;
        }
    }
    days + day - 1
}

/// `(year, month, day)` of a [`Date`].
pub fn ymd(mut d: Date) -> (i32, i32, i32) {
    let mut year = 1992;
    loop {
        let len = if is_leap(year) { 366 } else { 365 };
        if d < len {
            break;
        }
        d -= len;
        year += 1;
    }
    let mut month = 1;
    loop {
        let mut len = DAYS_IN_MONTH[(month - 1) as usize];
        if month == 2 && is_leap(year) {
            len += 1;
        }
        if d < len {
            break;
        }
        d -= len;
        month += 1;
    }
    (year, month, d + 1)
}

/// The year of a date (used by Q7's `extract(year)`).
pub fn year_of(d: Date) -> i32 {
    ymd(d).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(date(1992, 1, 1), 0);
    }

    #[test]
    fn known_offsets() {
        assert_eq!(date(1992, 2, 1), 31);
        assert_eq!(date(1993, 1, 1), 366); // 1992 is a leap year
        assert_eq!(date(1994, 1, 1), 731);
        assert_eq!(date(1995, 3, 15), date(1995, 1, 1) + 31 + 28 + 14);
    }

    #[test]
    fn ymd_roundtrip() {
        for d in (0..2557).step_by(13) {
            let (y, m, day) = ymd(d);
            assert_eq!(date(y, m, day), d, "day {d} -> {y}-{m}-{day}");
        }
    }

    #[test]
    fn leap_year_february() {
        assert_eq!(date(1992, 3, 1) - date(1992, 2, 28), 2);
        assert_eq!(date(1993, 3, 1) - date(1993, 2, 28), 1);
    }

    #[test]
    fn year_extraction() {
        assert_eq!(year_of(date(1995, 7, 4)), 1995);
        assert_eq!(year_of(date(1998, 12, 31)), 1998);
    }
}
