//! TPC-H substrate: a dbgen-style data generator and the eleven benchmark
//! queries the paper evaluates (Q1, 3, 4, 5, 6, 7, 11, 14, 15, 18, 21),
//! written as hand-built vectorized plans over `scc-engine` operators and
//! `scc-storage` compressed scans.
//!
//! The generator follows the TPC-H 2.1 dbgen rules for distributions
//! (dates, quantities, prices, priorities, ship modes, nation/region
//! topology) at laptop scale factors; free-text fields (comments, names,
//! addresses) are modeled as uncompressible blobs of the spec's average
//! widths, matching the paper's observation that comment fields "could
//! not be compressed with our algorithms". Order keys are dense rather
//! than dbgen's sparse 4-of-32 pattern (documented simplification; it
//! only makes PFOR-DELTA's job *harder*).

#![warn(missing_docs)]

pub mod dates;
pub mod db;
pub mod gen;
pub mod partition;
pub mod queries;

pub use dates::{date, Date};
pub use db::{QueryConfig, QueryRun, TpchDb};
pub use gen::{generate, RawTables, SCALE_BASE_ORDERS};
pub use partition::{PartitionedTable, PartitionedTpch};
