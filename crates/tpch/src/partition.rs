//! Partitioned TPC-H generation: every table of a [`TpchDb`], range-split
//! into segment-aligned partitions and placed on cluster nodes.
//!
//! The partition tables carry the *same encoded segment bytes* as the
//! unsharded tables (`scc_storage::partition_table` re-encodes each
//! aligned slice with the table-global string dictionaries), so a
//! scatter-gather scan that concatenates partitions in order is
//! byte-identical to the single-node scan — the acceptance bar for the
//! cluster coordinator.

use crate::db::TpchDb;
use scc_storage::{PartitionManifest, Table};
use std::sync::Arc;

/// All eight TPC-H table names, in the order [`TpchDb`] stores them.
pub const TABLE_NAMES: [&str; 8] =
    ["lineitem", "orders", "customer", "supplier", "part", "partsupp", "nation", "region"];

/// One table's placement: its manifest plus the physical partition
/// tables (index `p` ↔ `manifest.bounds[p]`).
pub struct PartitionedTable {
    /// Partition bounds and node assignment.
    pub manifest: PartitionManifest,
    /// The partition tables, named `"{table}#p{p}"`.
    pub parts: Vec<Arc<Table>>,
}

/// A fully partitioned TPC-H database for an `nodes`-node cluster.
pub struct PartitionedTpch {
    /// Per-table placements, in [`TABLE_NAMES`] order.
    pub tables: Vec<PartitionedTable>,
}

impl PartitionedTpch {
    /// Partitions every table of `db` into `partitions` ranges assigned
    /// across `nodes` nodes (primary `p % nodes`, replica next
    /// round-robin — the same assignment the cluster topology derives).
    pub fn build(db: &TpchDb, partitions: usize, nodes: usize) -> Self {
        let tables = [
            &db.lineitem,
            &db.orders,
            &db.customer,
            &db.supplier,
            &db.part,
            &db.partsupp,
            &db.nation,
            &db.region,
        ]
        .into_iter()
        .map(|t| {
            let manifest =
                PartitionManifest::range(&t.name, t.n_rows(), t.seg_rows(), partitions, nodes);
            let parts = scc_storage::partition_table(t, &manifest);
            PartitionedTable { manifest, parts }
        })
        .collect();
        Self { tables }
    }

    /// The placement of one table, by logical name.
    pub fn table(&self, name: &str) -> Option<&PartitionedTable> {
        self.tables.iter().find(|t| t.manifest.table == name)
    }

    /// Every partition table a node hosts: its primaries plus the
    /// replicas it carries for other nodes' partitions.
    pub fn tables_for_node(&self, node: usize) -> Vec<Arc<Table>> {
        let mut out = Vec::new();
        for t in &self.tables {
            for p in 0..t.manifest.partitions() {
                if t.manifest.primary[p] == node || t.manifest.replica[p] == node {
                    out.push(Arc::clone(&t.parts[p]));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_partitions_and_every_node_covers_all_partitions_with_its_peer() {
        let db = TpchDb::generate(0.002, 42);
        let parted = PartitionedTpch::build(&db, 4, 2);
        assert_eq!(parted.tables.len(), 8);
        for t in &parted.tables {
            let rows: usize = (0..t.manifest.partitions()).map(|p| t.manifest.rows_in(p)).sum();
            assert_eq!(rows, t.manifest.n_rows);
            // Each partition lives on exactly two distinct nodes.
            for p in 0..t.manifest.partitions() {
                assert_ne!(t.manifest.primary[p], t.manifest.replica[p]);
            }
        }
        // A node's hosted set includes every partition where it is
        // primary or replica — with 2 nodes, that is all of them.
        let li = parted.table("lineitem").unwrap();
        assert_eq!(parted.tables_for_node(0).len(), parted.tables.len() * 4);
        assert_eq!(li.parts[0].name, "lineitem#p0");
    }
}
