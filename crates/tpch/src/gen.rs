//! dbgen-style data generation.
//!
//! Produces raw column arrays for all eight TPC-H tables at a given scale
//! factor, following the TPC-H 2.1 distribution rules for everything the
//! paper's queries touch. Deterministic for a given seed.

use crate::dates::{date, Date};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Orders per unit scale factor (dbgen: 1.5M).
pub const SCALE_BASE_ORDERS: usize = 1_500_000;

/// Raw (uncompressed, in-memory) generated tables.
#[derive(Debug, Default)]
pub struct RawTables {
    /// Scale factor used.
    pub sf: f64,
    /// LINEITEM columns.
    pub lineitem: Lineitem,
    /// ORDERS columns.
    pub orders: Orders,
    /// CUSTOMER columns.
    pub customer: Customer,
    /// SUPPLIER columns.
    pub supplier: Supplier,
    /// PART columns.
    pub part: Part,
    /// PARTSUPP columns.
    pub partsupp: PartSupp,
    /// NATION columns.
    pub nation: Nation,
    /// REGION columns.
    pub region: Region,
}

/// LINEITEM: one row per order line. Prices/discounts/taxes are scaled
/// integers (cents / basis points).
#[derive(Debug, Default)]
#[allow(missing_docs)]
pub struct Lineitem {
    pub orderkey: Vec<i64>,
    pub partkey: Vec<i64>,
    pub suppkey: Vec<i64>,
    pub linenumber: Vec<i32>,
    pub quantity: Vec<i64>,
    /// Cents.
    pub extendedprice: Vec<i64>,
    /// Percent (0..=10), i.e. discount*100.
    pub discount: Vec<i64>,
    /// Percent (0..=8).
    pub tax: Vec<i64>,
    pub returnflag: Vec<String>,
    pub linestatus: Vec<String>,
    pub shipdate: Vec<Date>,
    pub commitdate: Vec<Date>,
    pub receiptdate: Vec<Date>,
    pub shipinstruct: Vec<String>,
    pub shipmode: Vec<String>,
    /// Total bytes of the comment field (blob model).
    pub comment_bytes: u64,
}

/// ORDERS columns.
#[derive(Debug, Default)]
#[allow(missing_docs)]
pub struct Orders {
    pub orderkey: Vec<i64>,
    pub custkey: Vec<i64>,
    pub orderstatus: Vec<String>,
    /// Cents.
    pub totalprice: Vec<i64>,
    pub orderdate: Vec<Date>,
    pub orderpriority: Vec<String>,
    pub shippriority: Vec<i32>,
    pub comment_bytes: u64,
}

/// CUSTOMER columns.
#[derive(Debug, Default)]
#[allow(missing_docs)]
pub struct Customer {
    pub custkey: Vec<i64>,
    pub nationkey: Vec<i64>,
    /// Cents (may be negative).
    pub acctbal: Vec<i64>,
    pub mktsegment: Vec<String>,
    pub comment_bytes: u64,
}

/// SUPPLIER columns.
#[derive(Debug, Default)]
#[allow(missing_docs)]
pub struct Supplier {
    pub suppkey: Vec<i64>,
    pub nationkey: Vec<i64>,
    pub acctbal: Vec<i64>,
    pub comment_bytes: u64,
}

/// PART columns.
#[derive(Debug, Default)]
#[allow(missing_docs)]
pub struct Part {
    pub partkey: Vec<i64>,
    pub mfgr: Vec<String>,
    pub brand: Vec<String>,
    pub ptype: Vec<String>,
    pub size: Vec<i32>,
    pub container: Vec<String>,
    /// Cents.
    pub retailprice: Vec<i64>,
    pub comment_bytes: u64,
}

/// PARTSUPP columns.
#[derive(Debug, Default)]
#[allow(missing_docs)]
pub struct PartSupp {
    pub partkey: Vec<i64>,
    pub suppkey: Vec<i64>,
    pub availqty: Vec<i32>,
    /// Cents.
    pub supplycost: Vec<i64>,
    pub comment_bytes: u64,
}

/// NATION: the 25 fixed nations.
#[derive(Debug, Default)]
#[allow(missing_docs)]
pub struct Nation {
    pub nationkey: Vec<i64>,
    pub name: Vec<String>,
    pub regionkey: Vec<i64>,
}

/// REGION: the 5 fixed regions.
#[derive(Debug, Default)]
#[allow(missing_docs)]
pub struct Region {
    pub regionkey: Vec<i64>,
    pub name: Vec<String>,
}

/// The 25 TPC-H nations with their region keys.
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// The 5 TPC-H regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTIONS: [&str; 4] = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
const TYPE_SYL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINER_SYL1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
const CONTAINER_SYL2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// dbgen retail price rule, in cents.
fn retail_price(partkey: i64) -> i64 {
    90_000 + ((partkey / 10) % 20_001) + 100 * (partkey % 1_000)
}

/// Generates all eight tables at scale factor `sf` (1.0 = 6M lineitems).
pub fn generate(sf: f64, seed: u64) -> RawTables {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_orders = ((SCALE_BASE_ORDERS as f64) * sf).round() as usize;
    let n_customers = (150_000.0 * sf).round().max(10.0) as usize;
    let n_parts = (200_000.0 * sf).round().max(20.0) as usize;
    let n_suppliers = (10_000.0 * sf).round().max(5.0) as usize;

    let mut t = RawTables { sf, ..Default::default() };

    // REGION and NATION are fixed.
    for (i, name) in REGIONS.iter().enumerate() {
        t.region.regionkey.push(i as i64);
        t.region.name.push(name.to_string());
    }
    for (i, (name, region)) in NATIONS.iter().enumerate() {
        t.nation.nationkey.push(i as i64);
        t.nation.name.push(name.to_string());
        t.nation.regionkey.push(*region);
    }

    // SUPPLIER.
    for k in 1..=n_suppliers as i64 {
        t.supplier.suppkey.push(k);
        t.supplier.nationkey.push(rng.gen_range(0..25));
        t.supplier.acctbal.push(rng.gen_range(-99_999..=999_999));
    }
    t.supplier.comment_bytes = n_suppliers as u64 * 63; // spec avg width

    // CUSTOMER.
    for k in 1..=n_customers as i64 {
        t.customer.custkey.push(k);
        t.customer.nationkey.push(rng.gen_range(0..25));
        t.customer.acctbal.push(rng.gen_range(-99_999..=999_999));
        t.customer.mktsegment.push(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_string());
    }
    t.customer.comment_bytes = n_customers as u64 * 73;

    // PART.
    for k in 1..=n_parts as i64 {
        t.part.partkey.push(k);
        let m = rng.gen_range(1..=5);
        t.part.mfgr.push(format!("Manufacturer#{m}"));
        t.part.brand.push(format!("Brand#{}{}", m, rng.gen_range(1..=5)));
        t.part.ptype.push(format!(
            "{} {} {}",
            TYPE_SYL1[rng.gen_range(0..TYPE_SYL1.len())],
            TYPE_SYL2[rng.gen_range(0..TYPE_SYL2.len())],
            TYPE_SYL3[rng.gen_range(0..TYPE_SYL3.len())],
        ));
        t.part.size.push(rng.gen_range(1..=50));
        t.part.container.push(format!(
            "{} {}",
            CONTAINER_SYL1[rng.gen_range(0..CONTAINER_SYL1.len())],
            CONTAINER_SYL2[rng.gen_range(0..CONTAINER_SYL2.len())],
        ));
        t.part.retailprice.push(retail_price(k));
    }
    t.part.comment_bytes = n_parts as u64 * 14;

    // PARTSUPP: 4 suppliers per part.
    for k in 1..=n_parts as i64 {
        for s in 0..4i64 {
            t.partsupp.partkey.push(k);
            // dbgen supplier spread rule (simplified modulo spread).
            let suppkey = ((k + s * ((n_suppliers as i64 / 4) + 1)) % n_suppliers as i64) + 1;
            t.partsupp.suppkey.push(suppkey);
            t.partsupp.availqty.push(rng.gen_range(1..=9999));
            t.partsupp.supplycost.push(rng.gen_range(100..=100_000));
        }
    }
    t.partsupp.comment_bytes = (4 * n_parts) as u64 * 124;

    // ORDERS and LINEITEM.
    let start = date(1992, 1, 1);
    let end = date(1998, 8, 2); // last orderdate: end),  dbgen: 1998-12-01 - 151 days
    let current = date(1995, 6, 17); // dbgen's "currentdate" for flags
    for okey in 1..=n_orders as i64 {
        let orderdate = rng.gen_range(start..=end - 151);
        let custkey = rng.gen_range(1..=n_customers as i64);
        let n_lines = rng.gen_range(1..=7usize);
        let mut totalprice = 0i64;
        let mut any_open = false;
        let mut all_fulfilled = true;
        for line in 1..=n_lines {
            let partkey = rng.gen_range(1..=n_parts as i64);
            let suppkey = rng.gen_range(1..=n_suppliers as i64);
            let quantity = rng.gen_range(1..=50i64);
            let extendedprice = quantity * retail_price(partkey) / 100;
            let discount = rng.gen_range(0..=10i64);
            let tax = rng.gen_range(0..=8i64);
            let shipdate = orderdate + rng.gen_range(1..=121);
            let commitdate = orderdate + rng.gen_range(30..=90);
            let receiptdate = shipdate + rng.gen_range(1..=30);
            let (rf, ls) = if receiptdate <= current {
                (if rng.gen_bool(0.5) { "R" } else { "A" }, "F")
            } else {
                ("N", "O")
            };
            if ls == "O" {
                any_open = true;
                all_fulfilled = false;
            }
            totalprice += extendedprice * (100 - discount) * (100 + tax) / 10_000;
            t.lineitem.orderkey.push(okey);
            t.lineitem.partkey.push(partkey);
            t.lineitem.suppkey.push(suppkey);
            t.lineitem.linenumber.push(line as i32);
            t.lineitem.quantity.push(quantity);
            t.lineitem.extendedprice.push(extendedprice);
            t.lineitem.discount.push(discount);
            t.lineitem.tax.push(tax);
            t.lineitem.returnflag.push(rf.to_string());
            t.lineitem.linestatus.push(ls.to_string());
            t.lineitem.shipdate.push(shipdate);
            t.lineitem.commitdate.push(commitdate);
            t.lineitem.receiptdate.push(receiptdate);
            t.lineitem
                .shipinstruct
                .push(INSTRUCTIONS[rng.gen_range(0..INSTRUCTIONS.len())].to_string());
            t.lineitem.shipmode.push(SHIPMODES[rng.gen_range(0..SHIPMODES.len())].to_string());
        }
        let status = if all_fulfilled {
            "F"
        } else if any_open && n_lines > 1 && rng.gen_bool(0.3) {
            "P"
        } else {
            "O"
        };
        t.orders.orderkey.push(okey);
        t.orders.custkey.push(custkey);
        t.orders.orderstatus.push(status.to_string());
        t.orders.totalprice.push(totalprice);
        t.orders.orderdate.push(orderdate);
        t.orders.orderpriority.push(PRIORITIES[rng.gen_range(0..PRIORITIES.len())].to_string());
        t.orders.shippriority.push(0);
    }
    t.lineitem.comment_bytes = t.lineitem.orderkey.len() as u64 * 27;
    t.orders.comment_bytes = n_orders as u64 * 49;
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dates::ymd;

    fn small() -> RawTables {
        generate(0.002, 42)
    }

    #[test]
    fn row_counts_scale() {
        let t = small();
        assert_eq!(t.orders.orderkey.len(), 3000);
        assert_eq!(t.customer.custkey.len(), 300);
        assert_eq!(t.part.partkey.len(), 400);
        assert_eq!(t.partsupp.partkey.len(), 1600);
        // ~4 lines per order on average.
        let lines = t.lineitem.orderkey.len();
        assert!((9000..15_000).contains(&lines), "{lines} lines");
        assert_eq!(t.nation.name.len(), 25);
        assert_eq!(t.region.name.len(), 5);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(0.001, 7);
        let b = generate(0.001, 7);
        assert_eq!(a.lineitem.extendedprice, b.lineitem.extendedprice);
        assert_eq!(a.orders.orderdate, b.orders.orderdate);
    }

    #[test]
    fn date_invariants_hold() {
        let t = small();
        for i in 0..t.lineitem.orderkey.len() {
            let ship = t.lineitem.shipdate[i];
            let receipt = t.lineitem.receiptdate[i];
            assert!(receipt > ship);
            let (y, _, _) = ymd(ship);
            assert!((1992..=1998).contains(&y));
        }
    }

    #[test]
    fn status_flags_follow_receiptdate() {
        let t = small();
        let current = date(1995, 6, 17);
        for i in 0..t.lineitem.orderkey.len() {
            let rf = &t.lineitem.returnflag[i];
            if t.lineitem.receiptdate[i] <= current {
                assert!(rf == "R" || rf == "A");
                assert_eq!(t.lineitem.linestatus[i], "F");
            } else {
                assert_eq!(rf, "N");
                assert_eq!(t.lineitem.linestatus[i], "O");
            }
        }
    }

    #[test]
    fn lineitem_sorted_by_orderkey() {
        let t = small();
        assert!(t.lineitem.orderkey.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn keys_reference_valid_rows() {
        let t = small();
        let nc = t.customer.custkey.len() as i64;
        assert!(t.orders.custkey.iter().all(|&c| c >= 1 && c <= nc));
        let np = t.part.partkey.len() as i64;
        assert!(t.lineitem.partkey.iter().all(|&p| p >= 1 && p <= np));
        let ns = t.supplier.suppkey.len() as i64;
        assert!(t.partsupp.suppkey.iter().all(|&s| s >= 1 && s <= ns));
    }

    #[test]
    fn prices_follow_retail_rule() {
        let t = small();
        for i in 0..t.lineitem.orderkey.len().min(100) {
            let expect = t.lineitem.quantity[i] * retail_price(t.lineitem.partkey[i]) / 100;
            assert_eq!(t.lineitem.extendedprice[i], expect);
        }
    }
}
