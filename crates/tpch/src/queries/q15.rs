//! TPC-H Q15: top supplier — the supplier(s) with maximum quarterly
//! revenue (the `revenue` view becomes a group-by).

use crate::dates::date;
use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use scc_engine::Operator as _;
use scc_engine::{AggExpr, Expr, HashAggregate, HashJoin, JoinKind, Project, Select};

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] = &[
    ("lineitem", &["l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"]),
    ("supplier", &["s_suppkey"]),
];

/// Executes Q15. Output: s_suppkey, total_revenue, for suppliers at the
/// maximum (ordered by suppkey).
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    timed(|stats| {
        // Q1/1996 revenue per supplier. 0=l_suppkey 1=l_extendedprice
        // 2=l_discount 3=l_shipdate.
        let (lo, hi) = (date(1996, 1, 1), date(1996, 4, 1));
        let li = cfg.scan(
            &db.lineitem,
            &["l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"],
            stats,
        );
        let li = Select::new(
            li,
            Expr::col(3).ge(Expr::lit_i32(lo)).and(Expr::col(3).lt(Expr::lit_i32(hi))),
        );
        let revenue = Expr::lit_i64(100)
            .sub(Expr::col(2))
            .to_f64()
            .mul(Expr::col(1).to_f64())
            .mul(Expr::lit_f64(0.01));
        let proj = Project::new(Box::new(li), vec![Expr::col(0), revenue]);
        let mut agg = HashAggregate::new(
            Box::new(proj),
            vec![Expr::col(0)],
            vec![AggExpr::Sum(Expr::col(1))],
        );
        let view = scc_engine::ops::collect(&mut agg);
        let phase1 = agg.explain();
        // max(total_revenue): the scalar subquery, evaluated here.
        let max_rev = view.col(1).as_f64().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let src = scc_engine::MemSource::new(view.columns.clone(), cfg.vector_size);
        let best = Select::new(Box::new(src), Expr::col(1).ge(Expr::lit_f64(max_rev)));
        // Join supplier to confirm the key exists (and model the paper's
        // plan shape). 0=s_suppkey then 1=view suppkey 2=revenue.
        let supp = cfg.scan(&db.supplier, &["s_suppkey"], stats);
        let joined = HashJoin::new(supp, Box::new(best), vec![0], vec![0], JoinKind::Inner);
        let reorder = Project::new(Box::new(joined), vec![Expr::col(0), Expr::col(2)]);
        let mut plan =
            scc_engine::OrderBy::new(Box::new(reorder), vec![scc_engine::SortKey::asc(0)]);
        let batch = scc_engine::ops::collect(&mut plan);
        (batch, scc_engine::ExplainNode::phases("Q15", vec![phase1, plan.explain()]))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};
    use std::collections::HashMap;

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;

        let raw = &db.raw;
        let (lo, hi) = (date(1996, 1, 1), date(1996, 4, 1));
        let mut per_supp: HashMap<i64, f64> = HashMap::new();
        for i in 0..raw.lineitem.orderkey.len() {
            if raw.lineitem.shipdate[i] >= lo && raw.lineitem.shipdate[i] < hi {
                *per_supp.entry(raw.lineitem.suppkey[i]).or_default() +=
                    raw.lineitem.extendedprice[i] as f64 * (100 - raw.lineitem.discount[i]) as f64
                        / 100.0;
            }
        }
        let max = per_supp.values().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut best: Vec<(i64, f64)> = per_supp.into_iter().filter(|&(_, v)| v >= max).collect();
        best.sort_by_key(|r| r.0);
        assert!(!best.is_empty());
        assert_eq!(out.len(), best.len());
        for (row, (k, v)) in best.iter().enumerate() {
            assert_eq!(out.col(0).as_i64()[row], *k);
            assert!((out.col(1).as_f64()[row] - v).abs() < 1.0);
        }
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(15);
    }
}
