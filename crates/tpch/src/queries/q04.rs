//! TPC-H Q4: order priority checking. A semi-join of orders against late
//! lineitems.

use crate::dates::date;
use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use scc_engine::Operator as _;
use scc_engine::{
    AggExpr, Expr, HashAggregate, HashJoin, JoinKind, OrderBy, Project, Select, SortKey,
};

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] = &[
    ("lineitem", &["l_orderkey", "l_commitdate", "l_receiptdate"]),
    ("orders", &["o_orderkey", "o_orderdate", "o_orderpriority"]),
];

/// Executes Q4. Output: o_orderpriority code, order_count.
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    timed(|stats| {
        // Late lineitems: commitdate < receiptdate. 0=l_orderkey
        // 1=l_commitdate 2=l_receiptdate.
        let li = cfg.scan(&db.lineitem, &["l_orderkey", "l_commitdate", "l_receiptdate"], stats);
        let li = Select::new(li, Expr::col(1).lt(Expr::col(2)));
        let li = Project::new(Box::new(li), vec![Expr::col(0)]);

        // Orders in Q3/1993. 0=o_orderkey 1=o_orderdate 2=o_orderpriority.
        let lo = date(1993, 7, 1);
        let hi = date(1993, 10, 1);
        let ord = cfg.scan(&db.orders, &["o_orderkey", "o_orderdate", "o_orderpriority"], stats);
        let ord = Select::new(
            ord,
            Expr::col(1).ge(Expr::lit_i32(lo)).and(Expr::col(1).lt(Expr::lit_i32(hi))),
        );
        let semi = HashJoin::new(Box::new(ord), Box::new(li), vec![0], vec![0], JoinKind::LeftSemi);
        let agg = HashAggregate::new(Box::new(semi), vec![Expr::col(2)], vec![AggExpr::Count]);
        let mut plan = OrderBy::new(Box::new(agg), vec![SortKey::asc(0)]);
        let batch = scc_engine::ops::collect(&mut plan);
        (batch, plan.explain())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};
    use std::collections::{BTreeMap, HashSet};

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;

        let raw = &db.raw;
        let late: HashSet<i64> = (0..raw.lineitem.orderkey.len())
            .filter(|&i| raw.lineitem.commitdate[i] < raw.lineitem.receiptdate[i])
            .map(|i| raw.lineitem.orderkey[i])
            .collect();
        let (lo, hi) = (date(1993, 7, 1), date(1993, 10, 1));
        let mut counts: BTreeMap<String, i64> = BTreeMap::new();
        for i in 0..raw.orders.orderkey.len() {
            if raw.orders.orderdate[i] >= lo
                && raw.orders.orderdate[i] < hi
                && late.contains(&raw.orders.orderkey[i])
            {
                *counts.entry(raw.orders.orderpriority[i].clone()).or_default() += 1;
            }
        }
        assert!(!counts.is_empty());
        assert_eq!(out.len(), counts.len());
        let dict = &db.orders.str_col("o_orderpriority").dict;
        for (row, (prio, count)) in counts.iter().enumerate() {
            assert_eq!(&dict[out.col(0).as_u32()[row] as usize], prio);
            assert_eq!(out.col(1).as_i64()[row], *count);
        }
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(4);
    }
}
