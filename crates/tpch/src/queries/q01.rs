//! TPC-H Q1: pricing summary report. Scan-heavy aggregation over
//! lineitem — the paper's headline scan query.

use crate::dates::date;
use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use scc_engine::Operator as _;
use scc_engine::{AggExpr, Expr, HashAggregate, OrderBy, Select, SortKey};

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] = &[(
    "lineitem",
    &[
        "l_returnflag",
        "l_linestatus",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
        "l_tax",
        "l_shipdate",
    ],
)];

/// Executes Q1. Output columns: returnflag code, linestatus code,
/// sum_qty, sum_base_price, sum_disc_price, sum_charge, avg_qty,
/// avg_price, avg_disc, count_order.
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    timed(|stats| {
        // Scan layout: 0=returnflag 1=linestatus 2=quantity 3=extprice
        // 4=discount 5=tax 6=shipdate.
        let scan = cfg.scan(
            &db.lineitem,
            &[
                "l_returnflag",
                "l_linestatus",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
                "l_tax",
                "l_shipdate",
            ],
            stats,
        );
        let cutoff = date(1998, 12, 1) - 90;
        let filtered = Select::new(scan, Expr::col(6).le(Expr::lit_i32(cutoff)));
        // disc_price = extprice * (100 - discount) / 100
        let disc_price = Expr::lit_i64(100)
            .sub(Expr::col(4))
            .to_f64()
            .mul(Expr::col(3).to_f64())
            .mul(Expr::lit_f64(0.01));
        // charge = disc_price * (100 + tax) / 100
        let charge = Expr::lit_i64(100)
            .sub(Expr::col(4))
            .to_f64()
            .mul(Expr::lit_i64(100).add(Expr::col(5)).to_f64())
            .mul(Expr::col(3).to_f64())
            .mul(Expr::lit_f64(0.0001));
        let mut plan = OrderBy::new(
            Box::new(HashAggregate::new(
                Box::new(filtered),
                vec![Expr::col(0), Expr::col(1)],
                vec![
                    AggExpr::Sum(Expr::col(2)),
                    AggExpr::Sum(Expr::col(3)),
                    AggExpr::Sum(disc_price),
                    AggExpr::Sum(charge),
                    AggExpr::Avg(Expr::col(2)),
                    AggExpr::Avg(Expr::col(3)),
                    AggExpr::Avg(Expr::col(4)),
                    AggExpr::Count,
                ],
            )),
            // Dictionary order == lexicographic order (dicts are sorted).
            vec![SortKey::asc(0), SortKey::asc(1)],
        );
        let batch = scc_engine::ops::collect(&mut plan);
        (batch, plan.explain())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};
    use std::collections::BTreeMap;

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;

        // Straight-Rust reference over the raw columns.
        let l = &db.raw.lineitem;
        let cutoff = date(1998, 12, 1) - 90;
        type Group = (i64, i64, f64, f64, i64); // sum_qty, sum_base, sum_disc, sum_charge, count
        let mut groups: BTreeMap<(String, String), Group> = BTreeMap::new();
        for i in 0..l.orderkey.len() {
            if l.shipdate[i] > cutoff {
                continue;
            }
            let g = groups.entry((l.returnflag[i].clone(), l.linestatus[i].clone())).or_default();
            g.0 += l.quantity[i];
            g.1 += l.extendedprice[i];
            let disc = l.extendedprice[i] as f64 * (100 - l.discount[i]) as f64 / 100.0;
            g.2 += disc;
            g.3 += disc * (100 + l.tax[i]) as f64 / 100.0;
            g.4 += 1;
        }
        assert_eq!(out.len(), groups.len());
        let rf_dict = &db.lineitem.str_col("l_returnflag").dict;
        let ls_dict = &db.lineitem.str_col("l_linestatus").dict;
        for (row, ((rf, ls), g)) in groups.iter().enumerate() {
            assert_eq!(&rf_dict[out.col(0).as_u32()[row] as usize], rf);
            assert_eq!(&ls_dict[out.col(1).as_u32()[row] as usize], ls);
            assert_eq!(out.col(2).as_i64()[row], g.0, "sum_qty for {rf}{ls}");
            assert_eq!(out.col(3).as_i64()[row], g.1);
            assert!((out.col(4).as_f64()[row] - g.2).abs() < 1.0);
            assert!((out.col(5).as_f64()[row] - g.3).abs() < 1.0);
            assert_eq!(out.col(9).as_i64()[row], g.4);
            // Averages consistent with sums.
            assert!((out.col(6).as_f64()[row] - g.0 as f64 / g.4 as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(1);
    }

    /// Golden test for the explain tree: plan shape, labels and row
    /// counts are fully determined by the fixed small_db seed, so the
    /// structural rendering (no wall times) must be byte-stable.
    #[test]
    fn explain_tree_structure_is_stable() {
        let db = small_db();
        let run = run(db, &QueryConfig::default());
        let golden = "OrderBy(keys=2)  rows=3 vectors=1\n\
                      └─ HashAggregate(keys=2, aggs=8)  rows=3 vectors=1\n   \
                      └─ Select  rows=60306 vectors=59\n      \
                      └─ Scan(lineitem: l_returnflag, l_linestatus, l_quantity, \
                      l_extendedprice, l_discount, l_tax, l_shipdate)  rows=60306 vectors=59\n";
        assert_eq!(run.explain.render_structure(), golden);
    }
}
