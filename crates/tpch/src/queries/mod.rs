//! The eleven TPC-H queries of the paper's Table 2 (Q1, 3, 4, 5, 6, 7,
//! 11, 14, 15, 18, 21) as hand-built vectorized plans, plus four more
//! (Q10, 12, 17, 19) implemented for substrate completeness.
//!
//! Each query module exposes `run(db, cfg) -> QueryRun` and a
//! `COLUMNS` constant listing the `(table, columns)` it scans, which the
//! Table 2 harness uses to compute per-query compression ratios. Tests in
//! each module validate the plan against a straight-Rust reference
//! implementation on small scale factors.

use crate::db::TpchDb;
use crate::QueryRun;
use scc_storage::Table;
use std::collections::HashSet;
use std::sync::Arc;

pub mod q01;
pub mod q03;
pub mod q04;
pub mod q05;
pub mod q06;
pub mod q07;
pub mod q10;
pub mod q11;
pub mod q12;
pub mod q14;
pub mod q15;
pub mod q17;
pub mod q18;
pub mod q19;
pub mod q21;

/// The query numbers reproduced from the paper's Table 2.
pub const PAPER_QUERIES: [u32; 11] = [1, 3, 4, 5, 6, 7, 11, 14, 15, 18, 21];

/// Additional TPC-H queries implemented beyond the paper's evaluation
/// set (substrate completeness; see each module's docs).
pub const EXTENDED_QUERIES: [u32; 4] = [10, 12, 17, 19];

/// Runs a query by TPC-H number.
pub fn run_query(db: &TpchDb, cfg: &crate::QueryConfig, q: u32) -> QueryRun {
    match q {
        1 => q01::run(db, cfg),
        3 => q03::run(db, cfg),
        4 => q04::run(db, cfg),
        5 => q05::run(db, cfg),
        6 => q06::run(db, cfg),
        7 => q07::run(db, cfg),
        10 => q10::run(db, cfg),
        11 => q11::run(db, cfg),
        12 => q12::run(db, cfg),
        14 => q14::run(db, cfg),
        15 => q15::run(db, cfg),
        17 => q17::run(db, cfg),
        18 => q18::run(db, cfg),
        19 => q19::run(db, cfg),
        21 => q21::run(db, cfg),
        _ => panic!("query {q} is not implemented"),
    }
}

/// `(table, scanned columns)` of a query, for ratio accounting.
pub fn touched_columns(q: u32) -> &'static [(&'static str, &'static [&'static str])] {
    match q {
        1 => q01::COLUMNS,
        3 => q03::COLUMNS,
        4 => q04::COLUMNS,
        5 => q05::COLUMNS,
        6 => q06::COLUMNS,
        7 => q07::COLUMNS,
        10 => q10::COLUMNS,
        11 => q11::COLUMNS,
        12 => q12::COLUMNS,
        14 => q14::COLUMNS,
        15 => q15::COLUMNS,
        17 => q17::COLUMNS,
        18 => q18::COLUMNS,
        19 => q19::COLUMNS,
        21 => q21::COLUMNS,
        _ => panic!("query {q} is not implemented"),
    }
}

/// Compression ratio over exactly the columns a query touches.
pub fn query_ratio(db: &TpchDb, q: u32) -> f64 {
    let mut plain = 0u64;
    let mut comp = 0u64;
    for (table, cols) in touched_columns(q) {
        let t = table_by_name(db, table);
        for c in *cols {
            plain += t.col(c).plain_bytes();
            comp += t.col(c).compressed_bytes();
        }
    }
    plain as f64 / comp as f64
}

/// Looks up a table by TPC-H name.
pub fn table_by_name<'a>(db: &'a TpchDb, name: &str) -> &'a Arc<Table> {
    match name {
        "lineitem" => &db.lineitem,
        "orders" => &db.orders,
        "customer" => &db.customer,
        "supplier" => &db.supplier,
        "part" => &db.part,
        "partsupp" => &db.partsupp,
        "nation" => &db.nation,
        "region" => &db.region,
        _ => panic!("unknown table {name}"),
    }
}

/// The dictionary code of a string constant in a column, as a 1-element
/// set (empty when the value never occurs at this scale factor).
pub(crate) fn code_set(table: &Table, col: &str, value: &str) -> HashSet<u64> {
    table.str_col(col).code_of(value).map(|c| c as u64).into_iter().collect()
}

/// The nation key for a nation name (from the fixed nation table).
pub(crate) fn nation_key(db: &TpchDb, name: &str) -> i64 {
    let idx = db
        .raw
        .nation
        .name
        .iter()
        .position(|n| n == name)
        .unwrap_or_else(|| panic!("unknown nation {name}"));
    db.raw.nation.nationkey[idx]
}

#[cfg(test)]
pub(crate) mod testkit {
    use super::*;
    use std::sync::OnceLock;

    /// A shared small database for query validation tests (SF 0.01,
    /// ~60K lineitems) — generating per-test would dominate test time,
    /// and smaller factors leave Q21 with an empty result.
    pub fn small_db() -> &'static TpchDb {
        static DB: OnceLock<TpchDb> = OnceLock::new();
        DB.get_or_init(|| crate::TpchDb::load(crate::gen::generate(0.01, 20_060_703), Some(2048)))
    }

    /// Runs a query under every scan mode / layout / granularity combo
    /// (plus a 2-thread parallel-scan pass) and asserts identical
    /// results.
    pub fn assert_config_invariant(q: u32) {
        use scc_storage::{DecompressionGranularity, Layout, ScanMode};
        let db = small_db();
        let base = run_query(db, &crate::QueryConfig::default(), q).batch;
        for mode in [ScanMode::Compressed, ScanMode::Uncompressed] {
            for layout in [Layout::Dsm, Layout::Pax] {
                for gran in
                    [DecompressionGranularity::VectorWise, DecompressionGranularity::PageWise]
                {
                    for vs in [512, 1024] {
                        let cfg = crate::QueryConfig {
                            mode,
                            layout,
                            granularity: gran,
                            vector_size: vs,
                            ..Default::default()
                        };
                        let out = run_query(db, &cfg, q).batch;
                        assert_eq!(
                            out, base,
                            "q{q} differs under {mode:?}/{layout:?}/{gran:?}/vs{vs}"
                        );
                    }
                }
            }
        }
        // Parallel scans must be invisible to query results.
        let cfg = crate::QueryConfig { threads: 2, ..Default::default() };
        assert_eq!(run_query(db, &cfg, q).batch, base, "q{q} differs under threads=2");
    }
}

#[cfg(test)]
mod meta_tests {
    use super::*;

    /// Every registered query's COLUMNS list must reference real tables
    /// and columns (the ratio accounting silently depends on it).
    #[test]
    fn touched_columns_are_valid() {
        let db = testkit::small_db();
        for q in PAPER_QUERIES.into_iter().chain(EXTENDED_QUERIES) {
            for (table, cols) in touched_columns(q) {
                let t = table_by_name(db, table);
                for c in *cols {
                    let _ = t.col_index(c);
                }
            }
            let r = query_ratio(db, q);
            assert!(r.is_finite() && r > 0.5, "q{q} ratio {r}");
        }
    }

    /// All 15 queries run under the default config and produce rows.
    #[test]
    fn every_query_produces_output() {
        let db = testkit::small_db();
        for q in PAPER_QUERIES.into_iter().chain(EXTENDED_QUERIES) {
            let run = run_query(db, &crate::QueryConfig::default(), q);
            assert!(!run.batch.is_empty(), "q{q} empty result");
            assert!(run.stats.io_bytes > 0, "q{q} charged no I/O");
        }
    }
}
