//! TPC-H Q19: discounted revenue — a three-way disjunction of
//! conjunctive predicates over lineitem ⋈ part (the classic "OR of ANDs"
//! that stresses branch-free predicate evaluation). Not part of the
//! paper's Table 2 set.

use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use scc_engine::Operator as _;
use scc_engine::{AggExpr, Expr, HashAggregate, HashJoin, JoinKind, Select};
use std::collections::HashSet;

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] = &[
    (
        "lineitem",
        &[
            "l_partkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_shipmode",
            "l_shipinstruct",
        ],
    ),
    ("part", &["p_partkey", "p_brand", "p_container", "p_size"]),
];

fn brand_code(db: &TpchDb, brand: &str) -> HashSet<u64> {
    db.part.str_col("p_brand").code_of(brand).map(|c| c as u64).into_iter().collect()
}

/// Executes Q19. Output: revenue (single f64, cents).
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    timed(|stats| {
        // 0=l_partkey 1=l_quantity 2=l_extendedprice 3=l_discount
        // 4=l_shipmode 5=l_shipinstruct; after join: 6=p_partkey 7=p_brand
        // 8=p_container 9=p_size.
        let li = cfg.scan(
            &db.lineitem,
            &[
                "l_partkey",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
                "l_shipmode",
                "l_shipinstruct",
            ],
            stats,
        );
        let air: HashSet<u64> = ["AIR", "REG AIR"]
            .iter()
            .filter_map(|m| db.lineitem.str_col("l_shipmode").code_of(m))
            .map(|c| c as u64)
            .collect();
        let deliver =
            db.lineitem.str_col("l_shipinstruct").codes_matching(|s| s == "DELIVER IN PERSON");
        let li = Select::new(li, Expr::col(4).in_set(air).and(Expr::col(5).in_set(deliver)));
        let part = cfg.scan(&db.part, &["p_partkey", "p_brand", "p_container", "p_size"], stats);
        let joined = HashJoin::new(li, part, vec![0], vec![0], JoinKind::Inner);

        let sm_containers = db.part.str_col("p_container").codes_matching(|c| c.starts_with("SM"));
        let med_containers =
            db.part.str_col("p_container").codes_matching(|c| c.starts_with("MED"));
        let lg_containers = db.part.str_col("p_container").codes_matching(|c| c.starts_with("LG"));
        let clause = |brand: &str, containers: HashSet<u64>, qlo: i64, qhi: i64, size_hi: i32| {
            Expr::col(7)
                .in_set(brand_code(db, brand))
                .and(Expr::col(8).in_set(containers))
                .and(Expr::col(1).ge(Expr::lit_i64(qlo)))
                .and(Expr::col(1).le(Expr::lit_i64(qhi)))
                .and(Expr::col(9).ge(Expr::lit_i32(1)))
                .and(Expr::col(9).le(Expr::lit_i32(size_hi)))
        };
        let pred = clause("Brand#12", sm_containers, 1, 11, 5)
            .or(clause("Brand#23", med_containers, 10, 20, 10))
            .or(clause("Brand#34", lg_containers, 20, 30, 15));
        let filtered = Select::new(joined, pred);
        let revenue = Expr::lit_i64(100)
            .sub(Expr::col(3))
            .to_f64()
            .mul(Expr::col(2).to_f64())
            .mul(Expr::lit_f64(0.01));
        let mut agg = HashAggregate::new(filtered, vec![], vec![AggExpr::Sum(revenue)]);
        let batch = scc_engine::ops::collect(&mut agg);
        (batch, agg.explain())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};
    use std::collections::HashMap;

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;

        let raw = &db.raw;
        let part: HashMap<i64, (&String, &String, i32)> = (0..raw.part.partkey.len())
            .map(|i| {
                (
                    raw.part.partkey[i],
                    (&raw.part.brand[i], &raw.part.container[i], raw.part.size[i]),
                )
            })
            .collect();
        let mut expect = 0.0f64;
        for i in 0..raw.lineitem.orderkey.len() {
            let mode = &raw.lineitem.shipmode[i];
            if (mode != "AIR" && mode != "REG AIR")
                || raw.lineitem.shipinstruct[i] != "DELIVER IN PERSON"
            {
                continue;
            }
            let (brand, container, size) = part[&raw.lineitem.partkey[i]];
            let q = raw.lineitem.quantity[i];
            let hit = (brand == "Brand#12"
                && container.starts_with("SM")
                && (1..=11).contains(&q)
                && (1..=5).contains(&size))
                || (brand == "Brand#23"
                    && container.starts_with("MED")
                    && (10..=20).contains(&q)
                    && (1..=10).contains(&size))
                || (brand == "Brand#34"
                    && container.starts_with("LG")
                    && (20..=30).contains(&q)
                    && (1..=15).contains(&size));
            if hit {
                expect += raw.lineitem.extendedprice[i] as f64
                    * (100 - raw.lineitem.discount[i]) as f64
                    / 100.0;
            }
        }
        assert_eq!(out.len(), 1);
        assert!((out.col(0).as_f64()[0] - expect).abs() < 1.0);
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(19);
    }
}
