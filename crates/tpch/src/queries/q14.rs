//! TPC-H Q14: promotion effect — the share of promo-part revenue in one
//! month, using the branch-free conditional primitive.

use crate::dates::date;
use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use scc_engine::Operator as _;
use scc_engine::{AggExpr, Expr, HashAggregate, HashJoin, JoinKind, Project, Select};

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] = &[
    ("lineitem", &["l_partkey", "l_extendedprice", "l_discount", "l_shipdate"]),
    ("part", &["p_partkey", "p_type"]),
];

/// Executes Q14. Output: promo_revenue percent (single f64 row).
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    timed(|stats| {
        // September 1995 lineitems. 0=l_partkey 1=l_extendedprice
        // 2=l_discount 3=l_shipdate.
        let (lo, hi) = (date(1995, 9, 1), date(1995, 10, 1));
        let li = cfg.scan(
            &db.lineitem,
            &["l_partkey", "l_extendedprice", "l_discount", "l_shipdate"],
            stats,
        );
        let li = Select::new(
            li,
            Expr::col(3).ge(Expr::lit_i32(lo)).and(Expr::col(3).lt(Expr::lit_i32(hi))),
        );
        // Parts: 4=p_partkey 5=p_type after the join.
        let part = cfg.scan(&db.part, &["p_partkey", "p_type"], stats);
        let joined = HashJoin::new(Box::new(li), Box::new(part), vec![0], vec![0], JoinKind::Inner);
        let promo = db.part.str_col("p_type").codes_matching(|t| t.starts_with("PROMO"));
        let revenue = Expr::lit_i64(100)
            .sub(Expr::col(2))
            .to_f64()
            .mul(Expr::col(1).to_f64())
            .mul(Expr::lit_f64(0.01));
        // Branch-free: promo revenue is revenue where p_type is PROMO*,
        // else 0 (the predicated select of §2.2).
        let promo_revenue = Expr::col(5).in_set(promo).cond(revenue.clone(), Expr::lit_f64(0.0));
        let proj = Project::new(Box::new(joined), vec![promo_revenue, revenue]);
        let mut agg = HashAggregate::new(
            Box::new(proj),
            vec![],
            vec![AggExpr::Sum(Expr::col(0)), AggExpr::Sum(Expr::col(1))],
        );
        let sums = scc_engine::ops::collect(&mut agg);
        let promo_sum = sums.col(0).as_f64()[0];
        let total = sums.col(1).as_f64()[0];
        let batch =
            scc_engine::Batch::new(vec![scc_engine::Vector::F64(vec![100.0 * promo_sum / total])]);
        (batch, agg.explain())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};
    use std::collections::HashMap;

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;

        let raw = &db.raw;
        let ptype: HashMap<i64, &String> =
            raw.part.partkey.iter().zip(raw.part.ptype.iter()).map(|(&k, t)| (k, t)).collect();
        let (lo, hi) = (date(1995, 9, 1), date(1995, 10, 1));
        let (mut promo, mut total) = (0.0f64, 0.0f64);
        for i in 0..raw.lineitem.orderkey.len() {
            if raw.lineitem.shipdate[i] < lo || raw.lineitem.shipdate[i] >= hi {
                continue;
            }
            let rev = raw.lineitem.extendedprice[i] as f64
                * (100 - raw.lineitem.discount[i]) as f64
                / 100.0;
            total += rev;
            if ptype[&raw.lineitem.partkey[i]].starts_with("PROMO") {
                promo += rev;
            }
        }
        assert!(total > 0.0);
        let expect = 100.0 * promo / total;
        assert!((out.col(0).as_f64()[0] - expect).abs() < 0.01);
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(14);
    }
}
