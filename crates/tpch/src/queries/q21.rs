//! TPC-H Q21: suppliers who kept orders waiting — the paper set's most
//! complex query (EXISTS / NOT EXISTS over correlated lineitems).
//!
//! Decorrelated plan: the EXISTS ("another supplier contributed to the
//! order") becomes "the order has >= 2 distinct suppliers", and the NOT
//! EXISTS ("no other supplier was late on it") becomes "the order has
//! exactly one distinct *late* supplier". Both reduce to two-level
//! distinct aggregations.

use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use crate::queries::{code_set, nation_key};
use scc_engine::Operator as _;
use scc_engine::{
    AggExpr, Expr, HashAggregate, HashJoin, JoinKind, Project, Select, SortKey, TopN,
};

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] = &[
    ("lineitem", &["l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"]),
    ("orders", &["o_orderkey", "o_orderstatus"]),
    ("supplier", &["s_suppkey", "s_nationkey"]),
];

/// Executes Q21. Output: s_suppkey, numwait (top 100 by numwait desc,
/// suppkey asc).
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    timed(|stats| {
        let saudi = nation_key(db, "SAUDI ARABIA");

        // Distinct (orderkey, suppkey) pairs over all lineitems, then
        // orders with >= 2 distinct suppliers.
        let li_all = cfg.scan(&db.lineitem, &["l_orderkey", "l_suppkey"], stats);
        let pairs = HashAggregate::new(
            Box::new(li_all),
            vec![Expr::col(0), Expr::col(1)],
            vec![AggExpr::Count],
        );
        let per_order =
            HashAggregate::new(Box::new(pairs), vec![Expr::col(0)], vec![AggExpr::Count]);
        let multi_supp = Select::new(Box::new(per_order), Expr::col(1).ge(Expr::lit_i64(2)));
        let multi_supp = Project::new(Box::new(multi_supp), vec![Expr::col(0)]);

        // Distinct late (orderkey, suppkey) pairs.
        let li_late = cfg.scan(
            &db.lineitem,
            &["l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"],
            stats,
        );
        let li_late = Select::new(li_late, Expr::col(2).gt(Expr::col(3)));
        let late_pairs = HashAggregate::new(
            Box::new(li_late),
            vec![Expr::col(0), Expr::col(1)],
            vec![AggExpr::Count],
        );
        // Materialize once; reuse for both the per-order count and the
        // candidate pair stream.
        let mut late_agg = HashAggregate::new(
            Box::new(late_pairs),
            vec![Expr::col(0), Expr::col(1)],
            vec![AggExpr::Count],
        );
        let late_batch = scc_engine::ops::collect(&mut late_agg);
        let late_src = || {
            Box::new(scc_engine::MemSource::new(late_batch.columns[..2].to_vec(), cfg.vector_size))
        };

        // Orders with exactly one late supplier.
        let late_per_order =
            HashAggregate::new(late_src(), vec![Expr::col(0)], vec![AggExpr::Count]);
        let single_late = Select::new(Box::new(late_per_order), Expr::col(1).eq(Expr::lit_i64(1)));
        let single_late = Project::new(Box::new(single_late), vec![Expr::col(0)]);

        // Candidate pairs: late pair AND order has >=2 suppliers AND only
        // one late supplier AND order status 'F'.
        let cand =
            HashJoin::new(late_src(), Box::new(single_late), vec![0], vec![0], JoinKind::LeftSemi);
        let cand = HashJoin::new(
            Box::new(cand),
            Box::new(multi_supp),
            vec![0],
            vec![0],
            JoinKind::LeftSemi,
        );
        let ord = cfg.scan(&db.orders, &["o_orderkey", "o_orderstatus"], stats);
        let f_code = code_set(&db.orders, "o_orderstatus", "F");
        let ord_f = Select::new(ord, Expr::col(1).in_set(f_code));
        let ord_f = Project::new(Box::new(ord_f), vec![Expr::col(0)]);
        let cand =
            HashJoin::new(Box::new(cand), Box::new(ord_f), vec![0], vec![0], JoinKind::LeftSemi);

        // Saudi suppliers only; count waits per supplier.
        // cand: 0=orderkey 1=suppkey; join adds 2=s_suppkey 3=s_nationkey.
        let supp = cfg.scan(&db.supplier, &["s_suppkey", "s_nationkey"], stats);
        let supp = Select::new(supp, Expr::col(1).eq(Expr::lit_i64(saudi)));
        let joined =
            HashJoin::new(Box::new(cand), Box::new(supp), vec![1], vec![0], JoinKind::Inner);
        let agg = HashAggregate::new(Box::new(joined), vec![Expr::col(1)], vec![AggExpr::Count]);
        let mut plan = TopN::new(Box::new(agg), vec![SortKey::desc(1), SortKey::asc(0)], 100);
        let batch = scc_engine::ops::collect(&mut plan);
        (batch, scc_engine::ExplainNode::phases("Q21", vec![late_agg.explain(), plan.explain()]))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};
    use std::collections::{HashMap, HashSet};

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;

        let raw = &db.raw;
        let saudi = nation_key(db, "SAUDI ARABIA");
        let saudi_supp: HashSet<i64> = raw
            .supplier
            .suppkey
            .iter()
            .zip(raw.supplier.nationkey.iter())
            .filter(|(_, &n)| n == saudi)
            .map(|(&s, _)| s)
            .collect();
        let f_orders: HashSet<i64> = raw
            .orders
            .orderkey
            .iter()
            .zip(raw.orders.orderstatus.iter())
            .filter(|(_, s)| s.as_str() == "F")
            .map(|(&o, _)| o)
            .collect();
        let mut supps: HashMap<i64, HashSet<i64>> = HashMap::new();
        let mut late_supps: HashMap<i64, HashSet<i64>> = HashMap::new();
        for i in 0..raw.lineitem.orderkey.len() {
            let ok = raw.lineitem.orderkey[i];
            let sk = raw.lineitem.suppkey[i];
            supps.entry(ok).or_default().insert(sk);
            if raw.lineitem.receiptdate[i] > raw.lineitem.commitdate[i] {
                late_supps.entry(ok).or_default().insert(sk);
            }
        }
        let mut numwait: HashMap<i64, i64> = HashMap::new();
        for (ok, late) in &late_supps {
            if late.len() == 1 && supps[ok].len() >= 2 && f_orders.contains(ok) {
                let sk = *late.iter().next().unwrap();
                if saudi_supp.contains(&sk) {
                    *numwait.entry(sk).or_default() += 1;
                }
            }
        }
        let mut rows: Vec<(i64, i64)> = numwait.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(100);
        assert!(!rows.is_empty(), "no waiting Saudi suppliers at this SF");
        assert_eq!(out.len(), rows.len());
        for (row, (k, c)) in rows.iter().enumerate() {
            assert_eq!(out.col(0).as_i64()[row], *k, "suppkey at {row}");
            assert_eq!(out.col(1).as_i64()[row], *c);
        }
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(21);
    }
}
