//! TPC-H Q7: volume shipping between two nations, grouped by year.

use crate::dates::date;
use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use crate::queries::nation_key;
use scc_engine::Operator as _;
use scc_engine::{
    AggExpr, Expr, HashAggregate, HashJoin, JoinKind, OrderBy, Project, Select, SortKey,
};
use std::collections::HashSet;

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] = &[
    ("supplier", &["s_suppkey", "s_nationkey"]),
    ("customer", &["c_custkey", "c_nationkey"]),
    ("orders", &["o_orderkey", "o_custkey"]),
    ("lineitem", &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"]),
];

/// Executes Q7. Output: supp_nationkey, cust_nationkey, year index
/// (0 = 1995, 1 = 1996), volume; ordered by the three keys.
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    timed(|stats| {
        let fr = nation_key(db, "FRANCE");
        let de = nation_key(db, "GERMANY");
        let pair: HashSet<u64> = [fr as u64, de as u64].into_iter().collect();

        // Suppliers in FRANCE/GERMANY. 0=s_suppkey 1=s_nationkey.
        let supp = cfg.scan(&db.supplier, &["s_suppkey", "s_nationkey"], stats);
        let supp = Select::new(supp, Expr::col(1).in_set(pair.clone()));

        // Customers in FRANCE/GERMANY joined through orders.
        // 0=o_orderkey 1=o_custkey then 2=c_custkey 3=c_nationkey.
        let cust = cfg.scan(&db.customer, &["c_custkey", "c_nationkey"], stats);
        let cust = Select::new(cust, Expr::col(1).in_set(pair));
        let ord = cfg.scan(&db.orders, &["o_orderkey", "o_custkey"], stats);
        let ord_cust =
            HashJoin::new(Box::new(ord), Box::new(cust), vec![1], vec![0], JoinKind::Inner);

        // Lineitems shipped 1995-1996. 0=l_orderkey 1=l_suppkey
        // 2=l_extendedprice 3=l_discount 4=l_shipdate; join suppliers:
        // 5=s_suppkey 6=s_nationkey; join orders: 7=o_orderkey 8=o_custkey
        // 9=c_custkey 10=c_nationkey.
        let (lo, hi) = (date(1995, 1, 1), date(1996, 12, 31));
        let li = cfg.scan(
            &db.lineitem,
            &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"],
            stats,
        );
        let li = Select::new(
            li,
            Expr::col(4).ge(Expr::lit_i32(lo)).and(Expr::col(4).le(Expr::lit_i32(hi))),
        );
        let li_supp =
            HashJoin::new(Box::new(li), Box::new(supp), vec![1], vec![0], JoinKind::Inner);
        let all =
            HashJoin::new(Box::new(li_supp), Box::new(ord_cust), vec![0], vec![0], JoinKind::Inner);
        // Opposite-nation pairs only: (FR->DE) or (DE->FR).
        let cross = Select::new(all, Expr::col(6).ne(Expr::col(10)));
        let volume = Expr::lit_i64(100)
            .sub(Expr::col(3))
            .to_f64()
            .mul(Expr::col(2).to_f64())
            .mul(Expr::lit_f64(0.01));
        // Year index: 0 for 1995, 1 for 1996.
        let year = Expr::col(4).bucket_i32(vec![date(1996, 1, 1)]);
        let proj = Project::new(Box::new(cross), vec![Expr::col(6), Expr::col(10), year, volume]);
        let agg = HashAggregate::new(
            Box::new(proj),
            vec![Expr::col(0), Expr::col(1), Expr::col(2)],
            vec![AggExpr::Sum(Expr::col(3))],
        );
        let mut plan =
            OrderBy::new(Box::new(agg), vec![SortKey::asc(0), SortKey::asc(1), SortKey::asc(2)]);
        let batch = scc_engine::ops::collect(&mut plan);
        (batch, plan.explain())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};
    use std::collections::{BTreeMap, HashMap};

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;

        let raw = &db.raw;
        let fr = nation_key(db, "FRANCE");
        let de = nation_key(db, "GERMANY");
        let supp_nation: HashMap<i64, i64> = raw
            .supplier
            .suppkey
            .iter()
            .zip(raw.supplier.nationkey.iter())
            .map(|(&s, &n)| (s, n))
            .collect();
        let cust_nation: HashMap<i64, i64> = raw
            .customer
            .custkey
            .iter()
            .zip(raw.customer.nationkey.iter())
            .map(|(&c, &n)| (c, n))
            .collect();
        let order_cust: HashMap<i64, i64> = raw
            .orders
            .orderkey
            .iter()
            .zip(raw.orders.custkey.iter())
            .map(|(&o, &c)| (o, c))
            .collect();
        let (lo, hi) = (date(1995, 1, 1), date(1996, 12, 31));
        let mut groups: BTreeMap<(i64, i64, i32), f64> = BTreeMap::new();
        for i in 0..raw.lineitem.orderkey.len() {
            let ship = raw.lineitem.shipdate[i];
            if ship < lo || ship > hi {
                continue;
            }
            let sn = supp_nation[&raw.lineitem.suppkey[i]];
            let cn = cust_nation[&order_cust[&raw.lineitem.orderkey[i]]];
            let valid = (sn == fr && cn == de) || (sn == de && cn == fr);
            if !valid {
                continue;
            }
            let year = i32::from(ship >= date(1996, 1, 1));
            *groups.entry((sn, cn, year)).or_default() += raw.lineitem.extendedprice[i] as f64
                * (100 - raw.lineitem.discount[i]) as f64
                / 100.0;
        }
        assert!(!groups.is_empty());
        assert_eq!(out.len(), groups.len());
        for (row, ((sn, cn, y), vol)) in groups.iter().enumerate() {
            assert_eq!(out.col(0).as_i64()[row], *sn);
            assert_eq!(out.col(1).as_i64()[row], *cn);
            assert_eq!(out.col(2).as_i32()[row], *y);
            assert!((out.col(3).as_f64()[row] - vol).abs() < 1.0);
        }
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(7);
    }
}
