//! TPC-H Q10: returned item reporting — customers who returned goods in
//! a quarter, by lost revenue. Not part of the paper's Table 2 set;
//! included so the substrate covers more of the benchmark.

use crate::dates::date;
use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use crate::queries::code_set;
use scc_engine::Operator as _;
use scc_engine::{
    AggExpr, Expr, HashAggregate, HashJoin, JoinKind, Project, Select, SortKey, TopN,
};

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] = &[
    ("customer", &["c_custkey", "c_nationkey", "c_acctbal"]),
    ("orders", &["o_orderkey", "o_custkey", "o_orderdate"]),
    ("lineitem", &["l_orderkey", "l_extendedprice", "l_discount", "l_returnflag"]),
];

/// Executes Q10. Output: c_custkey, revenue, c_acctbal, c_nationkey
/// (top 20 by revenue desc).
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    timed(|stats| {
        // Orders of Q4/1993. 0=o_orderkey 1=o_custkey 2=o_orderdate.
        let (lo, hi) = (date(1993, 10, 1), date(1994, 1, 1));
        let ord = cfg.scan(&db.orders, &["o_orderkey", "o_custkey", "o_orderdate"], stats);
        let ord = Select::new(
            ord,
            Expr::col(2).ge(Expr::lit_i32(lo)).and(Expr::col(2).lt(Expr::lit_i32(hi))),
        );
        // Returned lineitems. 0=l_orderkey 1=l_extendedprice 2=l_discount
        // 3=l_returnflag.
        let li = cfg.scan(
            &db.lineitem,
            &["l_orderkey", "l_extendedprice", "l_discount", "l_returnflag"],
            stats,
        );
        let returned = code_set(&db.lineitem, "l_returnflag", "R");
        let li = Select::new(li, Expr::col(3).in_set(returned));
        // li ⋈ orders: 0..=3 li cols, 4=o_orderkey 5=o_custkey 6=o_orderdate.
        let li_ord = HashJoin::new(li, ord, vec![0], vec![0], JoinKind::Inner);
        // ⋈ customer: 7=c_custkey 8=c_nationkey 9=c_acctbal.
        let cust = cfg.scan(&db.customer, &["c_custkey", "c_nationkey", "c_acctbal"], stats);
        let all = HashJoin::new(li_ord, cust, vec![5], vec![0], JoinKind::Inner);
        let revenue = Expr::lit_i64(100)
            .sub(Expr::col(2))
            .to_f64()
            .mul(Expr::col(1).to_f64())
            .mul(Expr::lit_f64(0.01));
        let proj = Project::new(all, vec![Expr::col(7), revenue, Expr::col(9), Expr::col(8)]);
        let agg = HashAggregate::new(
            proj,
            vec![Expr::col(0), Expr::col(2), Expr::col(3)],
            vec![AggExpr::Sum(Expr::col(1))],
        );
        // Output: custkey, revenue, acctbal, nationkey.
        let reorder =
            Project::new(agg, vec![Expr::col(0), Expr::col(3), Expr::col(1), Expr::col(2)]);
        let mut plan = TopN::new(reorder, vec![SortKey::desc(1), SortKey::asc(0)], 20);
        let batch = scc_engine::ops::collect(&mut plan);
        (batch, plan.explain())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};
    use std::collections::HashMap;

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;

        let raw = &db.raw;
        let (lo, hi) = (date(1993, 10, 1), date(1994, 1, 1));
        let order_cust: HashMap<i64, i64> = (0..raw.orders.orderkey.len())
            .filter(|&i| raw.orders.orderdate[i] >= lo && raw.orders.orderdate[i] < hi)
            .map(|i| (raw.orders.orderkey[i], raw.orders.custkey[i]))
            .collect();
        let mut revenue: HashMap<i64, f64> = HashMap::new();
        for i in 0..raw.lineitem.orderkey.len() {
            if raw.lineitem.returnflag[i] != "R" {
                continue;
            }
            let Some(&ck) = order_cust.get(&raw.lineitem.orderkey[i]) else { continue };
            *revenue.entry(ck).or_default() += raw.lineitem.extendedprice[i] as f64
                * (100 - raw.lineitem.discount[i]) as f64
                / 100.0;
        }
        let mut rows: Vec<(i64, f64)> = revenue.into_iter().collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        rows.truncate(20);
        assert!(!rows.is_empty());
        assert_eq!(out.len(), rows.len());
        for (row, (ck, rev)) in rows.iter().enumerate() {
            assert_eq!(out.col(0).as_i64()[row], *ck, "custkey at {row}");
            assert!((out.col(1).as_f64()[row] - rev).abs() < 1.0);
        }
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(10);
    }
}
