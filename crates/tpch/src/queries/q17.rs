//! TPC-H Q17: small-quantity-order revenue — lineitems below 20% of
//! their part's average quantity, for one brand and container. The
//! correlated average decorrelates into a per-part aggregate joined
//! back. Not part of the paper's Table 2 set.

use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use scc_engine::Operator as _;
use scc_engine::{
    AggExpr, Batch, Expr, HashAggregate, HashJoin, JoinKind, Project, Select, Vector,
};
use std::collections::HashSet;

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] = &[
    ("lineitem", &["l_partkey", "l_quantity", "l_extendedprice"]),
    ("part", &["p_partkey", "p_brand", "p_container"]),
];

/// The brand/container constants; dbgen uses Brand#23 / MED BOX. Our
/// generator distributes brands uniformly, so any (brand, container
/// prefix) pair selects a similar fraction.
const BRAND: &str = "Brand#23";
const CONTAINER_PREFIX: &str = "MED";

/// Executes Q17. Output: avg_yearly (single f64, cents).
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    timed(|stats| {
        // Parts of the brand in MED* containers. 0=p_partkey 1=p_brand
        // 2=p_container.
        let brand: HashSet<u64> =
            db.part.str_col("p_brand").code_of(BRAND).map(|c| c as u64).into_iter().collect();
        let containers =
            db.part.str_col("p_container").codes_matching(|c| c.starts_with(CONTAINER_PREFIX));
        let part = cfg.scan(&db.part, &["p_partkey", "p_brand", "p_container"], stats);
        let part =
            Select::new(part, Expr::col(1).in_set(brand).and(Expr::col(2).in_set(containers)));
        let part = Project::new(part, vec![Expr::col(0)]);

        // Per-part average quantity over the *qualifying* parts only
        // (semi-join first keeps the aggregate small).
        // 0=l_partkey 1=l_quantity 2=l_extendedprice.
        let li = cfg.scan(&db.lineitem, &["l_partkey", "l_quantity", "l_extendedprice"], stats);
        let mut li = HashJoin::new(li, part, vec![0], vec![0], JoinKind::LeftSemi);
        let li_all = scc_engine::ops::collect(&mut li);
        if li_all.columns.is_empty() {
            return (Batch::new(vec![Vector::F64(vec![0.0])]), li.explain());
        }
        // avg qty per part.
        let src = scc_engine::MemSource::new(li_all.columns.clone(), cfg.vector_size);
        let mut avg = HashAggregate::new(src, vec![Expr::col(0)], vec![AggExpr::Avg(Expr::col(1))]);
        let avgs = scc_engine::ops::collect(&mut avg);
        // Join back: lineitem rows with quantity < 0.2 * avg(part).
        let src = scc_engine::MemSource::new(li_all.columns, cfg.vector_size);
        let joined = HashJoin::new(
            src,
            scc_engine::MemSource::new(avgs.columns, cfg.vector_size),
            vec![0],
            vec![0],
            JoinKind::Inner,
        );
        // cols: 0=l_partkey 1=l_quantity 2=l_extendedprice 3=partkey 4=avg.
        let small =
            Select::new(joined, Expr::col(1).to_f64().lt(Expr::lit_f64(0.2).mul(Expr::col(4))));
        let mut total = HashAggregate::new(small, vec![], vec![AggExpr::Sum(Expr::col(2))]);
        let sums = scc_engine::ops::collect(&mut total);
        let sum = match &sums.columns[0] {
            Vector::I64(v) => v[0] as f64,
            Vector::F64(v) => v[0],
            _ => unreachable!("sum of extendedprice is numeric"),
        };
        let batch = Batch::new(vec![Vector::F64(vec![sum / 7.0])]);
        let explain = scc_engine::ExplainNode::phases(
            "Q17",
            vec![li.explain(), avg.explain(), total.explain()],
        );
        (batch, explain)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};
    use std::collections::{HashMap, HashSet};

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;

        let raw = &db.raw;
        let qualifying: HashSet<i64> = (0..raw.part.partkey.len())
            .filter(|&i| {
                raw.part.brand[i] == BRAND && raw.part.container[i].starts_with(CONTAINER_PREFIX)
            })
            .map(|i| raw.part.partkey[i])
            .collect();
        let mut qty: HashMap<i64, (i64, i64)> = HashMap::new();
        for i in 0..raw.lineitem.orderkey.len() {
            let pk = raw.lineitem.partkey[i];
            if qualifying.contains(&pk) {
                let e = qty.entry(pk).or_default();
                e.0 += raw.lineitem.quantity[i];
                e.1 += 1;
            }
        }
        let mut sum = 0.0f64;
        for i in 0..raw.lineitem.orderkey.len() {
            let pk = raw.lineitem.partkey[i];
            let Some(&(q, c)) = qty.get(&pk) else { continue };
            let avg = q as f64 / c as f64;
            if (raw.lineitem.quantity[i] as f64) < 0.2 * avg {
                sum += raw.lineitem.extendedprice[i] as f64;
            }
        }
        let expect = sum / 7.0;
        assert!(
            (out.col(0).as_f64()[0] - expect).abs() < 1.0,
            "{} vs {expect}",
            out.col(0).as_f64()[0]
        );
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(17);
    }
}
