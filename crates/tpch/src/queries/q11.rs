//! TPC-H Q11: important stock identification — partsupp value per part
//! for one nation, filtered against a fraction of the total.

use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use crate::queries::nation_key;
use scc_engine::Operator as _;
use scc_engine::{AggExpr, Batch, Expr, HashAggregate, HashJoin, JoinKind, Project, Select};

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] = &[
    ("partsupp", &["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"]),
    ("supplier", &["s_suppkey", "s_nationkey"]),
];

/// Executes Q11. Output: ps_partkey, value (desc), for parts whose value
/// exceeds `0.0001 / SF` of the national total.
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    let fraction = 0.0001 / db.sf.max(1e-6);
    timed(|stats| {
        let germany = nation_key(db, "GERMANY");
        // German suppliers. 0=s_suppkey 1=s_nationkey.
        let supp = cfg.scan(&db.supplier, &["s_suppkey", "s_nationkey"], stats);
        let supp = Select::new(supp, Expr::col(1).eq(Expr::lit_i64(germany)));
        // Partsupp probe: 0=ps_partkey 1=ps_suppkey 2=ps_availqty
        // 3=ps_supplycost; join adds 4=s_suppkey 5=s_nationkey.
        let ps = cfg.scan(
            &db.partsupp,
            &["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"],
            stats,
        );
        let joined = HashJoin::new(Box::new(ps), Box::new(supp), vec![1], vec![0], JoinKind::Inner);
        let value = Expr::col(3).to_f64().mul(Expr::col(2).to_f64());
        let proj = Project::new(Box::new(joined), vec![Expr::col(0), value]);
        let mut agg = HashAggregate::new(
            Box::new(proj),
            vec![Expr::col(0)],
            vec![AggExpr::Sum(Expr::col(1))],
        );
        let groups = scc_engine::ops::collect(&mut agg);
        // The HAVING threshold needs the grand total, so finish in plain
        // code (the paper's engine would run a scalar subquery here).
        let keys = groups.col(0).as_i64();
        let vals = groups.col(1).as_f64();
        let total: f64 = vals.iter().sum();
        let threshold = total * fraction;
        let mut rows: Vec<(i64, f64)> =
            keys.iter().zip(vals).filter(|(_, &v)| v > threshold).map(|(&k, &v)| (k, v)).collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let batch = Batch::new(vec![
            scc_engine::Vector::I64(rows.iter().map(|r| r.0).collect()),
            scc_engine::Vector::F64(rows.iter().map(|r| r.1).collect()),
        ]);
        (batch, agg.explain())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};
    use std::collections::{HashMap, HashSet};

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;

        let raw = &db.raw;
        let germany = nation_key(db, "GERMANY");
        let german_supp: HashSet<i64> = raw
            .supplier
            .suppkey
            .iter()
            .zip(raw.supplier.nationkey.iter())
            .filter(|(_, &n)| n == germany)
            .map(|(&s, _)| s)
            .collect();
        let mut per_part: HashMap<i64, f64> = HashMap::new();
        let mut total = 0.0;
        for i in 0..raw.partsupp.partkey.len() {
            if german_supp.contains(&raw.partsupp.suppkey[i]) {
                let v = raw.partsupp.supplycost[i] as f64 * raw.partsupp.availqty[i] as f64;
                *per_part.entry(raw.partsupp.partkey[i]).or_default() += v;
                total += v;
            }
        }
        let threshold = total * (0.0001 / db.sf);
        let mut rows: Vec<(i64, f64)> =
            per_part.into_iter().filter(|&(_, v)| v > threshold).collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        assert!(!rows.is_empty());
        assert_eq!(out.len(), rows.len());
        for (row, (k, v)) in rows.iter().enumerate() {
            assert_eq!(out.col(0).as_i64()[row], *k);
            assert!((out.col(1).as_f64()[row] - v).abs() < 1.0);
        }
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(11);
    }
}
