//! TPC-H Q3: shipping priority. customer ⋈ orders ⋈ lineitem with a
//! revenue top-10.

use crate::dates::date;
use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use crate::queries::code_set;
use scc_engine::Operator as _;
use scc_engine::{
    AggExpr, Expr, HashAggregate, HashJoin, JoinKind, Project, Select, SortKey, TopN,
};

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] = &[
    ("customer", &["c_custkey", "c_mktsegment"]),
    ("orders", &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"]),
    ("lineitem", &["l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"]),
];

/// Executes Q3. Output: l_orderkey, revenue, o_orderdate, o_shippriority
/// (top 10 by revenue desc, orderdate asc).
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    timed(|stats| {
        let cut = date(1995, 3, 15);
        // Build side: BUILDING customers. 0=c_custkey 1=c_mktsegment.
        let cust = cfg.scan(&db.customer, &["c_custkey", "c_mktsegment"], stats);
        let building = code_set(&db.customer, "c_mktsegment", "BUILDING");
        let cust = Select::new(cust, Expr::col(1).in_set(building));
        let cust = Project::new(Box::new(cust), vec![Expr::col(0)]);

        // Orders before the cutoff. 0=o_orderkey 1=o_custkey 2=o_orderdate
        // 3=o_shippriority.
        let ord = cfg.scan(
            &db.orders,
            &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
            stats,
        );
        let ord = Select::new(ord, Expr::col(2).lt(Expr::lit_i32(cut)));
        // After join: 0..=3 orders cols, 4 = c_custkey.
        let ord_cust =
            HashJoin::new(Box::new(ord), Box::new(cust), vec![1], vec![0], JoinKind::Inner);

        // Lineitems shipped after the cutoff. 0=l_orderkey
        // 1=l_extendedprice 2=l_discount 3=l_shipdate.
        let li = cfg.scan(
            &db.lineitem,
            &["l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"],
            stats,
        );
        let li = Select::new(li, Expr::col(3).gt(Expr::lit_i32(cut)));
        // After join: 0..=3 lineitem cols, 4=o_orderkey 5=o_custkey
        // 6=o_orderdate 7=o_shippriority 8=c_custkey.
        let joined =
            HashJoin::new(Box::new(li), Box::new(ord_cust), vec![0], vec![0], JoinKind::Inner);
        let revenue = Expr::lit_i64(100)
            .sub(Expr::col(2))
            .to_f64()
            .mul(Expr::col(1).to_f64())
            .mul(Expr::lit_f64(0.01));
        let proj =
            Project::new(Box::new(joined), vec![Expr::col(0), revenue, Expr::col(6), Expr::col(7)]);
        // Group by orderkey, orderdate, shippriority; sum revenue.
        let agg = HashAggregate::new(
            Box::new(proj),
            vec![Expr::col(0), Expr::col(2), Expr::col(3)],
            vec![AggExpr::Sum(Expr::col(1))],
        );
        // Output order: orderkey, revenue, orderdate, shippriority.
        let reorder = Project::new(
            Box::new(agg),
            vec![Expr::col(0), Expr::col(3), Expr::col(1), Expr::col(2)],
        );
        let mut plan = TopN::new(
            Box::new(reorder),
            vec![SortKey::desc(1), SortKey::asc(2), SortKey::asc(0)],
            10,
        );
        let batch = scc_engine::ops::collect(&mut plan);
        (batch, plan.explain())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};
    use std::collections::HashMap;

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;

        let cut = date(1995, 3, 15);
        let raw = &db.raw;
        let building: std::collections::HashSet<i64> = raw
            .customer
            .custkey
            .iter()
            .zip(&raw.customer.mktsegment)
            .filter(|(_, s)| s.as_str() == "BUILDING")
            .map(|(&k, _)| k)
            .collect();
        let mut order_info: HashMap<i64, (i32, i32)> = HashMap::new();
        for i in 0..raw.orders.orderkey.len() {
            if raw.orders.orderdate[i] < cut && building.contains(&raw.orders.custkey[i]) {
                order_info.insert(
                    raw.orders.orderkey[i],
                    (raw.orders.orderdate[i], raw.orders.shippriority[i]),
                );
            }
        }
        let mut rev: HashMap<i64, f64> = HashMap::new();
        for i in 0..raw.lineitem.orderkey.len() {
            if raw.lineitem.shipdate[i] > cut && order_info.contains_key(&raw.lineitem.orderkey[i])
            {
                *rev.entry(raw.lineitem.orderkey[i]).or_default() +=
                    raw.lineitem.extendedprice[i] as f64 * (100 - raw.lineitem.discount[i]) as f64
                        / 100.0;
            }
        }
        let mut rows: Vec<(i64, f64, i32, i32)> = rev
            .iter()
            .map(|(&ok, &r)| {
                let (d, p) = order_info[&ok];
                (ok, r, d, p)
            })
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.2.cmp(&b.2)).then(a.0.cmp(&b.0)));
        rows.truncate(10);
        assert!(!rows.is_empty(), "selectivity sanity");
        assert_eq!(out.len(), rows.len());
        for (row, expect) in rows.iter().enumerate() {
            assert_eq!(out.col(0).as_i64()[row], expect.0, "orderkey at {row}");
            assert!((out.col(1).as_f64()[row] - expect.1).abs() < 1.0);
            assert_eq!(out.col(2).as_i32()[row], expect.2);
        }
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(3);
    }
}
