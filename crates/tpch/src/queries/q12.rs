//! TPC-H Q12: shipping modes and order priority — conditional counting
//! via the branch-free `Cond` primitive. Not part of the paper's Table 2
//! set; included for substrate coverage.

use crate::dates::date;
use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use scc_engine::Operator as _;
use scc_engine::{
    AggExpr, Expr, HashAggregate, HashJoin, JoinKind, OrderBy, Project, Select, SortKey,
};
use std::collections::HashSet;

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] = &[
    ("lineitem", &["l_orderkey", "l_shipmode", "l_shipdate", "l_commitdate", "l_receiptdate"]),
    ("orders", &["o_orderkey", "o_orderpriority"]),
];

/// Executes Q12. Output: l_shipmode code, high_line_count,
/// low_line_count (ordered by shipmode).
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    timed(|stats| {
        // Lineitems received in 1994 by MAIL or SHIP, with the
        // late-commit chain ship < commit < receipt.
        let (lo, hi) = (date(1994, 1, 1), date(1995, 1, 1));
        let modes: HashSet<u64> = ["MAIL", "SHIP"]
            .iter()
            .filter_map(|m| db.lineitem.str_col("l_shipmode").code_of(m))
            .map(|c| c as u64)
            .collect();
        // 0=l_orderkey 1=l_shipmode 2=l_shipdate 3=l_commitdate
        // 4=l_receiptdate.
        let li = cfg.scan(
            &db.lineitem,
            &["l_orderkey", "l_shipmode", "l_shipdate", "l_commitdate", "l_receiptdate"],
            stats,
        );
        let li = Select::new(
            li,
            Expr::col(1)
                .in_set(modes)
                .and(Expr::col(3).lt(Expr::col(4)))
                .and(Expr::col(2).lt(Expr::col(3)))
                .and(Expr::col(4).ge(Expr::lit_i32(lo)))
                .and(Expr::col(4).lt(Expr::lit_i32(hi))),
        );
        // ⋈ orders: 5=o_orderkey 6=o_orderpriority.
        let ord = cfg.scan(&db.orders, &["o_orderkey", "o_orderpriority"], stats);
        let joined = HashJoin::new(li, ord, vec![0], vec![0], JoinKind::Inner);
        // High priority = 1-URGENT or 2-HIGH (branch-free conditional
        // counting, the paper's predication idiom).
        let high: HashSet<u64> = ["1-URGENT", "2-HIGH"]
            .iter()
            .filter_map(|p| db.orders.str_col("o_orderpriority").code_of(p))
            .map(|c| c as u64)
            .collect();
        let is_high = Expr::col(6).in_set(high);
        let high_ind = is_high.clone().cond(Expr::lit_i64(1), Expr::lit_i64(0));
        let low_ind = is_high.cond(Expr::lit_i64(0), Expr::lit_i64(1));
        let proj = Project::new(joined, vec![Expr::col(1), high_ind, low_ind]);
        let agg = HashAggregate::new(
            proj,
            vec![Expr::col(0)],
            vec![AggExpr::Sum(Expr::col(1)), AggExpr::Sum(Expr::col(2))],
        );
        let mut plan = OrderBy::new(agg, vec![SortKey::asc(0)]);
        let batch = scc_engine::ops::collect(&mut plan);
        (batch, plan.explain())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};
    use std::collections::{BTreeMap, HashMap};

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;

        let raw = &db.raw;
        let prio: HashMap<i64, &String> = raw
            .orders
            .orderkey
            .iter()
            .zip(raw.orders.orderpriority.iter())
            .map(|(&o, p)| (o, p))
            .collect();
        let (lo, hi) = (date(1994, 1, 1), date(1995, 1, 1));
        let mut groups: BTreeMap<String, (i64, i64)> = BTreeMap::new();
        for i in 0..raw.lineitem.orderkey.len() {
            let mode = &raw.lineitem.shipmode[i];
            if mode != "MAIL" && mode != "SHIP" {
                continue;
            }
            if !(raw.lineitem.shipdate[i] < raw.lineitem.commitdate[i]
                && raw.lineitem.commitdate[i] < raw.lineitem.receiptdate[i]
                && raw.lineitem.receiptdate[i] >= lo
                && raw.lineitem.receiptdate[i] < hi)
            {
                continue;
            }
            let p = prio[&raw.lineitem.orderkey[i]];
            let e = groups.entry(mode.clone()).or_default();
            if p == "1-URGENT" || p == "2-HIGH" {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        assert!(!groups.is_empty());
        assert_eq!(out.len(), groups.len());
        let dict = &db.lineitem.str_col("l_shipmode").dict;
        for (row, (mode, (h, l))) in groups.iter().enumerate() {
            assert_eq!(&dict[out.col(0).as_u32()[row] as usize], mode);
            assert_eq!(out.col(1).as_i64()[row], *h);
            assert_eq!(out.col(2).as_i64()[row], *l);
        }
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(12);
    }
}
