//! TPC-H Q5: local supplier volume. A five-way join with the
//! customer-and-supplier-in-the-same-nation condition.

use crate::dates::date;
use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use crate::queries::code_set;
use scc_engine::Operator as _;
use scc_engine::{
    AggExpr, Expr, HashAggregate, HashJoin, JoinKind, OrderBy, Project, Select, SortKey,
};

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] = &[
    ("region", &["r_regionkey", "r_name"]),
    ("nation", &["n_nationkey", "n_name", "n_regionkey"]),
    ("supplier", &["s_suppkey", "s_nationkey"]),
    ("customer", &["c_custkey", "c_nationkey"]),
    ("orders", &["o_orderkey", "o_custkey", "o_orderdate"]),
    ("lineitem", &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"]),
];

/// Executes Q5. Output: n_name code, revenue (desc).
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    timed(|stats| {
        // ASIA nations. 0=n_nationkey 1=n_name 2=n_regionkey, then join
        // region: 3=r_regionkey 4=r_name.
        let region = cfg.scan(&db.region, &["r_regionkey", "r_name"], stats);
        let asia = code_set(&db.region, "r_name", "ASIA");
        let region = Select::new(region, Expr::col(1).in_set(asia));
        let nation = cfg.scan(&db.nation, &["n_nationkey", "n_name", "n_regionkey"], stats);
        let nation =
            HashJoin::new(Box::new(nation), Box::new(region), vec![2], vec![0], JoinKind::Inner);
        let nation = Project::new(Box::new(nation), vec![Expr::col(0), Expr::col(1)]);

        // Suppliers in those nations. 0=s_suppkey 1=s_nationkey then
        // 2=n_nationkey 3=n_name.
        let supp = cfg.scan(&db.supplier, &["s_suppkey", "s_nationkey"], stats);
        let supp =
            HashJoin::new(Box::new(supp), Box::new(nation), vec![1], vec![0], JoinKind::Inner);

        // Orders in 1994 joined to their customers. 0=o_orderkey
        // 1=o_custkey 2=o_orderdate then 3=c_custkey 4=c_nationkey.
        let (lo, hi) = (date(1994, 1, 1), date(1995, 1, 1));
        let ord = cfg.scan(&db.orders, &["o_orderkey", "o_custkey", "o_orderdate"], stats);
        let ord = Select::new(
            ord,
            Expr::col(2).ge(Expr::lit_i32(lo)).and(Expr::col(2).lt(Expr::lit_i32(hi))),
        );
        let cust = cfg.scan(&db.customer, &["c_custkey", "c_nationkey"], stats);
        let ord_cust =
            HashJoin::new(Box::new(ord), Box::new(cust), vec![1], vec![0], JoinKind::Inner);

        // Lineitem probe: 0=l_orderkey 1=l_suppkey 2=l_extendedprice
        // 3=l_discount; join suppliers: 4=s_suppkey 5=s_nationkey
        // 6=n_nationkey 7=n_name; join orders: 8=o_orderkey 9=o_custkey
        // 10=o_orderdate 11=c_custkey 12=c_nationkey.
        let li = cfg.scan(
            &db.lineitem,
            &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
            stats,
        );
        let li_supp =
            HashJoin::new(Box::new(li), Box::new(supp), vec![1], vec![0], JoinKind::Inner);
        let all =
            HashJoin::new(Box::new(li_supp), Box::new(ord_cust), vec![0], vec![0], JoinKind::Inner);
        // The local-supplier condition: customer and supplier share the
        // nation.
        let local = Select::new(all, Expr::col(12).eq(Expr::col(5)));
        let revenue = Expr::lit_i64(100)
            .sub(Expr::col(3))
            .to_f64()
            .mul(Expr::col(2).to_f64())
            .mul(Expr::lit_f64(0.01));
        let proj = Project::new(Box::new(local), vec![Expr::col(7), revenue]);
        let agg = HashAggregate::new(
            Box::new(proj),
            vec![Expr::col(0)],
            vec![AggExpr::Sum(Expr::col(1))],
        );
        let mut plan = OrderBy::new(Box::new(agg), vec![SortKey::desc(1)]);
        let batch = scc_engine::ops::collect(&mut plan);
        (batch, plan.explain())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};
    use std::collections::HashMap;

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;

        let raw = &db.raw;
        // ASIA = region 2; nations in it.
        let asia_nations: HashMap<i64, String> = raw
            .nation
            .nationkey
            .iter()
            .zip(raw.nation.name.iter())
            .zip(raw.nation.regionkey.iter())
            .filter(|(_, &r)| r == 2)
            .map(|((&k, n), _)| (k, n.clone()))
            .collect();
        let supp_nation: HashMap<i64, i64> = raw
            .supplier
            .suppkey
            .iter()
            .zip(raw.supplier.nationkey.iter())
            .map(|(&s, &n)| (s, n))
            .collect();
        let cust_nation: HashMap<i64, i64> = raw
            .customer
            .custkey
            .iter()
            .zip(raw.customer.nationkey.iter())
            .map(|(&c, &n)| (c, n))
            .collect();
        let (lo, hi) = (date(1994, 1, 1), date(1995, 1, 1));
        let order_cust: HashMap<i64, i64> = (0..raw.orders.orderkey.len())
            .filter(|&i| raw.orders.orderdate[i] >= lo && raw.orders.orderdate[i] < hi)
            .map(|i| (raw.orders.orderkey[i], raw.orders.custkey[i]))
            .collect();
        let mut revenue: HashMap<String, f64> = HashMap::new();
        for i in 0..raw.lineitem.orderkey.len() {
            let Some(&ck) = order_cust.get(&raw.lineitem.orderkey[i]) else { continue };
            let sn = supp_nation[&raw.lineitem.suppkey[i]];
            if cust_nation[&ck] != sn {
                continue;
            }
            let Some(nname) = asia_nations.get(&sn) else { continue };
            *revenue.entry(nname.clone()).or_default() += raw.lineitem.extendedprice[i] as f64
                * (100 - raw.lineitem.discount[i]) as f64
                / 100.0;
        }
        let mut rows: Vec<(String, f64)> = revenue.into_iter().collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        assert_eq!(out.len(), rows.len());
        let dict = &db.nation.str_col("n_name").dict;
        for (row, (name, rev)) in rows.iter().enumerate() {
            assert_eq!(&dict[out.col(0).as_u32()[row] as usize], name, "row {row}");
            assert!((out.col(1).as_f64()[row] - rev).abs() < 1.0);
        }
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(5);
    }
}
