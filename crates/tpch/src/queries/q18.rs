//! TPC-H Q18: large volume customers — orders whose total quantity
//! exceeds 300, joined back to orders and customers.

use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use scc_engine::Operator as _;
use scc_engine::{
    AggExpr, Expr, HashAggregate, HashJoin, JoinKind, Project, Select, SortKey, TopN,
};

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] = &[
    ("lineitem", &["l_orderkey", "l_quantity"]),
    ("orders", &["o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"]),
    ("customer", &["c_custkey"]),
];

/// The quantity threshold; the spec uses 300 at SF >= 1. At tiny scale
/// factors the reproduction uses a lower threshold so the result is
/// non-empty (line counts per order cap total quantity at ~350).
pub fn threshold(sf: f64) -> i64 {
    if sf >= 0.05 {
        300
    } else {
        200
    }
}

/// Executes Q18. Output: c_custkey, o_orderkey, o_orderdate,
/// o_totalprice, sum(l_quantity); top 100 by totalprice desc, orderdate.
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    let thresh = threshold(db.sf);
    timed(|stats| {
        // Per-order quantity. 0=l_orderkey 1=l_quantity.
        let li = cfg.scan(&db.lineitem, &["l_orderkey", "l_quantity"], stats);
        let per_order =
            HashAggregate::new(Box::new(li), vec![Expr::col(0)], vec![AggExpr::Sum(Expr::col(1))]);
        let big = Select::new(Box::new(per_order), Expr::col(1).gt(Expr::lit_i64(thresh)));

        // Orders joined to big orders: 0=o_orderkey 1=o_custkey
        // 2=o_totalprice 3=o_orderdate then 4=big orderkey 5=sum_qty.
        let ord = cfg.scan(
            &db.orders,
            &["o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"],
            stats,
        );
        let ord_big =
            HashJoin::new(Box::new(ord), Box::new(big), vec![0], vec![0], JoinKind::Inner);

        // Customers: 6=c_custkey after join.
        let cust = cfg.scan(&db.customer, &["c_custkey"], stats);
        let all = HashJoin::new(Box::new(ord_big), cust, vec![1], vec![0], JoinKind::Inner);
        let proj = Project::new(
            Box::new(all),
            vec![Expr::col(1), Expr::col(0), Expr::col(3), Expr::col(2), Expr::col(5)],
        );
        let mut plan = TopN::new(
            Box::new(proj),
            vec![SortKey::desc(3), SortKey::asc(2), SortKey::asc(1)],
            100,
        );
        let batch = scc_engine::ops::collect(&mut plan);
        (batch, plan.explain())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};
    use std::collections::HashMap;

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;

        let raw = &db.raw;
        let mut qty: HashMap<i64, i64> = HashMap::new();
        for i in 0..raw.lineitem.orderkey.len() {
            *qty.entry(raw.lineitem.orderkey[i]).or_default() += raw.lineitem.quantity[i];
        }
        let thresh = threshold(db.sf);
        let mut rows: Vec<(i64, i64, i32, i64, i64)> = Vec::new();
        for i in 0..raw.orders.orderkey.len() {
            let ok = raw.orders.orderkey[i];
            if qty.get(&ok).copied().unwrap_or(0) > thresh {
                rows.push((
                    raw.orders.custkey[i],
                    ok,
                    raw.orders.orderdate[i],
                    raw.orders.totalprice[i],
                    qty[&ok],
                ));
            }
        }
        rows.sort_by(|a, b| b.3.cmp(&a.3).then(a.2.cmp(&b.2)).then(a.1.cmp(&b.1)));
        rows.truncate(100);
        assert!(!rows.is_empty(), "threshold selects nothing at this SF");
        assert_eq!(out.len(), rows.len());
        for (row, expect) in rows.iter().enumerate() {
            assert_eq!(out.col(0).as_i64()[row], expect.0, "custkey at {row}");
            assert_eq!(out.col(1).as_i64()[row], expect.1);
            assert_eq!(out.col(2).as_i32()[row], expect.2);
            assert_eq!(out.col(3).as_i64()[row], expect.3);
            assert_eq!(out.col(4).as_i64()[row], expect.4);
        }
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(18);
    }
}
