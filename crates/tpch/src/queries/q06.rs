//! TPC-H Q6: forecasting revenue change. Pure scan-select-aggregate; the
//! most selective of the paper's scan queries.

use crate::dates::date;
use crate::db::{run_query as timed, QueryConfig, QueryRun, TpchDb};
use scc_engine::Operator as _;
use scc_engine::{AggExpr, Expr, HashAggregate, Select};

/// Columns scanned.
pub const COLUMNS: &[(&str, &[&str])] =
    &[("lineitem", &["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"])];

/// Executes Q6. Output: a single revenue value (f64, cents).
pub fn run(db: &TpchDb, cfg: &QueryConfig) -> QueryRun {
    timed(|stats| {
        // 0=shipdate 1=discount 2=quantity 3=extendedprice.
        let scan = cfg.scan(
            &db.lineitem,
            &["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"],
            stats,
        );
        let lo = date(1994, 1, 1);
        let hi = date(1995, 1, 1);
        // discount between 0.05 and 0.07 => integer percent 5..=7.
        let pred = Expr::col(0)
            .ge(Expr::lit_i32(lo))
            .and(Expr::col(0).lt(Expr::lit_i32(hi)))
            .and(Expr::col(1).ge(Expr::lit_i64(5)))
            .and(Expr::col(1).le(Expr::lit_i64(7)))
            .and(Expr::col(2).lt(Expr::lit_i64(24)));
        let filtered = Select::new(scan, pred);
        let revenue = Expr::col(3).to_f64().mul(Expr::col(1).to_f64()).mul(Expr::lit_f64(0.01));
        let mut plan = HashAggregate::new(Box::new(filtered), vec![], vec![AggExpr::Sum(revenue)]);
        let batch = scc_engine::ops::collect(&mut plan);
        (batch, plan.explain())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testkit::{assert_config_invariant, small_db};

    #[test]
    fn matches_reference() {
        let db = small_db();
        let out = run(db, &QueryConfig::default()).batch;
        let l = &db.raw.lineitem;
        let (lo, hi) = (date(1994, 1, 1), date(1995, 1, 1));
        let mut expect = 0.0f64;
        let mut rows = 0usize;
        for i in 0..l.orderkey.len() {
            if l.shipdate[i] >= lo
                && l.shipdate[i] < hi
                && (5..=7).contains(&l.discount[i])
                && l.quantity[i] < 24
            {
                expect += l.extendedprice[i] as f64 * l.discount[i] as f64 / 100.0;
                rows += 1;
            }
        }
        assert!(rows > 0, "selectivity sanity");
        assert_eq!(out.len(), 1);
        assert!((out.col(0).as_f64()[0] - expect).abs() < 1.0);
    }

    #[test]
    fn invariant_under_storage_configs() {
        assert_config_invariant(6);
    }
}
