//! Property tests for the TPC-H generator: invariants must hold at any
//! (tiny) scale factor and seed.

use proptest::prelude::*;
use scc_tpch::dates::{date, ymd};
use scc_tpch::gen::generate;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generator_invariants(sf_scaled in 5u32..30, seed in any::<u64>()) {
        let sf = sf_scaled as f64 / 10_000.0; // 0.0005 .. 0.003
        let t = generate(sf, seed);

        // Row-count relations.
        let n_orders = t.orders.orderkey.len();
        let n_lines = t.lineitem.orderkey.len();
        prop_assert!(n_lines >= n_orders, "every order has >= 1 line");
        prop_assert!(n_lines <= 7 * n_orders);
        prop_assert_eq!(t.partsupp.partkey.len(), 4 * t.part.partkey.len());
        prop_assert_eq!(t.nation.name.len(), 25);
        prop_assert_eq!(t.region.name.len(), 5);

        // Key integrity.
        let nc = t.customer.custkey.len() as i64;
        prop_assert!(t.orders.custkey.iter().all(|&c| (1..=nc).contains(&c)));
        let np = t.part.partkey.len() as i64;
        prop_assert!(t.lineitem.partkey.iter().all(|&p| (1..=np).contains(&p)));
        let ns = t.supplier.suppkey.len() as i64;
        prop_assert!(t.lineitem.suppkey.iter().all(|&s| (1..=ns).contains(&s)));

        // Lineitems clustered by order key, line numbers restart at 1.
        prop_assert!(t.lineitem.orderkey.windows(2).all(|w| w[0] <= w[1]));
        for i in 0..n_lines {
            if i == 0 || t.lineitem.orderkey[i] != t.lineitem.orderkey[i - 1] {
                prop_assert_eq!(t.lineitem.linenumber[i], 1);
            }
        }

        // Date window and ordering.
        for i in 0..n_lines {
            let ship = t.lineitem.shipdate[i];
            let receipt = t.lineitem.receiptdate[i];
            prop_assert!(receipt > ship);
            let (y, _, _) = ymd(ship);
            prop_assert!((1992..=1998).contains(&y));
        }
        let last_order = date(1998, 8, 2) - 151;
        prop_assert!(t.orders.orderdate.iter().all(|&d| d >= 0 && d <= last_order));

        // Value domains.
        prop_assert!(t.lineitem.quantity.iter().all(|&q| (1..=50).contains(&q)));
        prop_assert!(t.lineitem.discount.iter().all(|&d| (0..=10).contains(&d)));
        prop_assert!(t.lineitem.tax.iter().all(|&x| (0..=8).contains(&x)));
        prop_assert!(t.lineitem.extendedprice.iter().all(|&p| p > 0));

        // Order status consistency with line status.
        for (o, status) in t.orders.orderkey.iter().zip(&t.orders.orderstatus) {
            let lines: Vec<&String> = t
                .lineitem
                .orderkey
                .iter()
                .zip(&t.lineitem.linestatus)
                .filter(|(ok, _)| *ok == o)
                .map(|(_, s)| s)
                .collect();
            if status == "F" {
                prop_assert!(lines.iter().all(|s| s.as_str() == "F"));
            }
        }
    }

    #[test]
    fn same_seed_same_data(seed in any::<u64>()) {
        let a = generate(0.001, seed);
        let b = generate(0.001, seed);
        prop_assert_eq!(a.lineitem.extendedprice, b.lineitem.extendedprice);
        prop_assert_eq!(a.orders.totalprice, b.orders.totalprice);
    }

    #[test]
    fn different_seeds_differ(seed in any::<u64>()) {
        let a = generate(0.001, seed);
        let b = generate(0.001, seed.wrapping_add(1));
        prop_assert_ne!(a.lineitem.shipdate, b.lineitem.shipdate);
    }
}
