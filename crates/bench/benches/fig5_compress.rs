//! Figure 5 (criterion form): compression throughput of the NAIVE, PRED
//! and DC kernels at representative exception rates.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use scc_bench::data::with_exception_rate;
use scc_core::{pfor, CompressKernel};

const B: u32 = 8;
const N: usize = 1 << 20;

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_compress");
    group.throughput(Throughput::Bytes((N * 8) as u64));
    group.sample_size(20);
    for pct in [0u32, 10, 50] {
        let values = with_exception_rate(N, pct as f64 / 100.0, B, 0xBE5C + pct as u64);
        for (label, kernel) in [
            ("naive", CompressKernel::Naive),
            ("pred", CompressKernel::Predicated),
            ("dc", CompressKernel::DoubleCursor),
        ] {
            group.bench_function(format!("{label}_e{pct}"), |b| {
                b.iter(|| pfor::compress_with(black_box(&values), 0, B, kernel))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compress);
criterion_main!(benches);
