//! Figure 7 (criterion form): page-wise vs vector-wise scan throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scc_engine::Operator;
use scc_storage::disk::stats_handle;
use scc_storage::{
    Compression, DecompressionGranularity, Disk, Layout, Scan, ScanMode, ScanOptions, TableBuilder,
};
use std::sync::Arc;

fn bench_granularity(c: &mut Criterion) {
    let rows = 2 * 1024 * 1024;
    let values: Vec<i64> = scc_bench::data::with_exception_rate(rows, 0.05, 8, 7)
        .into_iter()
        .map(|v| v as i64)
        .collect();
    let table =
        TableBuilder::new("col").compression(Compression::Auto).add_i64("x", values).build();
    let mut group = c.benchmark_group("fig7_scan");
    group.throughput(Throughput::Bytes((rows * 8) as u64));
    group.sample_size(10);
    for (label, granularity) in [
        ("vector_wise", DecompressionGranularity::VectorWise),
        ("page_wise", DecompressionGranularity::PageWise),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let stats = stats_handle();
                let opts = ScanOptions {
                    mode: ScanMode::Compressed,
                    granularity,
                    vector_size: 1024,
                    disk: Disk::middle_end(),
                    layout: Layout::Dsm,
                    // Measures decode bandwidth: the drain loop consumes
                    // no values, so the scan itself must decode.
                    code_scan: false,
                };
                let mut scan = Scan::new(Arc::clone(&table), &["x"], opts, stats, None);
                let mut total = 0usize;
                while let Some(batch) = scan.next() {
                    total += batch.len();
                }
                assert_eq!(total, rows);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_granularity);
criterion_main!(benches);
