//! Microbenchmarks of the PACK/UNPACK kernels: the paper reports these
//! cost <10% of total (de)compression time.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use scc_bitpack::{pack, packed_words, unpack};

fn bench_kernels(c: &mut Criterion) {
    let n = 1 << 20;
    let values: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let mut group = c.benchmark_group("bitpack");
    group.throughput(Throughput::Bytes((n * 4) as u64));
    group.sample_size(20);
    for b in [1u32, 4, 8, 13, 24] {
        let masked: Vec<u32> = values.iter().map(|&v| v & scc_bitpack::mask(b)).collect();
        let mut packed = vec![0u32; packed_words(n, b)];
        group.bench_function(format!("pack_b{b}"), |bench| {
            bench.iter(|| pack(black_box(&masked), b, black_box(&mut packed)));
        });
        let mut out = vec![0u32; n];
        group.bench_function(format!("unpack_b{b}"), |bench| {
            bench.iter(|| unpack(black_box(&packed), b, black_box(&mut out)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
