//! Telemetry overhead on the hot decode loop: PFOR decompression with
//! the `scc-obs` registry disabled (the default — one relaxed atomic
//! load per entry point) vs enabled (counters actually recorded).
//!
//! The contract (docs/OBSERVABILITY.md, crates/bench/README.md) is that
//! the *disabled* path stays within 2% of a build with telemetry
//! compiled out entirely; the cheapest way to watch for regressions
//! without a second build is to compare disabled vs enabled here — the
//! disabled side must not drift toward the enabled side's cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use scc_bench::data::with_exception_rate;
use scc_core::pfor;

const B: u32 = 8;
const N: usize = 1 << 20;

fn bench_overhead(c: &mut Criterion) {
    let values = with_exception_rate(N, 0.05, B, 0x0B5);
    let seg = pfor::compress(&values, 0, B);
    let mut out: Vec<u64> = Vec::with_capacity(N);
    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Bytes((N * 8) as u64));
    group.sample_size(30);
    scc_obs::set_enabled(false);
    group.bench_function("pfor_decode_telemetry_off", |b| {
        b.iter(|| {
            out.clear();
            seg.decompress_into(black_box(&mut out));
        })
    });
    scc_obs::set_enabled(true);
    group.bench_function("pfor_decode_telemetry_on", |b| {
        b.iter(|| {
            out.clear();
            seg.decompress_into(black_box(&mut out));
        })
    });
    scc_obs::set_enabled(false);
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
