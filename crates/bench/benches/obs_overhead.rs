//! Telemetry overhead on the hot decode loop: PFOR decompression with
//! the `scc-obs` registry disabled (the default — one relaxed atomic
//! load per entry point) vs enabled (counters actually recorded).
//!
//! The contract (docs/OBSERVABILITY.md, crates/bench/README.md) is that
//! the *disabled* path stays within 2% of a build with telemetry
//! compiled out entirely; the cheapest way to watch for regressions
//! without a second build is to compare disabled vs enabled here — the
//! disabled side must not drift toward the enabled side's cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use scc_bench::data::with_exception_rate;
use scc_core::pfor;
use scc_obs::trace::{self, TraceConfig};
use std::time::Instant;

const B: u32 = 8;
const N: usize = 1 << 20;

fn bench_overhead(c: &mut Criterion) {
    let values = with_exception_rate(N, 0.05, B, 0x0B5);
    let seg = pfor::compress(&values, 0, B);
    let mut out: Vec<u64> = Vec::with_capacity(N);
    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Bytes((N * 8) as u64));
    group.sample_size(30);
    scc_obs::set_enabled(false);
    group.bench_function("pfor_decode_telemetry_off", |b| {
        b.iter(|| {
            out.clear();
            seg.decompress_into(black_box(&mut out));
        })
    });
    scc_obs::set_enabled(true);
    group.bench_function("pfor_decode_telemetry_on", |b| {
        b.iter(|| {
            out.clear();
            seg.decompress_into(black_box(&mut out));
        })
    });
    scc_obs::set_enabled(false);
    group.finish();
}

/// Tracing overhead on the same hot loop, shaped like one server
/// request: a sampled root, an execute span, the decode, a closed
/// per-segment span, and a write span — the taxonomy the server emits
/// per request (docs/OBSERVABILITY.md). Measured at 0%, 1% (the
/// `scc serve` default, target < 3% over collection-off), and 100%
/// head sampling; slow-capture stays off so unsampled requests take
/// the inert-guard path, as in production.
fn bench_trace_overhead(c: &mut Criterion) {
    let values = with_exception_rate(N, 0.05, B, 0x0B5);
    let seg = pfor::compress(&values, 0, B);
    let mut out: Vec<u64> = Vec::with_capacity(N);
    let traced_request = |out: &mut Vec<u64>| {
        let troot = trace::start_root("server.request");
        troot.set_tag("kind", "scan");
        {
            let _ex = trace::span("server.execute");
            let entered = Instant::now();
            out.clear();
            seg.decompress_into(out);
            trace::record_closed(
                "scan.segment",
                entered,
                &[("segment", 0), ("values", out.len() as u64)],
                Some(("kernel", "bench")),
            );
        }
        let _w = trace::span("server.write");
    };
    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Bytes((N * 8) as u64));
    group.sample_size(30);
    trace::set_collect(false);
    group.bench_function("pfor_decode_tracing_off", |b| {
        b.iter(|| traced_request(black_box(&mut out)))
    });
    for (label, rate) in [("sampled_0pct", 0.0), ("sampled_1pct", 0.01), ("sampled_100pct", 1.0)] {
        trace::set_collect(true);
        trace::configure(TraceConfig { sample_rate: rate, slow_ns: 0 });
        group.bench_function(format!("pfor_decode_tracing_{label}"), |b| {
            b.iter(|| traced_request(black_box(&mut out)))
        });
        trace::set_collect(false);
        trace::drain();
    }
    group.finish();
}

criterion_group!(benches, bench_overhead, bench_trace_overhead);
criterion_main!(benches);
