//! Table 4 (criterion form): inverted-file codec decompression
//! throughput on one TREC-like collection.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scc_ir::{compress_file, gap_stream, synthesize, CollectionPreset, PostingsCodec};

fn bench_codecs(c: &mut Criterion) {
    let collection = synthesize(CollectionPreset::TrecFbis, 0xBE44);
    let gaps = gap_stream(&collection);
    let mut group = c.benchmark_group("table4_fbis");
    group.throughput(Throughput::Bytes((gaps.len() * 4) as u64));
    group.sample_size(10);
    for codec in [
        PostingsCodec::PforDelta,
        PostingsCodec::Carryover12,
        PostingsCodec::Shuff,
        PostingsCodec::VByte,
    ] {
        let file = compress_file(&gaps, codec);
        let mut out = Vec::with_capacity(gaps.len());
        group.bench_function(format!("dec_{}", codec.name()), |b| {
            b.iter(|| {
                out.clear();
                file.decompress_into(&mut out);
            })
        });
        group.bench_function(format!("comp_{}", codec.name()), |b| {
            b.iter(|| compress_file(&gaps, codec))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
