//! Figure 2 (criterion form): codec decompression throughput on one
//! representative TPC-H column (L_ORDERKEY).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use scc_baselines::{
    bwt::BwtCodec, deflate_like::DeflateLike, lzrw1::Lzrw1, lzss::Lzss, ByteCodec,
};
use scc_bench::data::to_le_bytes_i64;
use scc_core::{analyze, compress_with_plan, AnalyzeOpts};

fn bench_columns(c: &mut Criterion) {
    let raw = scc_tpch::generate(0.01, 42);
    let col = raw.lineitem.orderkey;
    let bytes = to_le_bytes_i64(&col);
    let mut group = c.benchmark_group("fig2_l_orderkey");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.sample_size(10);
    let codecs: Vec<Box<dyn ByteCodec>> =
        vec![Box::new(Lzrw1), Box::new(Lzss), Box::new(DeflateLike), Box::new(BwtCodec)];
    for codec in &codecs {
        let compressed = codec.compress_vec(&bytes);
        let mut out = Vec::with_capacity(bytes.len());
        group.bench_function(format!("dec_{}", codec.name()), |b| {
            b.iter(|| {
                out.clear();
                codec.decompress(black_box(&compressed), bytes.len(), &mut out);
            })
        });
    }
    let plan = analyze(&col, &AnalyzeOpts::default()).best().unwrap().plan.clone();
    let seg = compress_with_plan(&col, &plan);
    let mut out: Vec<i64> = Vec::with_capacity(col.len());
    group.bench_function("dec_pfor", |b| {
        b.iter(|| {
            out.clear();
            seg.decompress_into(black_box(&mut out));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_columns);
criterion_main!(benches);
