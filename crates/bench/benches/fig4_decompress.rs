//! Figure 4 (criterion form): decompression throughput of NAIVE vs PFOR
//! vs PDICT at representative exception rates.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use scc_bench::data::with_exception_rate;
use scc_core::{pdict, pfor, Dictionary, NaiveSegment};

const B: u32 = 8;
const N: usize = 1 << 20;

fn bench_decompress(c: &mut Criterion) {
    let dict = Dictionary::new((0..1u64 << B).collect());
    let mut group = c.benchmark_group("fig4_decompress");
    group.throughput(Throughput::Bytes((N * 8) as u64));
    group.sample_size(20);
    for pct in [0u32, 10, 50] {
        let values = with_exception_rate(N, pct as f64 / 100.0, B, 0xBE4C + pct as u64);
        let naive = NaiveSegment::compress(&values, 0, B);
        let seg = pfor::compress(&values, 0, B);
        let pseg = pdict::compress_with(&values, &dict, B, Default::default());
        let mut out: Vec<u64> = Vec::with_capacity(N);
        group.bench_function(format!("naive_e{pct}"), |b| {
            b.iter(|| {
                out.clear();
                naive.decompress_into(black_box(&mut out));
            })
        });
        group.bench_function(format!("pfor_e{pct}"), |b| {
            b.iter(|| {
                out.clear();
                seg.decompress_into(black_box(&mut out));
            })
        });
        group.bench_function(format!("pdict_e{pct}"), |b| {
            b.iter(|| {
                out.clear();
                pseg.decompress_into(black_box(&mut out));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decompress);
criterion_main!(benches);
