//! Synthetic data generators for the microbenchmarks.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates `n` 64-bit values of which a fraction `rate` are exceptions
/// relative to `b`-bit PFOR coding from base 0 (the paper's Figure 4/5
/// microbenchmark data: "64-bit data items into 8 bits codes ... under
/// various degrees of skew").
pub fn with_exception_rate(n: usize, rate: f64, b: u32, seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let limit = 1u64 << b;
    (0..n)
        .map(|_| {
            if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                // Outlier: far outside the coded window.
                limit + 1 + rng.gen_range(0..1u64 << 40)
            } else {
                rng.gen_range(0..limit)
            }
        })
        .collect()
}

/// The empirical exception rate of `values` at width `b` (before
/// compulsory exceptions).
pub fn data_exception_rate(values: &[u64], b: u32) -> f64 {
    let limit = 1u64 << b;
    values.iter().filter(|&&v| v >= limit).count() as f64 / values.len().max(1) as f64
}

/// Serializes a `u64` column to little-endian bytes (for byte codecs).
pub fn to_le_bytes_u64(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Serializes an `i64` column to little-endian bytes.
pub fn to_le_bytes_i64(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Serializes an `i32` column to little-endian bytes.
pub fn to_le_bytes_i32(values: &[i32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exception_rate_tracks_request() {
        for rate in [0.0, 0.1, 0.5, 1.0] {
            let v = with_exception_rate(50_000, rate, 8, 7);
            let actual = data_exception_rate(&v, 8);
            assert!((actual - rate).abs() < 0.02, "want {rate} got {actual}");
        }
    }

    #[test]
    fn byte_serialization_lengths() {
        assert_eq!(to_le_bytes_u64(&[1, 2, 3]).len(), 24);
        assert_eq!(to_le_bytes_i32(&[1, 2, 3]).len(), 12);
    }
}
