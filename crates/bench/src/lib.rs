//! Experiment harness shared by the per-table/per-figure binaries and the
//! Criterion benches.
//!
//! Every binary under `src/bin/exp_*.rs` regenerates one table or figure
//! of the paper (see DESIGN.md §3 for the index). Binaries print
//! fixed-width text tables shaped like the paper's, plus the paper's
//! published values where applicable so shapes can be compared at a
//! glance.

#![warn(missing_docs)]

use std::time::Instant;

pub mod data;
pub mod metrics;

/// Median-of-`runs` wall time for `f`, in seconds. `f` must do the same
/// work every call.
pub fn time_median(runs: usize, mut f: impl FnMut()) -> f64 {
    assert!(runs >= 1);
    let mut times = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    times[times.len() / 2]
}

/// Bytes-per-second over a measured time, in MB/s (2^20).
pub fn mb_per_sec(bytes: usize, seconds: f64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0) / seconds
}

/// Bytes-per-second over a measured time, in GB/s (2^30).
pub fn gb_per_sec(bytes: usize, seconds: f64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0 * 1024.0) / seconds
}

/// Reads an f64 experiment parameter from the environment, with default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads a usize experiment parameter from the environment, with default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_timing_is_positive() {
        let t = time_median(3, || {
            std::hint::black_box((0..10_000u64).sum::<u64>());
        });
        assert!(t > 0.0);
    }

    #[test]
    fn bandwidth_units() {
        assert!((mb_per_sec(1024 * 1024, 1.0) - 1.0).abs() < 1e-12);
        assert!((gb_per_sec(1 << 30, 2.0) - 0.5).abs() < 1e-12);
    }
}
