//! `--metrics-json` support shared by every `exp_*` binary.
//!
//! Usage in a binary's `main`:
//!
//! ```no_run
//! let metrics = scc_bench::metrics::init();
//! // ... run the experiment ...
//! metrics.finish();
//! ```
//!
//! When the process was started with `--metrics-json <path>`, [`init`]
//! enables the global `scc-obs` registry (telemetry is off by default, so
//! unflagged runs measure exactly what they measured before), and
//! [`MetricsSink::finish`] publishes the derived per-scheme gauges and
//! writes the registry as schema-v1 JSON (see `docs/OBSERVABILITY.md`).

use std::path::PathBuf;

/// Deferred metrics dump; created by [`init`], consumed by
/// [`finish`](MetricsSink::finish).
#[must_use = "call .finish() at the end of main to write the dump"]
pub struct MetricsSink {
    path: Option<PathBuf>,
}

/// Parses `--metrics-json <path>` from the process arguments and enables
/// telemetry when present. Call first thing in `main`, before any data is
/// generated or compressed.
pub fn init() -> MetricsSink {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .iter()
        .position(|a| a == "--metrics-json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    if path.is_some() {
        scc_obs::set_enabled(true);
    }
    MetricsSink { path }
}

impl MetricsSink {
    /// True when `--metrics-json` was given (telemetry is live).
    pub fn active(&self) -> bool {
        self.path.is_some()
    }

    /// Publishes derived gauges and writes the JSON dump, if requested.
    /// Exits nonzero when the file cannot be written — a CI smoke job
    /// must not mistake a missing dump for a passing run.
    pub fn finish(self) {
        let Some(path) = self.path else { return };
        scc_core::telemetry::publish_derived();
        if let Err(e) = scc_obs::export::write_file(scc_obs::global(), &path) {
            eprintln!("metrics: failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("metrics written to {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_flag_means_inactive() {
        // The test harness was not started with --metrics-json.
        let sink = init();
        assert!(!sink.active());
        sink.finish(); // no-op, must not write or exit
    }
}
