//! §3.1 "Fine-Grained Access" — the cost of sparse random value lookups
//! in compressed segments.
//!
//! The paper: the patch-list walk takes 8-11 cycles per iteration, at
//! most ~21 iterations at 30% exceptions, so random access costs ~200
//! work cycles per value — the same ballpark as the DRAM miss (150-400
//! cycles) that the lookup causes anyway. PFOR-DELTA additionally
//! reconstructs its 128-value block.
//!
//! Environment: `SCC_N` segment size (default 4 Mi values).

use scc_bench::data::with_exception_rate;
use scc_bench::{env_f64, env_usize, time_median};
use scc_core::{pfor, pfordelta};

fn main() {
    let metrics = scc_bench::metrics::init();
    let n = env_usize("SCC_N", 4 * 1024 * 1024);
    let ghz = env_f64("SCC_GHZ", 0.0); // optional: CPU GHz for cycle estimates
    let lookups: Vec<usize> = (0..100_000).map(|i| (i * 2_654_435_761usize) % n).collect();
    println!("fine-grained access: 100K random lookups in a {n}-value segment");
    println!(
        "{:>6} {:>16} {:>16} {:>18}",
        "E", "PFOR ns/get", "PFOR-DELTA ns/get", "full-decode ns/val"
    );
    for pct in [0u32, 5, 10, 20, 30] {
        let rate = pct as f64 / 100.0;
        let values = with_exception_rate(n, rate, 8, 0xF6 + pct as u64);
        let seg = pfor::compress(&values, 0, 8);
        let mut acc = 0u64;
        let t_get = time_median(3, || {
            acc = 0;
            for &i in &lookups {
                acc = acc.wrapping_add(seg.get(i));
            }
        });
        // Correctness spot-check.
        assert_eq!(seg.get(lookups[0]), values[lookups[0]]);
        // PFOR-DELTA: per-get block reconstruction.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let dseg = pfordelta::compress(&sorted, 0, 0, 8);
        let t_dget = time_median(3, || {
            acc = 0;
            for &i in &lookups {
                acc = acc.wrapping_add(dseg.get(i));
            }
        });
        // Reference: amortized cost of full sequential decode.
        let mut out = Vec::with_capacity(n);
        let t_full = time_median(3, || {
            out.clear();
            seg.decompress_into(&mut out);
        });
        let ns_get = t_get / lookups.len() as f64 * 1e9;
        let ns_dget = t_dget / lookups.len() as f64 * 1e9;
        let ns_full = t_full / n as f64 * 1e9;
        println!("{:>5.2} {:>16.1} {:>16.1} {:>18.2}", rate, ns_get, ns_dget, ns_full);
        if ghz > 0.0 && pct == 30 {
            println!(
                "       (~{:.0} cycles/get at {ghz} GHz; paper: ~200 work cycles)",
                ns_get * ghz
            );
        }
    }
    println!("\npaper shape: random access costs a few hundred ns-equivalent cycles —");
    println!("within the DRAM-miss ballpark — and grows with E (longer list walks);");
    println!("PFOR-DELTA pays a constant block-decode premium; sequential decode is");
    println!("orders of magnitude cheaper per value.");
    metrics.finish();
}
