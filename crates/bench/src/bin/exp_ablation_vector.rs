//! Ablation — the vector-size design choice (§2.3: "the vector size is
//! typically a few hundreds of tuples").
//!
//! Sweeps the tuples-per-vector knob on a scan+filter+aggregate pipeline:
//! tiny vectors pay per-call overhead (the Volcano regime), huge vectors
//! spill the working set out of cache (the page-wise regime); the paper's
//! few-hundred-to-1K sweet spot sits between.
//!
//! Environment: `SCC_ROWS` (default 8 Mi).

use scc_bench::{env_usize, gb_per_sec, time_median};
use scc_engine::{AggExpr, Expr, HashAggregate, Operator, Select};
use scc_storage::disk::stats_handle;
use scc_storage::{Compression, Disk, Layout, Scan, ScanMode, ScanOptions, TableBuilder};
use std::sync::Arc;

fn main() {
    let metrics = scc_bench::metrics::init();
    let rows = env_usize("SCC_ROWS", 8 * 1024 * 1024);
    let table = TableBuilder::new("t")
        .compression(Compression::Auto)
        .add_i64("v", (0..rows as i64).map(|i| (i * 37) % 2000).collect())
        .add_i64("w", (0..rows as i64).map(|i| (i * 13) % 500).collect())
        .build();
    println!("vector-size ablation: select v < 1000, sum(w) over {rows} rows");
    println!("{:>8} {:>12} {:>14}", "vector", "GB/s", "vs 1024");
    let mut at_1024 = 0.0f64;
    let mut results = Vec::new();
    for vs in [128usize, 256, 512, 1024, 2048, 4096, 16_384, 65_536] {
        let t = time_median(3, || {
            let scan = Scan::new(
                Arc::clone(&table),
                &["v", "w"],
                ScanOptions {
                    mode: ScanMode::Compressed,
                    vector_size: vs,
                    disk: Disk::middle_end(),
                    layout: Layout::Dsm,
                    // The ablation measures per-vector decode
                    // amortization, so decode must stay in the scan.
                    code_scan: false,
                    ..Default::default()
                },
                stats_handle(),
                None,
            );
            let filtered = Select::new(scan, Expr::col(0).lt(Expr::lit_i64(1000)));
            let mut agg = HashAggregate::new(filtered, vec![], vec![AggExpr::Sum(Expr::col(1))]);
            std::hint::black_box(agg.next());
        });
        let bw = gb_per_sec(rows * 16, t);
        if vs == 1024 {
            at_1024 = bw;
        }
        results.push((vs, bw));
    }
    for (vs, bw) in results {
        println!("{:>8} {:>12.2} {:>13.2}x", vs, bw, bw / at_1024);
    }
    println!("\nexpected shape: throughput rises steeply from 128 to ~1K tuples (per-");
    println!("vector overheads amortize), then flattens or dips as the per-vector");
    println!("working set outgrows the cache.");
    metrics.finish();
}
