//! Validates a Chrome trace-event JSON file produced by
//! `scc serve --trace-out` / `scc loadgen --trace-json` (the
//! `scc_obs::trace` exporter). Exit 0 = valid; nonzero with one line
//! per violation otherwise. The CI trace-smoke job runs this over both
//! sides of a chaos loadgen run, so a malformed or disconnected trace
//! fails the build before it fails a human in Perfetto.
//!
//! Checks, per `docs/OBSERVABILITY.md` "Tracing":
//!
//! * the document is `{"traceEvents": [...], ...}` and every event is
//!   a complete-duration event (`ph == "X"`) with `name`, `ts`, `dur`,
//!   `pid`, `tid` and hex `trace_id`/`span_id`/`parent_id` args;
//! * timestamps are monotone non-decreasing in file order (the
//!   exporter sorts; an unsorted file breaks Perfetto's flow);
//! * within each trace, every span's parent resolves to another span
//!   of the same trace — except roots (`parent_id == 0x0`) and spans
//!   whose parent lives in another process's file, which must be
//!   marked `remote_parent` — i.e. **no orphans**;
//! * `span_id`s are unique within their trace.
//!
//! Usage: `validate_trace <trace.json> [--require <span-name>]...
//! [--min-spans N]`
//!
//! `--require` asserts at least one span with that name is present
//! (e.g. `server.request`, `scan.segment`); `--min-spans` guards
//! against a silently-empty capture.

use scc_obs::json::{parse, Json};
use std::collections::{HashMap, HashSet};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut required: Vec<String> = Vec::new();
    let mut min_spans = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--require" => {
                i += 1;
                match args.get(i) {
                    Some(name) => required.push(name.clone()),
                    None => die("--require needs a span name"),
                }
            }
            "--min-spans" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => min_spans = n,
                    None => die("--min-spans needs a count"),
                }
            }
            a if path.is_none() => path = Some(a.to_string()),
            a => die(&format!("unexpected argument {a:?}")),
        }
        i += 1;
    }
    let Some(path) = path else {
        die("usage: validate_trace <trace.json> [--require <span-name>]... [--min-spans N]");
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => die(&format!("cannot read {path}: {e}")),
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => die(&format!("{path} is not valid JSON: {e}")),
    };

    let mut errors: Vec<String> = Vec::new();
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        die(&format!("{path}: no traceEvents array"));
    };

    // Pass 1: per-event shape, monotone timestamps, span table.
    let mut last_ts = f64::NEG_INFINITY;
    // (trace_id -> set of span_ids) and the parent edges to resolve.
    let mut spans_by_trace: HashMap<u64, HashSet<u64>> = HashMap::new();
    // (event index, name, trace, span, parent, remote_parent)
    let mut edges: Vec<(usize, String, u64, u64, u64, bool)> = Vec::new();
    let mut names_seen: HashSet<String> = HashSet::new();
    for (idx, ev) in events.iter().enumerate() {
        let name = match ev.get("name").and_then(Json::as_str) {
            Some(n) if !n.is_empty() => n.to_string(),
            _ => {
                errors.push(format!("event {idx}: missing or empty name"));
                continue;
            }
        };
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            errors.push(format!("event {idx} ({name}): ph is not \"X\""));
        }
        for key in ["pid", "tid"] {
            if ev.get(key).and_then(Json::as_u64).is_none() {
                errors.push(format!("event {idx} ({name}): missing {key}"));
            }
        }
        let ts = ev.get("ts").and_then(Json::as_f64);
        let dur = ev.get("dur").and_then(Json::as_f64);
        match (ts, dur) {
            (Some(ts), Some(dur)) => {
                if ts < 0.0 || dur < 0.0 {
                    errors.push(format!("event {idx} ({name}): negative ts or dur"));
                }
                if ts < last_ts {
                    errors.push(format!(
                        "event {idx} ({name}): ts {ts} decreases from {last_ts} — not sorted"
                    ));
                }
                last_ts = ts.max(last_ts);
            }
            _ => errors.push(format!("event {idx} ({name}): ts/dur missing or non-numeric")),
        }
        let Some(args_obj) = ev.get("args") else {
            errors.push(format!("event {idx} ({name}): missing args"));
            continue;
        };
        let id = |key: &str| -> Option<u64> {
            let s = args_obj.get(key)?.as_str()?;
            u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
        };
        let (Some(trace), Some(span), Some(parent)) =
            (id("trace_id"), id("span_id"), id("parent_id"))
        else {
            errors.push(format!(
                "event {idx} ({name}): trace_id/span_id/parent_id absent or not 0x-hex"
            ));
            continue;
        };
        if span == 0 {
            errors.push(format!("event {idx} ({name}): span_id is zero"));
        }
        let remote = args_obj.get("remote_parent").and_then(Json::as_u64) == Some(1);
        if !spans_by_trace.entry(trace).or_default().insert(span) {
            errors.push(format!("event {idx} ({name}): duplicate span_id 0x{span:016x}"));
        }
        names_seen.insert(name.clone());
        edges.push((idx, name, trace, span, parent, remote));
    }

    // Pass 2: parenting. A span is legitimate iff it is a root
    // (parent 0), its parent exists in the same trace in this file, or
    // its parent is explicitly remote (lives in the peer's file).
    let mut orphans = 0usize;
    for (idx, name, trace, _span, parent, remote) in &edges {
        if *parent == 0 || *remote {
            continue;
        }
        if !spans_by_trace[trace].contains(parent) {
            orphans += 1;
            errors.push(format!(
                "event {idx} ({name}): orphan — parent 0x{parent:016x} not in trace \
                 0x{trace:016x} and not marked remote_parent"
            ));
        }
    }

    if events.len() < min_spans {
        errors.push(format!("only {} span(s), --min-spans {min_spans}", events.len()));
    }
    for name in &required {
        if !names_seen.contains(name) {
            errors.push(format!("required span {name:?} is missing"));
        }
    }

    if errors.is_empty() {
        println!(
            "{path}: valid trace ({} span(s), {} trace(s), 0 orphans)",
            events.len(),
            spans_by_trace.len()
        );
    } else {
        for e in errors.iter().take(50) {
            eprintln!("{path}: {e}");
        }
        if errors.len() > 50 {
            eprintln!("{path}: ... and {} more", errors.len() - 50);
        }
        let _ = orphans;
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("validate_trace: {msg}");
    std::process::exit(2);
}
