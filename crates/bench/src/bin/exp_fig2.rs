//! Figure 2 — compression ratio, compression speed and decompression
//! speed of general-purpose codecs vs PFOR on four TPC-H lineitem
//! columns (L_ORDERKEY, L_LINENUMBER, L_COMMITDATE, L_EXTENDEDPRICE).
//!
//! `zlib`, `bzip2` and `lzop` are represented by our from-scratch
//! deflate-like, BWT-block and LZSS codecs (DESIGN.md §4, substitution
//! 2), with classic LZW added for the §2.1 related-work comparison. PFOR
//! runs through the scc-core analyzer exactly as the storage layer
//! would.
//!
//! Environment: `SCC_SF` (default 0.05) scales the dataset.
//!
//! Besides the text table, writes the measurements as
//! `results/BENCH_decode.json` (override with `--json <path>`), in the
//! same `{bench, command, params..., sweeps: [{params..., report}]}`
//! shape as `BENCH_server.json` / `BENCH_kernels.json`.

use scc_baselines::{
    bwt::BwtCodec, deflate_like::DeflateLike, lzrw1::Lzrw1, lzss::Lzss, lzw::Lzw, ByteCodec,
};
use scc_bench::data::{to_le_bytes_i32, to_le_bytes_i64};
use scc_bench::{env_f64, mb_per_sec, time_median};
use scc_core::{analyze, compress_with_plan, AnalyzeOpts};
use scc_obs::json::Json;

struct ColumnCase {
    name: &'static str,
    bytes: Vec<u8>,
    as_i64: Option<Vec<i64>>,
    as_i32: Option<Vec<i32>>,
}

fn measure_byte_codec(codec: &dyn ByteCodec, input: &[u8]) -> (f64, f64, f64) {
    let mut compressed = Vec::new();
    let comp_t = time_median(3, || {
        compressed.clear();
        codec.compress(input, &mut compressed);
    });
    let mut out = Vec::with_capacity(input.len());
    let dec_t = time_median(3, || {
        out.clear();
        codec.decompress(&compressed, input.len(), &mut out);
    });
    assert_eq!(out, input, "{} roundtrip", codec.name());
    let ratio = input.len() as f64 / compressed.len() as f64;
    (ratio, mb_per_sec(input.len(), comp_t), mb_per_sec(input.len(), dec_t))
}

fn measure_pfor_i64(values: &[i64]) -> (f64, f64, f64) {
    let analysis = analyze(values, &AnalyzeOpts::default());
    let plan = analysis.best().expect("analyzable").plan.clone();
    let mut seg = compress_with_plan(values, &plan);
    let comp_t = time_median(3, || {
        seg = compress_with_plan(values, &plan);
    });
    let mut out: Vec<i64> = Vec::with_capacity(values.len());
    let dec_t = time_median(5, || {
        out.clear();
        seg.decompress_into(&mut out);
    });
    assert_eq!(out, values);
    let raw = values.len() * 8;
    let ratio = raw as f64 / seg.compressed_bytes() as f64;
    (ratio, mb_per_sec(raw, comp_t), mb_per_sec(raw, dec_t))
}

fn measure_pfor_i32(values: &[i32]) -> (f64, f64, f64) {
    let analysis = analyze(values, &AnalyzeOpts::default());
    let plan = analysis.best().expect("analyzable").plan.clone();
    let mut seg = compress_with_plan(values, &plan);
    let comp_t = time_median(3, || {
        seg = compress_with_plan(values, &plan);
    });
    let mut out: Vec<i32> = Vec::with_capacity(values.len());
    let dec_t = time_median(5, || {
        out.clear();
        seg.decompress_into(&mut out);
    });
    assert_eq!(out, values);
    let raw = values.len() * 4;
    let ratio = raw as f64 / seg.compressed_bytes() as f64;
    (ratio, mb_per_sec(raw, comp_t), mb_per_sec(raw, dec_t))
}

fn sweep_row(column: &str, codec: &str, ratio: f64, comp: f64, dec: f64) -> Json {
    Json::Obj(vec![
        ("column".into(), Json::Str(column.into())),
        ("codec".into(), Json::Str(codec.into())),
        (
            "report".into(),
            Json::Obj(vec![
                ("ratio".into(), Json::F64(ratio)),
                ("comp_mb_per_sec".into(), Json::F64(comp)),
                ("dec_mb_per_sec".into(), Json::F64(dec)),
            ]),
        ),
    ])
}

fn main() {
    let metrics = scc_bench::metrics::init();
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_decode.json".into());
    let sf = env_f64("SCC_SF", 0.05);
    eprintln!("generating TPC-H at SF {sf}...");
    let raw = scc_tpch::generate(sf, 42);
    let cases = vec![
        ColumnCase {
            name: "L_ORDERKEY",
            bytes: to_le_bytes_i64(&raw.lineitem.orderkey),
            as_i64: Some(raw.lineitem.orderkey.clone()),
            as_i32: None,
        },
        ColumnCase {
            name: "L_LINENUMBER",
            bytes: to_le_bytes_i32(&raw.lineitem.linenumber),
            as_i64: None,
            as_i32: Some(raw.lineitem.linenumber.clone()),
        },
        ColumnCase {
            name: "L_COMMITDATE",
            bytes: to_le_bytes_i32(&raw.lineitem.commitdate),
            as_i64: None,
            as_i32: Some(raw.lineitem.commitdate.clone()),
        },
        ColumnCase {
            name: "L_EXTENDEDPRICE",
            bytes: to_le_bytes_i64(&raw.lineitem.extendedprice),
            as_i64: Some(raw.lineitem.extendedprice.clone()),
            as_i32: None,
        },
    ];
    let byte_codecs: Vec<(&str, Box<dyn ByteCodec>)> = vec![
        ("zlib-class (deflate-like)", Box::new(DeflateLike)),
        ("bzip2-class (bwt)", Box::new(BwtCodec)),
        ("lzw", Box::new(Lzw)),
        ("lzrw1", Box::new(Lzrw1)),
        ("lzop-class (lzss)", Box::new(Lzss)),
    ];
    println!("Figure 2: codec comparison on TPC-H columns (SF {sf})");
    println!("paper shape: LZ-family decompresses at 200-500 MB/s and compresses far");
    println!("slower; PFOR exceeds 1 GB/s compression and multi-GB/s decompression.");
    let mut sweeps: Vec<Json> = Vec::new();
    for case in &cases {
        println!("\n=== {} ({} MB raw) ===", case.name, case.bytes.len() / (1024 * 1024));
        println!("{:<28} {:>7} {:>12} {:>12}", "codec", "ratio", "comp MB/s", "dec MB/s");
        for (label, codec) in &byte_codecs {
            let (r, c, d) = measure_byte_codec(codec.as_ref(), &case.bytes);
            println!("{label:<28} {r:>7.2} {c:>12.1} {d:>12.1}");
            sweeps.push(sweep_row(case.name, label, r, c, d));
        }
        let (r, c, d) = match (&case.as_i64, &case.as_i32) {
            (Some(v), _) => measure_pfor_i64(v),
            (_, Some(v)) => measure_pfor_i32(v),
            _ => unreachable!(),
        };
        println!("{:<28} {r:>7.2} {c:>12.1} {d:>12.1}", "PFOR (auto scheme)");
        sweeps.push(sweep_row(case.name, "PFOR (auto scheme)", r, c, d));
    }
    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("figure 2 codec comparison".into())),
        ("command".into(), Json::Str("exp_fig2 (SCC_SF scales the dataset)".into())),
        ("sf".into(), Json::F64(sf)),
        ("kernel_class".into(), Json::Str(scc_bitpack::kernel::active().name().into())),
        ("sweeps".into(), Json::Arr(sweeps)),
    ]);
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&json_path, doc.pretty()).expect("write decode json");
    println!("\nwrote {json_path}");
    metrics.finish();
}
