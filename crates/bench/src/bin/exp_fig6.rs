//! Figure 6 — compulsory exceptions: the effective exception rate E' as
//! a function of the data exception rate E for small code widths,
//! analytic model vs the rate the real compressor produces.

use scc_bench::data::with_exception_rate;
use scc_core::pfor;
use scc_model::effective_exception_rate;

const N: usize = 512 * 1024;

fn main() {
    let metrics = scc_bench::metrics::init();
    println!("Figure 6: effective exception rate E' vs data exception rate E");
    println!("model = paper's formula; real = exceptions the compressor actually stored");
    println!(
        "{:>6} | {:>7} {:>7} | {:>7} {:>7} | {:>7} {:>7} | {:>7} {:>7} | {:>7}",
        "E",
        "b1 mod",
        "b1 real",
        "b2 mod",
        "b2 real",
        "b3 mod",
        "b3 real",
        "b4 mod",
        "b4 real",
        "b8 real"
    );
    for pct in [0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0, 15.0, 20.0, 25.0, 30.0] {
        let e = pct / 100.0;
        let mut cols = vec![format!("{e:>6.3}")];
        for b in [1u32, 2, 3, 4] {
            let model = effective_exception_rate(e, b);
            let values = with_exception_rate(N, e, b, 0xF16 + (pct * 10.0) as u64);
            let seg = pfor::compress(&values, 0, b);
            let real = seg.exception_count() as f64 / N as f64;
            cols.push(format!("{model:>7.3} {real:>7.3}"));
        }
        // b=8 control: no compulsories possible.
        let values = with_exception_rate(N, e, 8, 0xF16);
        let seg = pfor::compress(&values, 0, 8);
        cols.push(format!("{:>7.3}", seg.exception_count() as f64 / N as f64));
        println!("{}", cols.join(" | "));
    }
    println!("\npaper shape: at b=1, E' shoots toward ~0.47 for E>0.01; at b=2 toward");
    println!("~0.22; negligible for b>4. (Our per-block list restart makes the real");
    println!("E' sit at or slightly below the model, which assumes one global list.)");
    metrics.finish();
}
