//! Ablation — per-column scheme choice on TPC-H.
//!
//! §3.1 "Choosing Compression Schemes": the materialization operator
//! samples each chunk and picks the scheme and width automatically. This
//! table shows what the analyzer decides for every scannable lineitem and
//! orders column, the estimated and realized bits/value, and what the
//! *other* schemes would have cost — quantifying how much the automatic
//! choice matters.
//!
//! Environment: `SCC_SF` (default 0.02).

use scc_bench::env_f64;
use scc_core::{analyze, compress_with_plan, AnalyzeOpts, Plan};

fn report_column(name: &str, values: &[i64]) {
    let v32ish: Vec<i64> = values.to_vec();
    let analysis = analyze(&v32ish, &AnalyzeOpts::default());
    let Some(best) = analysis.best() else {
        println!("{name:<18} (empty)");
        return;
    };
    let seg = compress_with_plan(&v32ish, &best.plan);
    assert_eq!(seg.decompress(), v32ish);
    // The best candidate per scheme family, for comparison.
    let family_best = |f: fn(&Plan<i64>) -> bool| {
        analysis
            .candidates
            .iter()
            .filter(|c| f(&c.plan))
            .map(|c| c.est_bits_per_value)
            .fold(f64::INFINITY, f64::min)
    };
    println!(
        "{:<18} {:<10} b={:<2} {:>7.2} real {:>6.2} | PFOR {:>6.2} DELTA {:>6.2} PDICT {:>6.2}",
        name,
        best.plan.name(),
        best.plan.bit_width(),
        best.est_bits_per_value,
        seg.stats().bits_per_value,
        family_best(|p| matches!(p, Plan::Pfor { .. })),
        family_best(|p| matches!(p, Plan::PforDelta { .. })),
        family_best(|p| matches!(p, Plan::Pdict { .. })),
    );
}

fn main() {
    let metrics = scc_bench::metrics::init();
    let sf = env_f64("SCC_SF", 0.02);
    eprintln!("generating TPC-H at SF {sf}...");
    let raw = scc_tpch::generate(sf, 0xAB1A);
    println!("analyzer decisions per column (bits/value; 64-bit raw)");
    println!(
        "{:<18} {:<10} {:<4} {:>7} {:>11} | best per family (est)",
        "column", "scheme", "", "est", ""
    );
    let l = &raw.lineitem;
    report_column("l_orderkey", &l.orderkey);
    report_column("l_partkey", &l.partkey);
    report_column("l_suppkey", &l.suppkey);
    report_column("l_quantity", &l.quantity);
    report_column("l_extendedprice", &l.extendedprice);
    report_column("l_discount", &l.discount);
    report_column("l_tax", &l.tax);
    report_column("l_shipdate", &l.shipdate.iter().map(|&d| d as i64).collect::<Vec<_>>());
    report_column("l_linenumber", &l.linenumber.iter().map(|&d| d as i64).collect::<Vec<_>>());
    let o = &raw.orders;
    report_column("o_orderkey", &o.orderkey);
    report_column("o_custkey", &o.custkey);
    report_column("o_totalprice", &o.totalprice);
    report_column("o_orderdate", &o.orderdate.iter().map(|&d| d as i64).collect::<Vec<_>>());
    println!("\nexpected: sorted keys -> PFOR-DELTA; clustered dates/prices -> PFOR;");
    println!("tiny domains (quantity, discount, tax, linenumber) -> PFOR or PDICT at");
    println!("the domain width; the chosen family should match the per-family minimum.");
    metrics.finish();
}
