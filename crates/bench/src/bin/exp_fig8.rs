//! Figure 8 — TPC-H query time split into I/O stalls, decompression and
//! other processing, normalized to the uncompressed run, for the three
//! paper configurations: low-end DSM, middle-end DSM, middle-end PAX.
//!
//! Environment: `SCC_SF` (default 0.05).

use scc_bench::env_f64;
use scc_storage::{Disk, Layout, ScanMode};
use scc_tpch::queries::{run_query, PAPER_QUERIES};
use scc_tpch::{QueryConfig, TpchDb};

struct Split {
    io_stall: f64,
    decompress: f64,
    processing: f64,
    retries: u64,
    checksum_failures: u64,
    quarantined: u64,
}

fn split(db: &TpchDb, q: u32, disk: Disk, layout: Layout, mode: ScanMode) -> Split {
    let cfg = QueryConfig { mode, layout, disk, ..Default::default() };
    let run = run_query(db, &cfg, q);
    Split {
        io_stall: run.stats.stall_seconds(run.cpu_seconds),
        decompress: run.stats.decompress_seconds,
        processing: run.processing_seconds(),
        retries: run.stats.retries,
        checksum_failures: run.stats.checksum_failures,
        quarantined: run.stats.quarantined_chunks,
    }
}

fn main() {
    let metrics = scc_bench::metrics::init();
    let sf = env_f64("SCC_SF", 0.05);
    eprintln!("generating + loading TPC-H at SF {sf}...");
    let db = TpchDb::generate(sf, 0x7AB2);
    for (label, disk, layout) in [
        ("low-end 80MB/s, DSM", Disk::low_end(), Layout::Dsm),
        ("middle-end 350MB/s, DSM", Disk::middle_end(), Layout::Dsm),
        ("middle-end 350MB/s, PAX", Disk::middle_end(), Layout::Pax),
    ] {
        println!("\n=== Figure 8 panel: {label} ===");
        let mut faults = (0u64, 0u64, 0u64);
        println!(
            "{:>3} | {:>28} | {:>38}",
            "Q", "uncompressed (stall/proc %)", "compressed (stall/dec/proc %, of unc total)"
        );
        for q in PAPER_QUERIES {
            let unc = split(&db, q, disk, layout, ScanMode::Uncompressed);
            let cmp = split(&db, q, disk, layout, ScanMode::Compressed);
            let total_unc = unc.io_stall + unc.decompress + unc.processing;
            let pct = |x: f64| 100.0 * x / total_unc;
            println!(
                "{:>3} | {:>11.0}% stall {:>6.0}% proc | {:>6.0}% stall {:>5.0}% dec {:>5.0}% proc = {:>4.0}%",
                q,
                pct(unc.io_stall),
                pct(unc.processing),
                pct(cmp.io_stall),
                pct(cmp.decompress),
                pct(cmp.processing),
                pct(cmp.io_stall + cmp.decompress + cmp.processing),
            );
            faults.0 += unc.retries + cmp.retries;
            faults.1 += unc.checksum_failures + cmp.checksum_failures;
            faults.2 += unc.quarantined + cmp.quarantined;
        }
        println!(
            "faults: {} retries, {} checksum failures, {} quarantined chunks",
            faults.0, faults.1, faults.2
        );
    }
    println!("\npaper shape: on the low-end disk both bars are I/O-dominated and the");
    println!("compressed bar shrinks by ~the compression ratio; on the middle-end disk");
    println!("the compressed bars lose their stalls entirely (CPU bound) and");
    println!("decompression stays a minor slice; PAX bars keep more stall than DSM.");
    metrics.finish();
}
