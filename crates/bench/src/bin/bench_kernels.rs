//! Kernel benchmark baseline: scalar vs SIMD vs fused decompression.
//!
//! Two sweeps, both written to `results/BENCH_kernels.json` (same
//! top-level shape as `BENCH_server.json`: `bench`/`command`/params plus
//! a `sweeps` array of `{params..., report: {...}}` rows):
//!
//! 1. **Kernel sweep** — width × operation × kernel tier × layout over
//!    raw packed buffers: plain `unpack`, fused `unpack_for32/64`, fused
//!    `unpack_delta32/64`, `pack`, and their vertical-layout (`v*`)
//!    counterparts, reporting values/cycle (rdtsc) and GB/s of decoded
//!    output. The working set is L1-resident on purpose: beyond L1 every
//!    tier saturates the same store-bandwidth ceiling and the numbers
//!    measure the cache hierarchy instead of the kernels.
//! 2. **Segment sweep** — scheme × exception-rate × kernel tier through
//!    `Segment::try_decode_range`, i.e. the whole two-loop decode the
//!    scan path runs.
//!
//! The summary block records the fused-SIMD-vs-scalar speedup per width
//! (the ISSUE acceptance bar is ≥ 1.5× at widths 4–16) and the
//! vertical-vs-horizontal fused decode ratio (target ≥ 2× at widths
//! 1–12; widths where horizontal already runs at ≥ 6 values/cycle sit
//! against the store-port limit and cannot double — the bench prints a
//! warning for those rather than pretending).
//!
//! Flags: `--smoke` (tiny sizes, CI), `--out <path>` (default
//! `results/BENCH_kernels.json`).

use scc_bench::time_median;
use scc_bitpack::kernel::{self, KernelClass};
use scc_bitpack::{mask, pack_vec};
use scc_core::{pdict, pfor, pfordelta, Dictionary, Layout, Segment};
use scc_obs::json::Json;

#[cfg(target_arch = "x86_64")]
fn cycles() -> u64 {
    // SAFETY: RDTSC has no memory effects and is available on every
    // x86-64 CPU.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(not(target_arch = "x86_64"))]
fn cycles() -> u64 {
    0
}

struct Measure {
    seconds: f64,
    cycles_per_call: f64,
}

/// Median wall time plus a cycle count for one call of `f`.
fn measure(reps: usize, mut f: impl FnMut()) -> Measure {
    let seconds = time_median(3, || {
        for _ in 0..reps {
            f();
        }
    }) / reps as f64;
    let c0 = cycles();
    let n = reps.max(1);
    for _ in 0..n {
        f();
    }
    let dc = cycles().wrapping_sub(c0);
    Measure { seconds, cycles_per_call: dc as f64 / n as f64 }
}

fn report(m: &Measure, values: usize, out_bytes: usize) -> Json {
    let vpc = if m.cycles_per_call > 0.0 { values as f64 / m.cycles_per_call } else { 0.0 };
    Json::Obj(vec![
        ("ns_per_call".into(), Json::F64(m.seconds * 1e9)),
        ("values_per_cycle".into(), Json::F64(vpc)),
        ("values_per_sec".into(), Json::F64(values as f64 / m.seconds)),
        ("gb_per_sec".into(), Json::F64(scc_bench::gb_per_sec(out_bytes, m.seconds))),
    ])
}

fn get_f64(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

/// Raw kernel sweep over one width for every available tier. Returns
/// the `unpack_for32` (horizontal) and `vunpack_for32` (vertical)
/// reports as `(op, class, report)` rows for the summary block.
fn kernel_sweep(b: u32, n: usize, reps: usize, sweeps: &mut Vec<Json>) -> Vec<(String, String, Json)> {
    let codes: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9e37_79b9) & mask(b)).collect();
    let packed = pack_vec(&codes, b);
    let vpacked = scc_bitpack::vert::pack_vec(&codes, b);
    let seeds = [7u32; 4];
    let seeds64 = [7u64; 4];
    let mut out32 = vec![0u32; n];
    let mut out64 = vec![0u64; n];
    let mut pbuf = vec![0u32; packed.len()];
    let mut per_class: Vec<(String, String, Json)> = Vec::new();
    for class in KernelClass::ALL {
        let Some(k) = kernel::kernels_for(class) else { continue };
        let ops: Vec<(&str, Measure, usize)> = vec![
            ("unpack", measure(reps, || k.unpack(&packed, b, &mut out32)), 4 * n),
            ("unpack_for32", measure(reps, || k.unpack_for32(&packed, b, 3, &mut out32)), 4 * n),
            ("unpack_for64", measure(reps, || k.unpack_for64(&packed, b, 3, &mut out64)), 8 * n),
            (
                "unpack_delta32",
                measure(reps, || k.unpack_delta32(&packed, b, 1, 7, &mut out32)),
                4 * n,
            ),
            (
                "unpack_delta64",
                measure(reps, || k.unpack_delta64(&packed, b, 1, 7, &mut out64)),
                8 * n,
            ),
            ("pack", measure(reps, || k.pack(&codes, b, &mut pbuf)), 4 * n),
            ("vunpack", measure(reps, || k.vunpack(&vpacked, b, &mut out32)), 4 * n),
            ("vunpack_for32", measure(reps, || k.vunpack_for32(&vpacked, b, 3, &mut out32)), 4 * n),
            (
                "vunpack_for64",
                measure(reps, || k.vunpack_for64(&vpacked, b, 3, &mut out64)),
                8 * n,
            ),
            (
                "vunpack_delta32",
                measure(reps, || k.vunpack_delta32(&vpacked, b, 1, &seeds, &mut out32)),
                4 * n,
            ),
            (
                "vunpack_delta64",
                measure(reps, || k.vunpack_delta64(&vpacked, b, 1, &seeds64, &mut out64)),
                8 * n,
            ),
            ("vpack", measure(reps, || k.vpack(&codes, b, &mut pbuf)), 4 * n),
        ];
        for (op, m, bytes) in &ops {
            let rep = report(m, n, *bytes);
            if *op == "unpack_for32" || *op == "vunpack_for32" {
                per_class.push(((*op).into(), class.name().to_string(), rep.clone()));
            }
            sweeps.push(Json::Obj(vec![
                ("kind".into(), Json::Str("kernel".into())),
                ("op".into(), Json::Str((*op).into())),
                ("b".into(), Json::U64(b as u64)),
                ("class".into(), Json::Str(class.name().into())),
                ("report".into(), rep),
            ]));
        }
    }
    std::hint::black_box((&out32, &out64, &pbuf));
    per_class
}

/// One segment per (scheme, exception-rate) cell: u32 values at width 8
/// with the requested fraction of uncodable outliers.
fn build_segment(scheme: &str, exc_pct: usize, n: usize, layout: Layout) -> Segment<u32> {
    let outlier = |i: usize| exc_pct > 0 && i * exc_pct % 100 < exc_pct;
    match scheme {
        "pfor" => {
            let values: Vec<u32> = (0..n)
                .map(|i| if outlier(i) { 1 << 20 | i as u32 } else { i as u32 % 200 })
                .collect();
            pfor::compress_in(&values, 0, 8, Default::default(), layout)
        }
        "pfordelta" => {
            let mut acc = 0u32;
            let values: Vec<u32> = (0..n)
                .map(|i| {
                    acc = acc.wrapping_add(if outlier(i) { 50_000 } else { i as u32 % 200 });
                    acc
                })
                .collect();
            match layout {
                Layout::Horizontal => pfordelta::compress(&values, 0, 0, 8),
                Layout::Vertical => pfordelta::compress_vertical(&values, 0),
            }
        }
        "pdict" => {
            let dict = Dictionary::new((0..200u32).map(|i| i * 1000).collect());
            let values: Vec<u32> = (0..n)
                .map(|i| if outlier(i) { 999_999_999 } else { (i as u32 % 200) * 1000 })
                .collect();
            pdict::compress_in(&values, &dict, dict.min_width(), Default::default(), layout)
        }
        other => unreachable!("unknown scheme {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_kernels.json".into());

    // The kernel sweep decodes into a 32 KiB (L1-resident) buffer: with
    // a larger working set every tier saturates the same store
    // bandwidth ceiling and the sweep measures the cache hierarchy, not
    // the kernels (observed here: horizontal and vertical AVX2 both
    // flatline at the machine-dependent 26-45 GB/s once the output
    // spills L1, while L1-resident they differ by up to 3x).
    let (n, reps, widths): (usize, usize, Vec<u32>) = if smoke {
        (4 * 1024, 8, vec![0, 1, 5, 8, 13, 32])
    } else {
        (8 * 1024, 1500, (0..=32).collect())
    };
    let detected = kernel::active();
    println!("bench_kernels: n={n} reps={reps} detected={detected} smoke={smoke}");
    println!(
        "{:<6} {:>3} {:>10} {:>10}  (fused unpack_for32, GB/s)",
        "class", "b", "horizontal", "vertical"
    );

    let mut sweeps: Vec<Json> = Vec::new();
    let mut speedups: Vec<Json> = Vec::new();
    let mut bar_ok = true;
    let mut vert_bar_ok = true;
    for &b in &widths {
        let per_class = kernel_sweep(b, n, reps, &mut sweeps);
        let pick = |op: &str, class: &str, key: &str| -> f64 {
            per_class
                .iter()
                .find(|(o, c, _)| o == op && c == class)
                .map(|(_, _, r)| get_f64(r, key))
                .unwrap_or(0.0)
        };
        let best = |op: &str, key: &str| -> f64 {
            per_class
                .iter()
                .filter(|(o, c, _)| o == op && c != "scalar")
                .map(|(_, _, r)| get_f64(r, key))
                .fold(0.0f64, f64::max)
        };
        for class in KernelClass::ALL {
            let h = pick("unpack_for32", class.name(), "gb_per_sec");
            let v = pick("vunpack_for32", class.name(), "gb_per_sec");
            if h > 0.0 || v > 0.0 {
                println!("{:<6} {b:>3} {h:>10.2} {v:>10.2}", class.name());
            }
        }
        let scalar_vps = pick("unpack_for32", "scalar", "values_per_sec");
        let best_simd = best("unpack_for32", "values_per_sec");
        let gbps_scalar = pick("unpack_for32", "scalar", "gb_per_sec");
        let gbps_simd = best("unpack_for32", "gb_per_sec");
        let gbps_vert_scalar = pick("vunpack_for32", "scalar", "gb_per_sec");
        let gbps_vert_simd = best("vunpack_for32", "gb_per_sec");
        if scalar_vps > 0.0 && best_simd > 0.0 {
            let speedup = best_simd / scalar_vps;
            let vert_vs_horiz = if gbps_simd > 0.0 { gbps_vert_simd / gbps_simd } else { 0.0 };
            speedups.push(Json::Obj(vec![
                ("b".into(), Json::U64(b as u64)),
                ("fused_simd_vs_scalar".into(), Json::F64(speedup)),
                ("gbps_scalar".into(), Json::F64(gbps_scalar)),
                ("gbps_simd".into(), Json::F64(gbps_simd)),
                ("gbps_vertical_scalar".into(), Json::F64(gbps_vert_scalar)),
                ("gbps_vertical_simd".into(), Json::F64(gbps_vert_simd)),
                ("vertical_vs_horizontal".into(), Json::F64(vert_vs_horiz)),
            ]));
            if (4..=16).contains(&b) && speedup < 1.5 && !smoke {
                bar_ok = false;
                println!("  !! width {b}: fused SIMD speedup {speedup:.2}x below the 1.5x bar");
            }
            if (1..=12).contains(&b) && vert_vs_horiz < 2.0 && !smoke {
                vert_bar_ok = false;
                println!(
                    "  !! width {b}: vertical/horizontal {vert_vs_horiz:.2}x below the 2x bar"
                );
            }
        }
    }

    let seg_n = if smoke { 16 * 1024 } else { 1 << 19 };
    let seg_reps = if smoke { 2 } else { 8 };
    let mut out = vec![0u32; seg_n];
    println!(
        "\n{:<10} {:>5} {:<10} {:<6} {:>10}  (segment decode)",
        "scheme", "exc%", "layout", "class", "GB/s"
    );
    for scheme in ["pfor", "pfordelta", "pdict"] {
        for exc_pct in [0usize, 1, 5, 20] {
            for layout in [Layout::Horizontal, Layout::Vertical] {
                let seg = build_segment(scheme, exc_pct, seg_n, layout);
                for class in KernelClass::ALL {
                    if kernel::force(class).is_err() {
                        continue;
                    }
                    let m = measure(seg_reps, || {
                        seg.try_decode_range(0, &mut out).expect("well-formed segment");
                    });
                    let rep = report(&m, seg_n, 4 * seg_n);
                    println!(
                        "{scheme:<10} {exc_pct:>5} {:<10} {:<6} {:>10.2}",
                        layout.name(),
                        class.name(),
                        get_f64(&rep, "gb_per_sec")
                    );
                    sweeps.push(Json::Obj(vec![
                        ("kind".into(), Json::Str("segment".into())),
                        ("scheme".into(), Json::Str(scheme.into())),
                        ("exception_pct".into(), Json::U64(exc_pct as u64)),
                        ("layout".into(), Json::Str(layout.name().into())),
                        ("class".into(), Json::Str(class.name().into())),
                        ("report".into(), rep),
                    ]));
                }
            }
        }
    }
    let _ = kernel::force(detected);
    std::hint::black_box(&out);

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("decompression kernel sweep".into())),
        (
            "command".into(),
            Json::Str(format!(
                "bench_kernels{} (width x op x tier over raw buffers, scheme x exception-rate x \
                 tier over Segment::try_decode_range)",
                if smoke { " --smoke" } else { "" }
            )),
        ),
        ("values_n".into(), Json::U64(n as u64)),
        ("segment_values_n".into(), Json::U64(seg_n as u64)),
        ("reps".into(), Json::U64(reps as u64)),
        ("detected_kernel".into(), Json::Str(detected.name().into())),
        ("smoke".into(), Json::U64(smoke as u64)),
        ("speedup_by_width".into(), Json::Arr(speedups)),
        ("sweeps".into(), Json::Arr(sweeps)),
    ]);
    let text = doc.pretty();
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out_path, &text).expect("write results json");
    // Self-validate: the written file must parse back with the expected
    // top-level keys (CI runs `--smoke` and relies on this check).
    let back = scc_obs::json::parse(&text).expect("output json parses");
    assert!(back.get("bench").is_some() && back.get("sweeps").is_some(), "schema keys missing");
    println!("\nwrote {out_path}");
    if !bar_ok {
        println!("WARNING: fused SIMD unpack below 1.5x scalar on some widths in 4..=16");
    }
    if !vert_bar_ok {
        println!("WARNING: vertical SIMD unpack below 2x horizontal on some widths in 1..=12");
    }
}
