//! Table 4 — PFOR-DELTA vs carryover-12 vs semi-static Huffman (shuff)
//! on inverted files derived from INEX and four TREC sub-collections.
//!
//! Collections are synthetic, calibrated per corpus (DESIGN.md §4,
//! substitution 3). For each codec: compression ratio, compression MB/s,
//! decompression MB/s over the concatenated d-gap file.

use scc_bench::{mb_per_sec, time_median};
use scc_ir::{compress_file, gap_stream, synthesize, CollectionPreset, PostingsCodec};

/// The paper's Table 4 values for reference printing:
/// (pfd_ratio, pfd_comp, pfd_dec, c12_ratio, c12_comp, c12_dec, sh_ratio, sh_comp, sh_dec)
const PAPER: [(&str, [f64; 9]); 5] = [
    ("INEX", [1.75, 679.0, 3053.0, 2.12, 49.0, 524.0, 2.45, 3.5, 82.0]),
    ("TREC fbis", [3.47, 788.0, 3911.0, 4.26, 98.0, 740.0, 5.11, 190.0, 164.0]),
    ("TREC fr94", [3.12, 682.0, 3196.0, 3.49, 84.0, 689.0, 4.65, 149.0, 154.0]),
    ("TREC ft", [3.13, 761.0, 3443.0, 3.47, 84.0, 704.0, 4.89, 178.0, 157.0]),
    ("TREC latimes", [2.99, 742.0, 3289.0, 3.30, 79.0, 683.0, 4.61, 164.0, 153.0]),
];

fn main() {
    let metrics = scc_bench::metrics::init();
    println!("Table 4: PFOR-DELTA on inverted files (measured | paper)");
    println!(
        "{:<13} | {:>5} {:>6} {:>6} | {:>5} {:>6} {:>6} | {:>5} {:>6} {:>6}",
        "collection",
        "ratio",
        "c MB/s",
        "d MB/s",
        "ratio",
        "c MB/s",
        "d MB/s",
        "ratio",
        "c MB/s",
        "d MB/s"
    );
    println!("{:<13} | {:^20} | {:^20} | {:^20}", "", "PFOR-DELTA", "carryover-12", "shuff");
    for (i, preset) in CollectionPreset::all().into_iter().enumerate() {
        let c = synthesize(preset, 0x7AB4 + i as u64);
        let gaps = gap_stream(&c);
        let raw = gaps.len() * 4;
        let mut cells = Vec::new();
        for codec in PostingsCodec::table4() {
            let mut file = compress_file(&gaps, codec);
            let comp_t = time_median(3, || {
                file = compress_file(&gaps, codec);
            });
            let mut out = Vec::with_capacity(gaps.len());
            let dec_t = time_median(3, || {
                out.clear();
                file.decompress_into(&mut out);
            });
            assert_eq!(out, gaps, "{} roundtrip", codec.name());
            cells.push((file.ratio(), mb_per_sec(raw, comp_t), mb_per_sec(raw, dec_t)));
        }
        println!(
            "{:<13} | {:>5.2} {:>6.0} {:>6.0} | {:>5.2} {:>6.0} {:>6.0} | {:>5.2} {:>6.0} {:>6.0}   measured",
            c.name,
            cells[0].0, cells[0].1, cells[0].2,
            cells[1].0, cells[1].1, cells[1].2,
            cells[2].0, cells[2].1, cells[2].2,
        );
        let p = PAPER[i].1;
        println!(
            "{:<13} | {:>5.2} {:>6.0} {:>6.0} | {:>5.2} {:>6.0} {:>6.0} | {:>5.2} {:>6.0} {:>6.0}   paper",
            "", p[0], p[1], p[2], p[3], p[4], p[5], p[6], p[7], p[8],
        );
    }
    println!("\npaper shape: PFOR-DELTA decompresses ~6.5x faster than carryover-12 at");
    println!("~15% lower ratio; shuff has the best ratio but the slowest decode.");
    metrics.finish();
}
