//! §5 query-bandwidth experiment — the top-N by term frequency query and
//! the equation 3.1 equilibrium.
//!
//! The paper measures Q = 580 MB/s raw d-gap processing; against a
//! 350 MB/s RAID this puts the break-even decompression bandwidth at
//! C = Q*target/(Q - target) = 883 MB/s: codecs slower than that (shuff,
//! carryover-12) make the query *slower*, PFOR-DELTA accelerates it.

use scc_bench::{mb_per_sec, time_median};
use scc_ir::{synthesize, top_n_by_tf, CollectionPreset, InvertedIndex, PostingsCodec};
use scc_model::{equilibrium_decompression_bw, result_bandwidth};

fn main() {
    let metrics = scc_bench::metrics::init();
    let c = synthesize(CollectionPreset::TrecFbis, 0x5EC5);
    println!("Section 5 top-N experiment on {} ({} postings)", c.name, c.n_postings());
    println!(
        "{:<13} {:>10} {:>12} {:>12} {:>14}",
        "codec", "ratio", "query MB/s", "dec MB/s", "scan @350MB/s"
    );
    let io_bw = 350.0; // the paper's middle-end RAID, MB/s
    let mut uncompressed_q = 0.0;
    for codec in [
        PostingsCodec::PforDelta,
        PostingsCodec::Carryover12,
        PostingsCodec::Shuff,
        PostingsCodec::VByte,
    ] {
        let idx = InvertedIndex::build(&c, codec);
        // Query the densest term repeatedly: decode + heap top-N.
        let mut scratch = Vec::new();
        let postings = c.postings[0].0.len();
        let t_query = time_median(9, || {
            let r = top_n_by_tf(&idx, 0, 10, &mut scratch);
            assert_eq!(r.postings, postings);
        });
        // Decode-only bandwidth.
        let t_dec = time_median(9, || {
            scratch.clear();
            idx.decode_list(0, &mut scratch);
        });
        let raw = postings * 4;
        let q_bw = mb_per_sec(raw, t_query);
        let dec_bw = mb_per_sec(raw, t_dec);
        if codec == PostingsCodec::PforDelta {
            uncompressed_q = q_bw; // proxy: decode dominated by gap math
        }
        let head_ratio = raw as f64 / idx.lists[0].compressed_bytes() as f64;
        // Equation 3.1: effective scan bandwidth off a 350 MB/s disk.
        let r = result_bandwidth(io_bw, head_ratio, q_bw, dec_bw);
        println!(
            "{:<13} {:>10.2} {:>12.0} {:>12.0} {:>11.0} MB/s",
            codec.name(),
            head_ratio,
            q_bw,
            dec_bw,
            r,
        );
    }
    println!();
    let c_star = equilibrium_decompression_bw(uncompressed_q, io_bw).unwrap_or(f64::INFINITY);
    println!(
        "equilibrium decompression bandwidth for Q = {uncompressed_q:.0} MB/s vs a \
         {io_bw:.0} MB/s disk: C* = {c_star:.0} MB/s"
    );
    println!("(paper: Q = 580 MB/s gives C* = 883 MB/s; shuff and carryover-12 sit");
    println!("below their C*, so they slow the query; PFOR-DELTA sits far above.)");
    metrics.finish();
}
