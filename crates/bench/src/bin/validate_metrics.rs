//! Validates a `--metrics-json` dump against the schema-v1 contract
//! (`docs/OBSERVABILITY.md`). Exit 0 = valid; nonzero with one line per
//! violation otherwise. The CI smoke job runs this over the dump of a
//! small experiment binary so schema drift fails the build instead of
//! silently breaking downstream consumers.
//!
//! Usage: `validate_metrics <dump.json> [--require <metric-name>]...`
//!
//! `--require` additionally asserts that a named counter or gauge is
//! present (e.g. `core.decode.pfor.ns_per_value`), so the smoke job
//! checks not just well-formedness but that the expected telemetry was
//! actually recorded.

use scc_obs::export::validate;
use scc_obs::json::{parse, Json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut required: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--require" => {
                i += 1;
                match args.get(i) {
                    Some(name) => required.push(name.clone()),
                    None => die("--require needs a metric name"),
                }
            }
            a if path.is_none() => path = Some(a.to_string()),
            a => die(&format!("unexpected argument {a:?}")),
        }
        i += 1;
    }
    let Some(path) = path else {
        die("usage: validate_metrics <dump.json> [--require <metric-name>]...");
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => die(&format!("cannot read {path}: {e}")),
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => die(&format!("{path} is not valid JSON: {e}")),
    };

    let mut errors = validate(&doc);
    for name in &required {
        let found = ["counters", "gauges", "histograms"]
            .iter()
            .any(|section| doc.get(section).and_then(|s| s.get(name)).is_some());
        if !found {
            errors.push(format!("required metric {name:?} is missing from the dump"));
        }
    }

    if errors.is_empty() {
        let n =
            |section: &str| doc.get(section).and_then(Json::as_obj).map_or(0, |pairs| pairs.len());
        println!(
            "{path}: valid schema v1 ({} counters, {} gauges, {} histograms)",
            n("counters"),
            n("gauges"),
            n("histograms")
        );
    } else {
        for e in &errors {
            eprintln!("{path}: {e}");
        }
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("validate_metrics: {msg}");
    std::process::exit(2);
}
