//! §6 outlook, machine-level: scatter-gather scan throughput across
//! 1/2/4 scc-server shards.
//!
//! The paper parallelizes decompression across cores; `scc-cluster`
//! extends the same independence argument across machines — partitions
//! are segment-aligned, so each shard decodes its slice with the
//! paper's kernels and the coordinator's merge is pure reordering.
//!
//! Two sweeps, both byte-verified against the unsharded oracle:
//!
//! 1. **Node sweep** — the same closed-loop request mix (full scans,
//!    pushed-down predicate scans, routed point reads) against 1, 2 and
//!    4 in-process shards.
//! 2. **Chaos run** — the 4-node topology again, every coordinator
//!    connection wrapped in the composite `ChaosPlan`, plus one primary
//!    shard force-killed before the run: every partition it owned must
//!    be served by its replica with zero wrong bytes.
//!
//! Args: `--smoke` (tiny sizes for CI), `--out <path>` (default
//! `results/BENCH_cluster.json`).

use scc_cluster::{
    run_cluster_loadgen, ClusterConfig, ClusterLoadgenConfig, ClusterLoadgenReport, Coordinator,
    Topology,
};
use scc_obs::json::Json;
use scc_server::{demo_table, Catalog, ChaosPlan, RetryPolicy, Server, ServerConfig};
use scc_storage::{partition_table, PartitionManifest, Table};
use std::sync::Arc;
use std::time::Duration;

struct Cluster {
    servers: Vec<Server>,
    coord: Coordinator,
    manifest: PartitionManifest,
}

fn start_cluster(table: &Arc<Table>, nodes: usize, chaos: Option<ChaosPlan>) -> Cluster {
    let partitions = (2 * nodes).max(2);
    let manifest =
        PartitionManifest::range("demo", table.n_rows(), table.seg_rows(), partitions, nodes);
    let parts = partition_table(table, &manifest);
    let mut catalogs: Vec<Catalog> = (0..nodes).map(|_| Catalog::new()).collect();
    for (p, part) in parts.iter().enumerate() {
        for node in [manifest.primary[p], manifest.replica[p]] {
            catalogs[node].add(Arc::clone(part));
        }
    }
    let servers: Vec<Server> = catalogs
        .into_iter()
        .map(|c| Server::start(ServerConfig::default(), c).expect("bind ephemeral port"))
        .collect();
    let topology = Topology {
        nodes: servers.iter().map(|s| s.local_addr().to_string()).collect(),
        partitions,
        replication: 1,
    };
    let retry = RetryPolicy { deadline: Duration::from_secs(20), ..RetryPolicy::default() };
    let mut coord =
        Coordinator::new(topology, ClusterConfig { retry, chaos, ..ClusterConfig::default() });
    coord.register(manifest.clone());
    Cluster { servers, coord, manifest }
}

fn report_json(r: &ClusterLoadgenReport) -> Json {
    r.to_json()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_cluster.json".to_string());

    let rows = if smoke { 20_000 } else { 100_000 };
    let requests = if smoke { 32 } else { 160 };
    let threads = 4;
    let table = demo_table(rows);

    println!("cluster scatter-gather sweep: demo x {rows} rows, {requests} requests, {threads} client threads");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "nodes", "req/s", "p50 ms", "p95 ms", "p99 ms", "rows/s"
    );

    let mut sweeps = Vec::new();
    for nodes in [1usize, 2, 4] {
        let cluster = start_cluster(&table, nodes, None);
        let cfg = ClusterLoadgenConfig { requests, threads, seed: 0xC1A5 + nodes as u64 };
        let report = run_cluster_loadgen(&cluster.coord, &table, &cfg).expect("loadgen");
        assert_eq!(report.verify_failures, 0, "{nodes}-node cluster returned wrong bytes");
        assert_eq!(report.errors, 0, "{nodes}-node cluster errored");
        println!(
            "{:>6} {:>10.0} {:>10.1} {:>10.1} {:>10.1} {:>12.0}",
            nodes,
            report.throughput_rps,
            report.p50_us / 1_000.0,
            report.p95_us / 1_000.0,
            report.p99_us / 1_000.0,
            report.rows_streamed as f64 / report.elapsed.as_secs_f64(),
        );
        sweeps.push(Json::Obj(vec![
            ("nodes".into(), Json::U64(nodes as u64)),
            ("partitions".into(), Json::U64(cluster.manifest.partitions() as u64)),
            ("report".into(), report_json(&report)),
        ]));
        drop(cluster); // stops the shards
    }

    // Chaos configuration: composite transport faults on every
    // coordinator connection, and the first primary shard killed
    // outright — replicas must keep the answers byte-exact.
    let chaos_seed = 0xDEAD_C1A5u64;
    let mut cluster = start_cluster(&table, 4, Some(ChaosPlan::composite(chaos_seed)));
    let killed = cluster.manifest.primary[0];
    cluster.servers[killed].stop();
    let cfg = ClusterLoadgenConfig { requests, threads, seed: 0xFA11 };
    let report = run_cluster_loadgen(&cluster.coord, &table, &cfg).expect("chaos loadgen");
    assert_eq!(report.verify_failures, 0, "chaos run returned wrong bytes");
    assert_eq!(report.errors, 0, "chaos run errored despite replica coverage");
    println!(
        "chaos (4 nodes, node {killed} killed, composite faults): \
         {:.0} req/s, p50 {:.1} ms, p99 {:.1} ms, 0 wrong results",
        report.throughput_rps,
        report.p50_us / 1_000.0,
        report.p99_us / 1_000.0,
    );
    let chaos_json = Json::Obj(vec![
        ("nodes".into(), Json::U64(4)),
        ("killed_node".into(), Json::U64(killed as u64)),
        ("chaos_plan".into(), Json::Str("composite".into())),
        ("chaos_seed".into(), Json::U64(chaos_seed)),
        ("report".into(), report_json(&report)),
    ]);
    drop(cluster);

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("scc-cluster scatter-gather node sweep".into())),
        (
            "command".into(),
            Json::Str(format!(
                "cargo run --release -p scc-bench --bin exp_cluster{}",
                if smoke { " -- --smoke" } else { "" }
            )),
        ),
        (
            "workload".into(),
            Json::Str(
                "mixed per request (i%4): routed segment-range point reads (decoded/raw), \
                 full 3-column scans, pushed-down predicate scans (val<500, flag==SHIP); \
                 every response byte-verified against the unsharded local table"
                    .into(),
            ),
        ),
        ("rows".into(), Json::U64(rows as u64)),
        ("requests".into(), Json::U64(requests as u64)),
        ("client_threads".into(), Json::U64(threads as u64)),
        ("smoke".into(), Json::Bool(smoke)),
        ("sweeps".into(), Json::Arr(sweeps)),
        ("chaos".into(), chaos_json),
    ]);
    std::fs::write(&out_path, doc.pretty() + "\n").expect("write results json");
    println!("results written to {out_path}");
}
