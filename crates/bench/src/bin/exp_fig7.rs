//! Figure 7 — I/O-RAM (page-wise) vs RAM-CPU cache (vector-wise) PFOR
//! decompression, as a function of the exception rate.
//!
//! Page-wise decompresses each 64 Ki-row segment into a RAM page and then
//! copies vectors out of it — three trips through the cache hierarchy;
//! vector-wise decodes 1024 values at a time straight into a
//! cache-resident vector. L2-miss counters are unavailable here
//! (DESIGN.md §4, substitution 4); the RAM-traffic column reports the
//! byte movement that causes those misses.
//!
//! Environment: `SCC_ROWS` rows in the test column (default 8 Mi).

use scc_bench::{env_usize, gb_per_sec, time_median};
use scc_engine::ops::collect;
use scc_engine::Operator;
use scc_storage::disk::stats_handle;
use scc_storage::{
    Compression, DecompressionGranularity, Disk, Layout, Scan, ScanMode, ScanOptions, TableBuilder,
};
use std::sync::Arc;

fn main() {
    let metrics = scc_bench::metrics::init();
    let rows = env_usize("SCC_ROWS", 8 * 1024 * 1024);
    println!("Figure 7: page-wise (I/O-RAM) vs vector-wise (RAM-CPU cache) decompression");
    println!("{rows} rows of i64, b=8 PFOR codes, exception rate swept");
    println!(
        "{:>6} {:>14} {:>14} {:>10} {:>12} {:>12}",
        "E", "page GB/s", "vector GB/s", "vec/page", "pageRAM MB", "vecRAM MB"
    );
    for pct in [0, 5, 10, 20, 30, 50, 75, 100] {
        let rate = pct as f64 / 100.0;
        let values64 = scc_bench::data::with_exception_rate(rows, rate, 8, 0xF17 + pct as u64);
        let values: Vec<i64> = values64.iter().map(|&v| v as i64).collect();
        let table =
            TableBuilder::new("col").compression(Compression::Auto).add_i64("x", values).build();
        let run = |granularity| {
            let stats = stats_handle();
            let opts = ScanOptions {
                mode: ScanMode::Compressed,
                granularity,
                vector_size: 1024,
                disk: Disk::middle_end(),
                layout: Layout::Dsm,
                // This experiment measures decode bandwidth: no query
                // consumes the values, so decode must happen in the scan.
                code_scan: false,
            };
            let mut total = 0usize;
            // Drain the shared handle per run so the reported RAM
            // traffic is a true per-run figure, not total/run-count.
            let mut per_run = scc_storage::ScanStats::default();
            let t = time_median(3, || {
                let mut scan =
                    Scan::new(Arc::clone(&table), &["x"], opts, Arc::clone(&stats), None);
                // Consume every vector (the query side of the pipeline).
                total = 0;
                while let Some(batch) = scan.next() {
                    total += batch.len();
                }
                per_run = stats.lock().unwrap().take();
            });
            assert_eq!(total, rows);
            (t, per_run.ram_traffic_bytes)
        };
        let (t_page, ram_page) = run(DecompressionGranularity::PageWise);
        let (t_vec, ram_vec) = run(DecompressionGranularity::VectorWise);
        let out_bytes = rows * 8;
        println!(
            "{:>5.2} {:>14.2} {:>14.2} {:>9.2}x {:>12.0} {:>12.0}",
            rate,
            gb_per_sec(out_bytes, t_page),
            gb_per_sec(out_bytes, t_vec),
            t_page / t_vec,
            ram_page as f64 / (1024.0 * 1024.0),
            ram_vec as f64 / (1024.0 * 1024.0),
        );
    }
    let _ = collect(&mut scc_engine::MemSource::from_i64(vec![vec![]], 8)); // keep engine linked
    println!("\npaper shape: vector-wise is uniformly faster; the gap is the cost of");
    println!("writing the decompressed page back to RAM and re-reading it (extra L2");
    println!("misses), visible above as ~3x RAM traffic for page-wise.");
    metrics.finish();
}
