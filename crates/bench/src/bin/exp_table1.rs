//! Table 1 — TPC-H 100 GB component cost breakdown.
//!
//! Context table: the paper's published hardware figures (nothing to
//! measure), plus the derived storage over-provisioning factor that
//! motivates compression.

use scc_model::cost::{overprovisioning_factor, TABLE1};

fn main() {
    let metrics = scc_bench::metrics::init();
    println!("Table 1: TPC-H 100GB Component Cost (paper's published figures)");
    println!("{:-<78}", "");
    println!(
        "{:<24} {:>6} {:>8} {:>6} {:>12} {:>6} {:>9}",
        "CPUs", "cpu%", "RAM", "ram%", "Disks", "disk%", "overprov"
    );
    for row in &TABLE1 {
        println!(
            "{:<24} {:>5.0}% {:>8} {:>5.0}% {:>12} {:>5.0}% {:>8.0}x",
            row.cpus,
            row.cpu_frac * 100.0,
            row.ram,
            row.ram_frac * 100.0,
            row.disks,
            row.disk_frac * 100.0,
            overprovisioning_factor(row),
        );
    }
    println!("{:-<78}", "");
    println!("Disks account for 61-78% of system price, provisioned at 12-19x the");
    println!("database size — the I/O-bandwidth brute force that §1 argues against.");
    metrics.finish();
}
