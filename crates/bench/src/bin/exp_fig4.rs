//! Figure 4 — decompression bandwidth as a function of the exception
//! rate: NAIVE (branchy escape codes) vs patched PFOR and PDICT.
//!
//! The paper measures branch-miss rates with CPU event counters
//! unavailable in this container (DESIGN.md §4, substitution 4); the
//! branch-miss penalty still shows as the NAIVE bandwidth cliff at
//! intermediate rates, while the patched kernels degrade smoothly.
//!
//! Environment: `SCC_N` values per run (default 4 Mi).

use scc_bench::data::with_exception_rate;
use scc_bench::{env_usize, gb_per_sec, time_median};
use scc_core::{pdict, pfor, Dictionary, NaiveSegment};

const B: u32 = 8;

fn main() {
    let metrics = scc_bench::metrics::init();
    let n = env_usize("SCC_N", 4 * 1024 * 1024);
    let out_bytes = n * 8;
    println!("Figure 4: decompression bandwidth (GB/s of decoded u64 output) vs exception rate");
    println!("n = {n} values, b = {B} bit codes");
    println!("{:>6} {:>12} {:>12} {:>12}", "E", "NAIVE", "PFOR", "PDICT");
    // Dictionary holding the codable domain (values 0..2^B), so PDICT has
    // the same coded/exception split as PFOR.
    let dict_entries: Vec<u64> = (0..1u64 << B).collect();
    let dict = Dictionary::new(dict_entries);
    for pct in [0, 2, 5, 10, 20, 30, 40, 50, 60, 75, 90, 100] {
        let rate = pct as f64 / 100.0;
        let values = with_exception_rate(n, rate, B, 0xF14 + pct as u64);
        // NAIVE escape-code codec.
        let naive = NaiveSegment::compress(&values, 0, B);
        let mut out: Vec<u64> = Vec::with_capacity(n);
        let t_naive = time_median(5, || {
            out.clear();
            naive.decompress_into(&mut out);
        });
        assert_eq!(out, values);
        // Patched PFOR.
        let seg = pfor::compress(&values, 0, B);
        let t_pfor = time_median(5, || {
            out.clear();
            seg.decompress_into(&mut out);
        });
        assert_eq!(out, values);
        // Patched PDICT.
        let pseg = pdict::compress_with(&values, &dict, B, Default::default());
        let t_pdict = time_median(5, || {
            out.clear();
            pseg.decompress_into(&mut out);
        });
        assert_eq!(out, values);
        println!(
            "{:>5.2} {:>12.2} {:>12.2} {:>12.2}",
            rate,
            gb_per_sec(out_bytes, t_naive),
            gb_per_sec(out_bytes, t_pfor),
            gb_per_sec(out_bytes, t_pdict),
        );
    }
    println!("\npaper shape: NAIVE collapses toward E=0.5 (unpredictable branch) and");
    println!("recovers toward E=1; PFOR/PDICT decline smoothly and dominate NAIVE.");
    metrics.finish();
}
