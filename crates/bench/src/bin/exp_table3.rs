//! Table 3 — page-wise (I/O-RAM) vs vector-wise (RAM-CPU cache)
//! decompression on TPC-H queries 3, 4, 6 and 18.
//!
//! The paper reports time and L2 misses; hardware miss counters are
//! unavailable here (DESIGN.md §4, substitution 4), so the second metric
//! is the RAM traffic (bytes moved through memory) that causes those
//! misses.
//!
//! Environment: `SCC_SF` (default 0.05).

use scc_bench::env_f64;
use scc_storage::{DecompressionGranularity, Disk, Layout, ScanMode};
use scc_tpch::queries::run_query;
use scc_tpch::{QueryConfig, TpchDb};

fn main() {
    let metrics = scc_bench::metrics::init();
    let sf = env_f64("SCC_SF", 0.05);
    eprintln!("generating + loading TPC-H at SF {sf}...");
    let db = TpchDb::generate(sf, 0x7AB3);
    println!("Table 3: I/O-RAM (page-wise) vs RAM-CPU cache (vector-wise) decompression");
    println!(
        "{:>3} | {:>12} {:>14} | {:>12} {:>14} | {:>8}",
        "Q", "page ms", "page RAM MB", "vector ms", "vector RAM MB", "speedup"
    );
    for q in [3u32, 4, 6, 18] {
        let mut row = Vec::new();
        for granularity in
            [DecompressionGranularity::PageWise, DecompressionGranularity::VectorWise]
        {
            let cfg = QueryConfig {
                mode: ScanMode::Compressed,
                layout: Layout::Dsm,
                granularity,
                disk: Disk::middle_end(),
                ..Default::default()
            };
            let run = run_query(&db, &cfg, q);
            row.push((
                run.cpu_seconds * 1000.0,
                run.stats.ram_traffic_bytes as f64 / (1024.0 * 1024.0),
            ));
        }
        println!(
            "{:>3} | {:>12.1} {:>14.1} | {:>12.1} {:>14.1} | {:>7.2}x",
            q,
            row[0].0,
            row[0].1,
            row[1].0,
            row[1].1,
            row[0].0 / row[1].0
        );
    }
    println!("\npaper shape (SF-100): vector-wise is 1.1-1.5x faster and has far fewer");
    println!("L2 misses (e.g. Q4: 14.78M vs 0.10M) — here visible as RAM traffic.");
    metrics.finish();
}
