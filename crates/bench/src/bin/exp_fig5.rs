//! Figure 5 — compression bandwidth vs exception rate for the three
//! LOOP1 kernels: NAIVE (branchy), PRED (predicated append) and DC
//! (double-cursor).
//!
//! Environment: `SCC_N` values per run (default 4 Mi).

use scc_bench::data::with_exception_rate;
use scc_bench::{env_usize, gb_per_sec, time_median};
use scc_core::{pfor, CompressKernel};

const B: u32 = 8;

fn main() {
    let metrics = scc_bench::metrics::init();
    let n = env_usize("SCC_N", 4 * 1024 * 1024);
    let in_bytes = n * 8;
    println!("Figure 5: PFOR compression bandwidth (GB/s of u64 input) vs exception rate");
    println!("n = {n} values, b = {B} bit codes");
    println!("{:>6} {:>12} {:>12} {:>12}", "E", "NAIVE", "PRED", "DC");
    for pct in [0, 2, 5, 10, 20, 30, 40, 50, 60, 75, 90, 100] {
        let rate = pct as f64 / 100.0;
        let values = with_exception_rate(n, rate, B, 0xF15 + pct as u64);
        let mut row = Vec::new();
        for kernel in
            [CompressKernel::Naive, CompressKernel::Predicated, CompressKernel::DoubleCursor]
        {
            let mut seg = pfor::compress_with(&values, 0, B, kernel);
            let t = time_median(5, || {
                seg = pfor::compress_with(&values, 0, B, kernel);
            });
            assert_eq!(seg.decompress(), values);
            row.push(gb_per_sec(in_bytes, t));
        }
        println!("{:>5.2} {:>12.2} {:>12.2} {:>12.2}", rate, row[0], row[1], row[2]);
    }
    println!("\npaper shape: NAIVE dips at intermediate rates (branch misses); PRED is");
    println!("flat; DC matches or beats PRED and is the most stable across platforms.");
    metrics.finish();
}
