//! Table 2 — TPC-H per-query results: compression ratios, decompression
//! speed, and modeled query times (uncompressed vs compressed) under DSM
//! and PAX layouts on the low-end (4-disk, ~80 MB/s) and middle-end
//! (12-disk, ~350 MB/s) configurations.
//!
//! The database is generated at laptop scale and the disk is simulated
//! (DESIGN.md §4, substitution 1); absolute seconds differ from the
//! paper's SF-100 numbers, but the *shape* — speedups tracking the
//! compression ratio on the slow disk, queries turning CPU-bound on the
//! fast disk, PAX ratios dragged down by comment blobs — is the claim
//! under test.
//!
//! Environment: `SCC_SF` (default 0.05).

use scc_bench::env_f64;
use scc_storage::{Disk, Layout, ScanMode};
use scc_tpch::queries::{query_ratio, run_query, PAPER_QUERIES};
use scc_tpch::{QueryConfig, TpchDb};

fn pax_ratio(db: &TpchDb, q: u32) -> f64 {
    // PAX reads whole chunks: the ratio is over *all* columns of every
    // table the query touches (incl. uncompressible comments).
    let mut plain = 0u64;
    let mut comp = 0u64;
    for (table, _) in scc_tpch::queries::touched_columns(q) {
        let t = scc_tpch::queries::table_by_name(db, table);
        plain += t.plain_bytes();
        comp += t.compressed_bytes();
    }
    plain as f64 / comp as f64
}

fn main() {
    let metrics = scc_bench::metrics::init();
    let sf = env_f64("SCC_SF", 0.05);
    eprintln!("generating + loading TPC-H at SF {sf}...");
    let db = TpchDb::generate(sf, 0x7AB2);
    println!("Table 2: TPC-H SF-{sf} on the simulated low-end (80 MB/s) and");
    println!("middle-end (350 MB/s) disks. Times in milliseconds (modeled total =");
    println!("CPU + I/O stalls under prefetching). dec.speed = decompression MB/s.");
    println!();
    println!(
        "{:>3} {:>6} {:>6} {:>9} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8}",
        "Q",
        "ratio",
        "rPAX",
        "dec MB/s",
        "loD unc",
        "loD cmp",
        "loP unc",
        "loP cmp",
        "miD unc",
        "miD cmp",
        "miP unc",
        "miP cmp"
    );
    for q in PAPER_QUERIES {
        let ratio = query_ratio(&db, q);
        let rpax = pax_ratio(&db, q);
        let mut times = Vec::new();
        let mut dec_speed = 0.0f64;
        let mut faults = (0u64, 0u64, 0u64);
        for disk in [Disk::low_end(), Disk::middle_end()] {
            for layout in [Layout::Dsm, Layout::Pax] {
                for mode in [ScanMode::Uncompressed, ScanMode::Compressed] {
                    let cfg = QueryConfig { mode, layout, disk, ..Default::default() };
                    let run = run_query(&db, &cfg, q);
                    times.push(run.total_seconds() * 1000.0);
                    faults.0 += run.stats.retries;
                    faults.1 += run.stats.checksum_failures;
                    faults.2 += run.stats.quarantined_chunks;
                    if mode == ScanMode::Compressed && layout == Layout::Dsm {
                        let bw = run.stats.decompression_bandwidth();
                        if bw.is_finite() {
                            dec_speed = bw / (1024.0 * 1024.0);
                        }
                    }
                }
            }
        }
        println!(
            "{:>3} {:>6.2} {:>6.2} {:>9.0} | {:>8.1} {:>8.1} {:>8.1} {:>8.1} | {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            q, ratio, rpax, dec_speed,
            times[0], times[1], times[2], times[3],
            times[4], times[5], times[6], times[7],
        );
        if faults != (0, 0, 0) {
            println!(
                "    faults: {} retries, {} checksum failures, {} quarantined chunks",
                faults.0, faults.1, faults.2
            );
        }
    }
    println!();
    println!("paper shape (SF-100): DSM ratios 1.7-8.2 (avg ~3.6); PAX ratios ~1.1-2.8");
    println!("(comments dilute chunks); on the low-end disk compressed speedup tracks");
    println!("the ratio (I/O bound); on the middle-end disk gains shrink (CPU bound).");
    metrics.finish();
}
