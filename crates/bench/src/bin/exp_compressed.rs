//! Compressed-domain predicate pushdown: scan codes, not values.
//!
//! Two sweeps, both comparing `code_scan: true` (Select evaluates the
//! predicate against packed PFOR codes and only survivors are decoded,
//! block-granular) against `code_scan: false` (the decode-then-test
//! baseline):
//!
//! 1. A synthetic filtered aggregate `select sum(pay) where key < K`
//!    over a uniform i32 column, at selectivities from 0.01% to 100%.
//!    Uniform data is the *hard* case for block skipping — a block
//!    only skips when none of its 128 rows survive — so the decode
//!    savings reported here are a lower bound.
//! 2. TPC-H Q1 and Q6 (the paper's §6 queries), reporting decoded
//!    output bytes and the engine's values_decoded/values_skipped
//!    accounting from EXPLAIN ANALYZE.
//!
//! Environment: `SCC_ROWS` (default 4 Mi) sizes the synthetic table,
//! `SCC_SF` (default 0.05) the TPC-H database. Writes
//! `results/BENCH_compressed.json` (override with `--json <path>`), in
//! the same `{bench, command, params..., sweeps: [...]}` shape as the
//! other BENCH_*.json files.

use scc_bench::{env_f64, env_usize, time_median};
use scc_engine::{AggExpr, Expr, HashAggregate, Operator, Select};
use scc_obs::json::Json;
use scc_storage::disk::stats_handle;
use scc_storage::{Compression, Scan, ScanOptions, TableBuilder};
use std::sync::Arc;

fn report(cpu_ms: f64, output_mb: f64, decoded: u64, skipped: u64) -> Json {
    Json::Obj(vec![
        ("cpu_ms".into(), Json::F64(cpu_ms)),
        ("decoded_output_mb".into(), Json::F64(output_mb)),
        ("values_decoded".into(), Json::U64(decoded)),
        ("values_skipped".into(), Json::U64(skipped)),
    ])
}

fn main() {
    let metrics = scc_bench::metrics::init();
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_compressed.json".into());
    let rows = env_usize("SCC_ROWS", 4 * 1024 * 1024);
    let sf = env_f64("SCC_SF", 0.05);
    let mut sweeps: Vec<Json> = Vec::new();

    // --- Sweep 1: synthetic selectivity ladder -------------------------
    // key is uniform in [0, 10_000); `key < K` selects K/10_000 of the
    // rows. The 14-bit PFOR window covers the whole domain, so the
    // predicate re-encodes into code space (a wrapped window with
    // exceptions would only support Eq/Ne and fall back to decoding).
    // pay is the gathered payload column.
    //
    // The generator must avalanche: a merely affine scramble leaves
    // near-constant deltas and the analyzer picks PFOR-DELTA, which
    // (deliberately) never compiles predicates into code space.
    let mix = |i: usize| {
        let mut x = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    };
    let table = TableBuilder::new("t")
        .compression(Compression::Auto)
        .add_i32("key", (0..rows).map(|i| (mix(i) % 10_000) as i32).collect())
        .add_i64("pay", (0..rows).map(|i| (mix(i + 31) % 10_000) as i64).collect())
        .build();
    println!("compressed-domain pushdown: select sum(pay) where key < K, {rows} rows");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "sel %", "mode", "cpu ms", "output MB", "skipped", "speedup"
    );
    for k in [1i32, 10, 100, 1_000, 5_000, 10_000] {
        let sel = k as f64 / 10_000.0;
        let mut baseline_ms = 0.0f64;
        for code_scan in [false, true] {
            let stats = stats_handle();
            let mut sum = 0i64;
            let mut per_run = scc_storage::ScanStats::default();
            let mut decoded = 0u64;
            let mut skipped = 0u64;
            let cpu = time_median(3, || {
                let scan = Scan::new(
                    Arc::clone(&table),
                    &["key", "pay"],
                    ScanOptions { code_scan, ..ScanOptions::default() },
                    Arc::clone(&stats),
                    None,
                );
                let filtered = Select::new(scan, Expr::col(0).lt(Expr::lit_i32(k)));
                let mut agg =
                    HashAggregate::new(filtered, vec![], vec![AggExpr::Sum(Expr::col(1))]);
                sum = agg.next().expect("one group").col(0).as_i64()[0];
                let (d, s) = agg.explain().values_totals();
                decoded = d;
                skipped = s;
                per_run = stats.lock().unwrap().take();
            });
            std::hint::black_box(sum);
            let cpu_ms = cpu * 1e3;
            let output_mb = per_run.output_bytes as f64 / (1024.0 * 1024.0);
            let label = if code_scan { "codes" } else { "decode" };
            let speedup = if code_scan { baseline_ms / cpu_ms } else { 1.0 };
            if !code_scan {
                baseline_ms = cpu_ms;
            }
            println!(
                "{:>8.2} {label:>10} {cpu_ms:>12.2} {output_mb:>12.2} {skipped:>12} \
                 {speedup:>9.2}x",
                sel * 100.0,
            );
            sweeps.push(Json::Obj(vec![
                ("kind".into(), Json::Str("selectivity".into())),
                ("selectivity".into(), Json::F64(sel)),
                ("code_scan".into(), Json::Bool(code_scan)),
                ("report".into(), report(cpu_ms, output_mb, decoded, skipped)),
            ]));
        }
    }

    // --- Sweep 2: TPC-H Q1 / Q6 ---------------------------------------
    eprintln!("generating TPC-H at SF {sf}...");
    let db = scc_tpch::TpchDb::generate(sf, 42);
    println!("\nTPC-H (SF {sf}):");
    println!(
        "{:>4} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "Q", "mode", "cpu ms", "output MB", "decoded", "skipped"
    );
    for q in [1u32, 6] {
        for code_scan in [false, true] {
            let cfg = scc_tpch::QueryConfig { code_scan, ..Default::default() };
            // One warmup, then a measured run (run_query times itself).
            scc_tpch::queries::run_query(&db, &cfg, q);
            let run = scc_tpch::queries::run_query(&db, &cfg, q);
            let (decoded, skipped) = run.explain.values_totals();
            let cpu_ms = run.cpu_seconds * 1e3;
            let output_mb = run.stats.output_bytes as f64 / (1024.0 * 1024.0);
            let label = if code_scan { "codes" } else { "decode" };
            println!(
                "{q:>4} {label:>10} {cpu_ms:>12.2} {output_mb:>12.2} {decoded:>14} {skipped:>14}"
            );
            sweeps.push(Json::Obj(vec![
                ("kind".into(), Json::Str("tpch".into())),
                ("query".into(), Json::U64(q as u64)),
                ("code_scan".into(), Json::Bool(code_scan)),
                ("report".into(), report(cpu_ms, output_mb, decoded, skipped)),
            ]));
        }
    }

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("compressed-domain predicate pushdown".into())),
        (
            "command".into(),
            Json::Str("exp_compressed (SCC_ROWS sizes the sweep, SCC_SF the TPC-H db)".into()),
        ),
        ("rows".into(), Json::U64(rows as u64)),
        ("sf".into(), Json::F64(sf)),
        ("kernel_class".into(), Json::Str(scc_bitpack::kernel::active().name().into())),
        ("sweeps".into(), Json::Arr(sweeps)),
    ]);
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&json_path, doc.pretty()).expect("write compressed json");
    println!("\nwrote {json_path}");
    println!("\nexpected shape: at low selectivity the code scan decodes a small");
    println!("fraction of the column (dead 128-blocks and dead batches are never");
    println!("materialized); as selectivity approaches 100% the two modes converge");
    println!("since every block holds a survivor.");
    metrics.finish();
}
