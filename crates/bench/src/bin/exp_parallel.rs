//! §6 outlook — parallel decompression on multi-core CPUs.
//!
//! "With the upcoming families of multi-core CPUs ... highly
//! data-intensive applications suffer not only from disk but also from a
//! main-memory bandwidth bottleneck. Preliminary results show that our
//! high-performance (de-)compression routines can already improve this
//! bandwidth on parallel architectures."
//!
//! Two sweeps:
//!
//! 1. **Raw decode** — segments are independent, so decompression
//!    parallelizes trivially: decode a multi-segment PFOR column with
//!    1..=N threads via `thread::scope`.
//! 2. **Full scan path** — the same parallelism through the storage
//!    stack: [`ParallelScan`] workers pull segments through the modeled
//!    disk and shared buffer pool, decompress, and feed a Q6-style
//!    `Select` on the calling thread.
//!
//! Environment: `SCC_ROWS` (default 16 Mi, raw sweep), `SCC_PIPE_ROWS`
//! (default 4 Mi, pipeline sweep), `SCC_MAX_THREADS` (default: detected
//! `available_parallelism`; set explicitly to probe past a container's
//! cgroup quota).

use scc_bench::data::with_exception_rate;
use scc_bench::{env_usize, gb_per_sec, time_median};
use scc_core::pfor;
use scc_engine::{Expr, Select};
use scc_storage::disk::stats_handle;
use scc_storage::{pool_handle, ParallelScan, ScanOptions, TableBuilder};
use std::sync::Arc;
use std::thread;

fn thread_counts(max: usize) -> Vec<usize> {
    let mut counts = Vec::new();
    let mut t = 1usize;
    while t <= max {
        counts.push(t);
        t *= 2;
    }
    if counts.last() != Some(&max) {
        counts.push(max);
    }
    counts
}

fn raw_decode_sweep(rows: usize, max_threads: usize) {
    let seg_rows = 1 << 20;
    let values = with_exception_rate(rows, 0.05, 8, 0x9A7);
    let segments: Vec<_> = values.chunks(seg_rows).map(|c| pfor::compress(c, 0, 8)).collect();
    println!("raw decode: {} segments x {} values, 5% exceptions, b=8", segments.len(), seg_rows);
    println!("{:>8} {:>12} {:>10}", "threads", "GB/s", "scaling");
    let mut base = 0.0f64;
    for t_count in thread_counts(max_threads) {
        let t = time_median(3, || {
            thread::scope(|scope| {
                for worker in 0..t_count {
                    let segs = &segments;
                    scope.spawn(move || {
                        let mut out: Vec<u64> = Vec::with_capacity(seg_rows);
                        let mut i = worker;
                        while i < segs.len() {
                            out.clear();
                            segs[i].decompress_into(&mut out);
                            std::hint::black_box(out.last());
                            i += t_count;
                        }
                    });
                }
            });
        });
        let bw = gb_per_sec(rows * 8, t);
        if t_count == 1 {
            base = bw;
        }
        println!("{:>8} {:>12.2} {:>9.2}x", t_count, bw, bw / base);
    }
}

/// Q6-shaped pipeline: ParallelScan (disk -> pool -> decompress) feeding
/// a `Select` that keeps ~10% of rows, drained on the calling thread.
fn pipeline_sweep(rows: usize, max_threads: usize) {
    let seg_rows = 1 << 18;
    let key: Vec<i64> =
        with_exception_rate(rows, 0.05, 8, 0xC0FFEE).into_iter().map(|v| v as i64).collect();
    let val: Vec<i64> = (0..rows as i64).collect();
    let table = TableBuilder::new("pipe")
        .seg_rows(seg_rows)
        .add_i64("key", key.clone())
        .add_i64("val", val)
        .build();
    let pool =
        pool_handle(table.col("key").compressed_bytes() + table.col("val").compressed_bytes());
    // ~10% selectivity on the PFOR'd key column.
    let cutoff = 26i64;
    let expect = key.iter().filter(|&&k| k < cutoff).count();
    println!(
        "\nfull scan path: {} rows, {} segments, select key < {cutoff} (~{:.0}% pass)",
        rows,
        table.n_segments(),
        100.0 * expect as f64 / rows as f64
    );
    println!("{:>8} {:>12} {:>10} {:>12}", "threads", "Mrows/s", "scaling", "rows out");
    let mut base = 0.0f64;
    for t_count in thread_counts(max_threads) {
        let mut rows_out = 0usize;
        let run = |rows_out: &mut usize| {
            let scan = ParallelScan::new(
                Arc::clone(&table),
                &["key", "val"],
                ScanOptions::default(),
                stats_handle(),
                Some(Arc::clone(&pool)),
                t_count,
            );
            let mut plan = Select::new(Box::new(scan), Expr::col(0).lt(Expr::lit_i64(cutoff)));
            let batch = scc_engine::ops::collect(&mut plan);
            *rows_out = batch.len();
        };
        run(&mut rows_out); // warm the pool so every timed run hits it
        let t = time_median(3, || run(&mut rows_out));
        assert_eq!(rows_out, expect, "parallel select diverged at {t_count} threads");
        let mrows = rows as f64 / 1e6 / t;
        if t_count == 1 {
            base = mrows;
        }
        println!("{:>8} {:>12.1} {:>9.2}x {:>12}", t_count, mrows, mrows / base, rows_out);
    }
}

fn main() {
    let metrics = scc_bench::metrics::init();
    let rows = env_usize("SCC_ROWS", 16 * 1024 * 1024);
    let pipe_rows = env_usize("SCC_PIPE_ROWS", 4 * 1024 * 1024);
    let detected = thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let max_threads = env_usize("SCC_MAX_THREADS", detected);
    println!("parallel decompression ({detected} CPUs detected, sweeping to {max_threads})");
    raw_decode_sweep(rows, max_threads);
    pipeline_sweep(pipe_rows, max_threads);
    println!("\npaper shape: aggregate decompression bandwidth scales with cores until");
    println!("the memory bus saturates — compression raises the *effective* memory");
    println!("bandwidth the same way it raises effective disk bandwidth.");
    metrics.finish();
}
