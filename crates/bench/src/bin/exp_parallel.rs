//! §6 outlook — parallel decompression on multi-core CPUs.
//!
//! "With the upcoming families of multi-core CPUs ... highly
//! data-intensive applications suffer not only from disk but also from a
//! main-memory bandwidth bottleneck. Preliminary results show that our
//! high-performance (de-)compression routines can already improve this
//! bandwidth on parallel architectures."
//!
//! Segments are independent, so decompression parallelizes trivially:
//! this experiment decodes a multi-segment column with 1..=N threads.
//!
//! Environment: `SCC_ROWS` (default 16 Mi), `SCC_MAX_THREADS`.

use scc_bench::data::with_exception_rate;
use scc_bench::{env_usize, gb_per_sec, time_median};
use scc_core::pfor;
use std::thread;

fn main() {
    let metrics = scc_bench::metrics::init();
    let rows = env_usize("SCC_ROWS", 16 * 1024 * 1024);
    // Container cgroup quotas often report 1 "available" CPU while extra
    // hardware threads still speed this up; sweep to 4 by default.
    let max_threads = env_usize(
        "SCC_MAX_THREADS",
        thread::available_parallelism().map(|p| p.get()).unwrap_or(1).max(4),
    );
    let seg_rows = 1 << 20;
    let values = with_exception_rate(rows, 0.05, 8, 0x9A7);
    let segments: Vec<_> = values.chunks(seg_rows).map(|c| pfor::compress(c, 0, 8)).collect();
    println!(
        "parallel decompression: {} segments x {} values, 5% exceptions, b=8",
        segments.len(),
        seg_rows
    );
    println!("{:>8} {:>12} {:>10}", "threads", "GB/s", "scaling");
    let mut base = 0.0f64;
    let mut t_count = 1usize;
    while t_count <= max_threads {
        let t = time_median(3, || {
            thread::scope(|scope| {
                for worker in 0..t_count {
                    let segs = &segments;
                    scope.spawn(move || {
                        let mut out: Vec<u64> = Vec::with_capacity(seg_rows);
                        let mut i = worker;
                        while i < segs.len() {
                            out.clear();
                            segs[i].decompress_into(&mut out);
                            std::hint::black_box(out.last());
                            i += t_count;
                        }
                    });
                }
            });
        });
        let bw = gb_per_sec(rows * 8, t);
        if t_count == 1 {
            base = bw;
        }
        println!("{:>8} {:>12.2} {:>9.2}x", t_count, bw, bw / base);
        t_count *= 2;
    }
    println!("\npaper shape: aggregate decompression bandwidth scales with cores until");
    println!("the memory bus saturates — compression raises the *effective* memory");
    println!("bandwidth the same way it raises effective disk bandwidth.");
    metrics.finish();
}
