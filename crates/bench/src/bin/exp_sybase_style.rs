//! Figure 1 as an end-to-end experiment — three storage designs scanning
//! the same column through the same query pipeline:
//!
//! 1. **uncompressed** — full-width I/O, no decompression;
//! 2. **Sybase-IQ style** (§2.1) — LZRW1-compressed pages, decompressed
//!    page-wise between I/O and RAM (the left side of Figure 1);
//! 3. **ColumnBM/X100** — PFOR segments decompressed vector-wise on the
//!    RAM-CPU cache boundary (the right side of Figure 1).
//!
//! Environment: `SCC_ROWS` (default 8 Mi).

use scc_bench::{env_usize, time_median};
use scc_engine::{AggExpr, Expr, HashAggregate, Operator, Select};
use scc_storage::disk::stats_handle;
use scc_storage::{
    Compression, DecompressionGranularity, Disk, Layout, Scan, ScanMode, ScanOptions, ScanStats,
    TableBuilder,
};
use std::sync::Arc;

fn main() {
    let metrics = scc_bench::metrics::init();
    let rows = env_usize("SCC_ROWS", 8 * 1024 * 1024);
    // Warehouse-shaped column: clustered values, mild repetition.
    let values: Vec<i64> = (0..rows as i64).map(|i| 40_000 + (i * 37) % 2_000).collect();
    let designs: Vec<(&str, Compression, ScanMode, DecompressionGranularity)> = vec![
        (
            "uncompressed",
            Compression::None,
            ScanMode::Uncompressed,
            DecompressionGranularity::VectorWise,
        ),
        (
            "Sybase-IQ style (lzrw1 pages)",
            Compression::Lzrw1Pages,
            ScanMode::Compressed,
            DecompressionGranularity::PageWise,
        ),
        (
            "ColumnBM (PFOR vector-wise)",
            Compression::Auto,
            ScanMode::Compressed,
            DecompressionGranularity::VectorWise,
        ),
    ];
    println!("Figure 1 end to end: select v < 41000, sum(v) over {rows} rows");
    println!(
        "{:<30} {:>8} {:>10} {:>10} {:>10} {:>11}",
        "design", "ratio", "cpu ms", "io ms", "total ms", "RAM MB"
    );
    for (label, compression, mode, granularity) in designs {
        let table =
            TableBuilder::new("col").compression(compression).add_i64("v", values.clone()).build();
        let stats = stats_handle();
        let mut result = 0i64;
        // Every timed run does identical work, so draining the shared
        // handle at the end of each run leaves the last run's true
        // per-run counters — no averaging over an accumulated total.
        let mut per_run = ScanStats::default();
        let cpu = time_median(3, || {
            let scan = Scan::new(
                Arc::clone(&table),
                &["v"],
                ScanOptions {
                    mode,
                    granularity,
                    vector_size: 1024,
                    disk: Disk::low_end(),
                    layout: Layout::Dsm,
                    // Fig. 1 compares decode-then-test designs; keep the
                    // decompression cost inside the measured pipeline.
                    code_scan: false,
                },
                Arc::clone(&stats),
                None,
            );
            let filtered = Select::new(scan, Expr::col(0).lt(Expr::lit_i64(41_000)));
            let mut agg = HashAggregate::new(filtered, vec![], vec![AggExpr::Sum(Expr::col(0))]);
            result = agg.next().expect("one group").col(0).as_i64()[0];
            per_run = stats.lock().unwrap().take();
        });
        let io = per_run.io_seconds;
        let total = cpu + (io - cpu).max(0.0);
        let ratio = table.plain_bytes() as f64 / table.compressed_bytes() as f64;
        println!(
            "{:<30} {:>8.2} {:>10.1} {:>10.1} {:>10.1} {:>11.1}",
            label,
            if matches!(mode, ScanMode::Uncompressed) { 1.0 } else { ratio },
            cpu * 1000.0,
            io * 1000.0,
            total * 1000.0,
            per_run.ram_traffic_bytes as f64 / (1024.0 * 1024.0),
        );
        std::hint::black_box(result);
    }
    println!("\npaper shape (Fig. 1 + §2.1): page-level LZRW1 cuts I/O but pays heavy");
    println!("CPU decompression and triple RAM traffic; PFOR vector-wise cuts I/O");
    println!("*more* (better ratio on integer columns) at a fraction of the CPU cost.");
    metrics.finish();
}
