//! LZ77 with hash-chain matching plus canonical Huffman entropy coding —
//! our stand-in for the `zlib`/DEFLATE class (see DESIGN.md §4).
//!
//! Same token model as DEFLATE (literals, 29 length buckets with extra
//! bits, 30 distance buckets with extra bits, 32 KiB window, matches
//! 3..=258) but a simpler container: per-call header with both code-length
//! tables packed at 4 bits per symbol.

use crate::huffcode::{code_lengths, pad_for_decode, Decoder, Encoder, MAX_CODE_LEN};
use crate::traits::{le, ByteCodec};
use scc_bitpack::{BitReader, BitWriter};

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const MAX_CHAIN: usize = 32;
const HASH_BITS: u32 = 15;

/// DEFLATE length buckets: base values and extra bits.
const LEN_BASE: [u32; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u32; 29] =
    [0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0];
/// DEFLATE distance buckets.
const DIST_BASE: [u32; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Literal/length alphabet: 256 literals + end-of-block + 29 lengths.
const LITLEN_SYMS: usize = 256 + 1 + 29;
const EOB: usize = 256;

#[inline]
fn len_bucket(len: usize) -> usize {
    LEN_BASE.iter().rposition(|&b| b as usize <= len).expect("len >= 3")
}

#[inline]
fn dist_bucket(dist: usize) -> usize {
    DIST_BASE.iter().rposition(|&b| b as usize <= dist).expect("dist >= 1")
}

#[inline]
fn hash3(p: &[u8]) -> usize {
    let v = (p[0] as u32) | ((p[1] as u32) << 8) | ((p[2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// One LZ77 token.
enum Token {
    Literal(u8),
    Match { len: usize, dist: usize },
}

fn tokenize(input: &[u8]) -> Vec<Token> {
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; input.len()];
    let mut tokens = Vec::with_capacity(input.len() / 3 + 16);
    let mut pos = 0usize;
    while pos < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if pos + MIN_MATCH <= input.len() {
            let h = hash3(&input[pos..]);
            let mut cand = head[h];
            let mut chain = 0usize;
            while cand != usize::MAX && pos - cand <= WINDOW && chain < MAX_CHAIN {
                let limit = MAX_MATCH.min(input.len() - pos);
                let mut len = 0usize;
                while len < limit && input[cand + len] == input[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = pos - cand;
                    if len == limit {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
            prev[pos] = head[h];
            head[h] = pos;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match { len: best_len, dist: best_dist });
            // Insert hash entries for the skipped positions (cheap greedy).
            for p in pos + 1..(pos + best_len).min(input.len().saturating_sub(MIN_MATCH - 1)) {
                let h = hash3(&input[p..]);
                prev[p] = head[h];
                head[h] = p;
            }
            pos += best_len;
        } else {
            tokens.push(Token::Literal(input[pos]));
            pos += 1;
        }
    }
    tokens
}

/// Deflate-like codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct DeflateLike;

impl ByteCodec for DeflateLike {
    fn name(&self) -> &'static str {
        "deflate-like"
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        le::put_u32(out, input.len() as u32);
        let tokens = tokenize(input);
        // Frequencies for both alphabets.
        let mut lit_freq = [0u64; LITLEN_SYMS];
        let mut dist_freq = [0u64; 30];
        for t in &tokens {
            match *t {
                Token::Literal(b) => lit_freq[b as usize] += 1,
                Token::Match { len, dist } => {
                    lit_freq[257 + len_bucket(len)] += 1;
                    dist_freq[dist_bucket(dist)] += 1;
                }
            }
        }
        lit_freq[EOB] += 1;
        let lit_lens = code_lengths(&lit_freq, MAX_CODE_LEN);
        let dist_lens = code_lengths(&dist_freq, MAX_CODE_LEN);
        // Header: both length tables, 4 bits per symbol.
        let mut table = vec![0u8; (LITLEN_SYMS + 30).div_ceil(2)];
        for (i, &l) in lit_lens.iter().chain(dist_lens.iter()).enumerate() {
            table[i / 2] |= (l as u8) << ((i % 2) * 4);
        }
        out.extend_from_slice(&table);
        let lit_enc = Encoder::from_lengths(&lit_lens);
        let dist_enc = Encoder::from_lengths(&dist_lens);
        let mut w = BitWriter::new();
        for t in &tokens {
            match *t {
                Token::Literal(b) => lit_enc.put(&mut w, b as usize),
                Token::Match { len, dist } => {
                    let lb = len_bucket(len);
                    lit_enc.put(&mut w, 257 + lb);
                    w.put((len as u64) - LEN_BASE[lb] as u64, LEN_EXTRA[lb]);
                    let db = dist_bucket(dist);
                    dist_enc.put(&mut w, db);
                    w.put((dist as u64) - DIST_BASE[db] as u64, DIST_EXTRA[db]);
                }
            }
        }
        lit_enc.put(&mut w, EOB);
        pad_for_decode(&mut w);
        for word in w.into_words() {
            out.extend_from_slice(&word.to_le_bytes());
        }
    }

    fn decompress(&self, input: &[u8], expected_len: usize, out: &mut Vec<u8>) {
        let n = le::get_u32(input, 0) as usize;
        debug_assert_eq!(n, expected_len);
        let table_bytes = (LITLEN_SYMS + 30).div_ceil(2);
        let mut lit_lens = vec![0u32; LITLEN_SYMS];
        let mut dist_lens = vec![0u32; 30];
        for i in 0..LITLEN_SYMS + 30 {
            let l = ((input[4 + i / 2] >> ((i % 2) * 4)) & 0xf) as u32;
            if i < LITLEN_SYMS {
                lit_lens[i] = l;
            } else {
                dist_lens[i - LITLEN_SYMS] = l;
            }
        }
        let lit_dec = Decoder::from_lengths(&lit_lens);
        let has_dists = dist_lens.iter().any(|&l| l > 0);
        let dist_dec = if has_dists { Some(Decoder::from_lengths(&dist_lens)) } else { None };
        let payload = &input[4 + table_bytes..];
        let words: Vec<u64> = payload
            .chunks(8)
            .map(|c| {
                let mut buf = [0u8; 8];
                buf[..c.len()].copy_from_slice(c);
                u64::from_le_bytes(buf)
            })
            .collect();
        let mut r = BitReader::new(&words);
        let start = out.len();
        out.reserve(n);
        loop {
            let sym = lit_dec.get(&mut r);
            if sym == EOB {
                break;
            }
            if sym < 256 {
                out.push(sym as u8);
            } else {
                let lb = sym - 257;
                let len = LEN_BASE[lb] as usize + r.get(LEN_EXTRA[lb]) as usize;
                let dd = dist_dec.as_ref().expect("match token implies distance table");
                let db = dd.get(&mut r);
                let dist = DIST_BASE[db] as usize + r.get(DIST_EXTRA[db]) as usize;
                let from = out.len() - dist;
                for k in 0..len {
                    let byte = out[from + k];
                    out.push(byte);
                }
            }
        }
        debug_assert_eq!(out.len() - start, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let compressed = DeflateLike.compress_vec(data);
        assert_eq!(DeflateLike.decompress_vec(&compressed, data.len()), data);
        compressed.len()
    }

    #[test]
    fn bucket_tables_cover_ranges() {
        assert_eq!(len_bucket(3), 0);
        assert_eq!(len_bucket(258), 28);
        assert_eq!(len_bucket(10), 7);
        assert_eq!(len_bucket(11), 8);
        assert_eq!(len_bucket(12), 8);
        assert_eq!(dist_bucket(1), 0);
        assert_eq!(dist_bucket(32_768), 29);
    }

    #[test]
    fn text_compresses_better_than_lz_only() {
        use crate::lzss::Lzss;
        let data = b"l_shipdate date, l_commitdate date, l_receiptdate date, ".repeat(300);
        let deflate = roundtrip(&data);
        let lzss = Lzss.compress_vec(&data).len();
        assert!(deflate < lzss, "deflate {deflate} vs lzss {lzss}");
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        roundtrip(&data);
    }

    #[test]
    fn long_runs() {
        let mut data = vec![0u8; 50_000];
        data[25_000] = 1;
        let size = roundtrip(&data);
        assert!(size < 2500);
    }

    #[test]
    fn random_binary() {
        let mut x = 7u64;
        let data: Vec<u8> = (0..30_000)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                (x >> 33) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn literal_only_stream_has_no_distance_table() {
        // Short input with no repeats at all.
        roundtrip(b"abcdefg");
        roundtrip(b"");
        roundtrip(b"x");
    }
}
