//! Classic dictionary compression ("enumerated storage").
//!
//! Every distinct value goes into the dictionary and codes take
//! `ceil(log2(|D|))` bits — even when the frequency distribution is highly
//! skewed, which is the weakness PDICT repairs. New values outside the
//! dictionary cannot be represented (the overflow-on-insert problem of
//! §2.1); [`ClassicDict::encode_with_dict`] returns an error in that case.

use crate::traits::{le, IntCodec};
use scc_bitpack::{pack_vec, unpack, width_of};
use std::collections::HashMap;

/// Classic full-domain dictionary codec. The dictionary is embedded in the
/// output: header is `|D|` (u32) then the sorted distinct values, then the
/// packed codes.
#[derive(Debug, Default, Clone, Copy)]
pub struct ClassicDict;

impl ClassicDict {
    /// Encodes against a fixed dictionary; fails on out-of-dictionary
    /// values (the overflow-on-insert hazard of classic dictionaries).
    pub fn encode_with_dict(
        &self,
        values: &[u32],
        dict: &[u32],
        out: &mut Vec<u8>,
    ) -> Result<(), u32> {
        let index: HashMap<u32, u32> =
            dict.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
        let b = width_of(dict.len().saturating_sub(1) as u32);
        le::put_u32(out, dict.len() as u32);
        for &v in dict {
            le::put_u32(out, v);
        }
        let mut codes = Vec::with_capacity(values.len());
        for &v in values {
            codes.push(*index.get(&v).ok_or(v)?);
        }
        for word in pack_vec(&codes, b) {
            le::put_u32(out, word);
        }
        Ok(())
    }
}

impl IntCodec for ClassicDict {
    fn name(&self) -> &'static str {
        "dict"
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        let mut dict: Vec<u32> = values.to_vec();
        dict.sort_unstable();
        dict.dedup();
        self.encode_with_dict(values, &dict, out)
            .expect("dictionary built from the values themselves");
    }

    fn decode(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) {
        if n == 0 {
            return;
        }
        let d = le::get_u32(bytes, 0) as usize;
        let dict: Vec<u32> = (0..d).map(|i| le::get_u32(bytes, 4 + i * 4)).collect();
        let b = width_of(d.saturating_sub(1) as u32);
        let words: Vec<u32> = bytes[4 + d * 4..]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut codes = vec![0u32; n];
        unpack(&words, b, &mut codes);
        out.extend(codes.iter().map(|&c| dict[c as usize]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_low_cardinality() {
        let values: Vec<u32> = (0..1000).map(|i| [10, 20, 30][i % 3]).collect();
        let bytes = ClassicDict.encode_vec(&values);
        assert_eq!(ClassicDict.decode_vec(&bytes, values.len()), values);
        // 2 bits per value + tiny dictionary.
        assert!(bytes.len() < 300);
    }

    #[test]
    fn skew_does_not_help_classic_dict() {
        // 1000 distinct values, one of them 99.9% frequent: still 10 bits.
        let mut values = vec![42u32; 100_000];
        for i in 0..1000 {
            values[i * 100] = i as u32 * 2;
        }
        let bytes = ClassicDict.encode_vec(&values);
        // >= 10 bits per value regardless of skew.
        assert!(bytes.len() > 100_000 * 10 / 8);
        assert_eq!(ClassicDict.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn out_of_dictionary_value_fails() {
        let mut out = Vec::new();
        let err = ClassicDict.encode_with_dict(&[1, 2, 99], &[1, 2, 3], &mut out);
        assert_eq!(err, Err(99));
    }

    #[test]
    fn single_distinct_value() {
        let values = vec![5u32; 64];
        let bytes = ClassicDict.encode_vec(&values);
        assert_eq!(ClassicDict.decode_vec(&bytes, 64), values);
    }
}
