//! Carryover-12-style word-aligned coding (after Anh & Moffat, *Inverted
//! index compression using word-aligned binary codes*, Inf. Retr. 2005).
//!
//! Like Simple-9 this packs as many equal-width values as possible into
//! each 32-bit word, but with the two refinements that give carryover-12
//! its ratio edge:
//!
//! 1. **Relative selectors** — a 2-bit selector picks the next width
//!    *relative* to the current one (down one, same, up one, or escape to
//!    the widest), from a 12-entry width table;
//! 2. **Selector carryover** — when a word has two or more wasted bits,
//!    the next word's selector is stored in that waste, so the next word
//!    has all 32 bits of payload.
//!
//! The original paper's exact transfer tables are not public in full
//! detail; this is a faithful-in-spirit reimplementation documented in
//! DESIGN.md §4. Values must be below `2^30` (always true for d-gaps in
//! collections up to a billion postings).

use crate::traits::IntCodec;

/// The 12 admissible code widths.
const WIDTHS: [u32; 12] = [1, 2, 3, 4, 5, 6, 7, 8, 10, 15, 20, 30];

/// Reachable width indexes from width index `i`: down, stay, up, escape.
#[inline]
fn transfer(i: usize) -> [usize; 4] {
    [i.saturating_sub(1), i, (i + 1).min(WIDTHS.len() - 1), WIDTHS.len() - 1]
}

/// Carryover-12-style codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct Carryover12;

impl IntCodec for Carryover12 {
    fn name(&self) -> &'static str {
        "carryover-12"
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        assert!(values.iter().all(|&v| v < 1 << 30), "carryover-12 requires values < 2^30");
        if values.is_empty() {
            return;
        }
        // Header: initial width index, fixed up once the first word's
        // width has been chosen.
        let header_pos = out.len();
        out.push(0);
        let mut words: Vec<u32> = Vec::new();
        let mut pos = 0usize;
        let mut cur_idx = 0usize;
        // Where the *next* selector goes: None = inline at the start of
        // the next word; Some((word, bit)) = carried into a finished word.
        let mut carry_slot: Option<(usize, u32)> = None;
        // The first word's width is the header's init_idx (conceptually a
        // carried selector), so its full 32 bits are payload.
        let mut first = true;
        while pos < values.len() {
            let payload: u32 = if first || carry_slot.is_some() { 32 } else { 30 };
            let remaining = values.len() - pos;
            // Choose among the reachable widths (all 12 for the first
            // word, whose index goes in the header): the one coding the
            // most values; ties go to the narrower width. The escape entry
            // (30 bits) is always viable.
            let reachable: &[usize] =
                if first { &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11] } else { &transfer(cur_idx) };
            let mut best: Option<(usize, usize)> = None; // (count, idx)
            for &idx in reachable {
                let w = WIDTHS[idx];
                let count = ((payload / w) as usize).min(remaining);
                if count == 0 {
                    continue;
                }
                let fits = values[pos..pos + count].iter().all(|&v| v < (1u32 << w) || w >= 30);
                if fits {
                    let better = match best {
                        None => true,
                        Some((bc, bi)) => count > bc || (count == bc && idx < bi),
                    };
                    if better {
                        best = Some((count, idx));
                    }
                }
            }
            let (count, idx) = best.expect("escape width is always viable");
            let w = WIDTHS[idx];
            // Emit the selector (2-bit relative position in the transfer
            // row) unless this is the first word, whose width comes from
            // the header.
            let mut word = 0u32;
            let mut bit = 0u32;
            if first {
                // Width known from header; no selector anywhere.
                out[header_pos] = idx as u8;
            } else {
                let sel = transfer(cur_idx)
                    .iter()
                    .position(|&t| t == idx)
                    .expect("idx drawn from transfer row") as u32;
                match carry_slot {
                    Some((wi, wbit)) => words[wi] |= sel << wbit,
                    None => {
                        word |= sel;
                        bit = 2;
                    }
                }
            }
            for &v in &values[pos..pos + count] {
                word |= v << bit;
                bit += w;
            }
            let waste = 32 - bit;
            words.push(word);
            carry_slot = if waste >= 2 { Some((words.len() - 1, bit)) } else { None };
            cur_idx = idx;
            pos += count;
            first = false;
        }
        for wv in words {
            out.extend_from_slice(&wv.to_le_bytes());
        }
    }

    fn decode(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) {
        if n == 0 {
            return;
        }
        let mut cur_idx = bytes[0] as usize;
        let words: &[u8] = &bytes[1..];
        let word_at =
            |i: usize| u32::from_le_bytes(words[i * 4..i * 4 + 4].try_into().expect("truncated"));
        let mut widx = 0usize;
        let mut remaining = n;
        // Selector of the upcoming word if it was carried: (value).
        let mut carried_sel: Option<u32> = None;
        let mut first = true;
        while remaining > 0 {
            let word = word_at(widx);
            widx += 1;
            let (idx, mut bit, payload) = if first {
                (cur_idx, 0u32, 32u32)
            } else if let Some(sel) = carried_sel {
                (transfer(cur_idx)[sel as usize], 0u32, 32u32)
            } else {
                let sel = word & 3;
                (transfer(cur_idx)[sel as usize], 2u32, 30u32)
            };
            let w = WIDTHS[idx];
            let count = ((payload / w) as usize).min(remaining);
            let mask = if w >= 30 { (1u32 << 30) - 1 } else { (1u32 << w) - 1 };
            for _ in 0..count {
                out.push((word >> bit) & mask);
                bit += w;
            }
            let used = count as u32 * w + if first || carried_sel.is_some() { 0 } else { 2 };
            let waste = 32 - used;
            carried_sel = if waste >= 2 { Some((word >> (32 - waste)) & 3) } else { None };
            cur_idx = idx;
            remaining -= count;
            first = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_uniform_small() {
        let values: Vec<u32> = (0..8000).map(|i| (i * 13 + 1) % 60).collect();
        let bytes = Carryover12.encode_vec(&values);
        assert_eq!(Carryover12.decode_vec(&bytes, values.len()), values);
        // 6-bit values should land near 7 bits/value.
        assert!(bytes.len() < 8000);
    }

    #[test]
    fn roundtrip_geometric_gaps() {
        let mut x = 0x853c49e6u64;
        let values: Vec<u32> = (0..20_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let r = (x >> 33) as u32;
                // Mostly tiny, occasionally large.
                if r.is_multiple_of(50) {
                    r % 1_000_000
                } else {
                    r % 16
                }
            })
            .collect();
        let bytes = Carryover12.encode_vec(&values);
        assert_eq!(Carryover12.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn width_changes_are_gradual_but_escape_works() {
        // A spike forces the escape selector, then widths walk back down.
        let mut values = vec![1u32; 200];
        values[100] = (1 << 30) - 1;
        let bytes = Carryover12.encode_vec(&values);
        assert_eq!(Carryover12.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    #[should_panic(expected = "2^30")]
    fn rejects_oversized_values() {
        Carryover12.encode_vec(&[1 << 30]);
    }

    #[test]
    fn single_value_and_empty() {
        assert!(Carryover12.encode_vec(&[]).is_empty());
        let bytes = Carryover12.encode_vec(&[12345]);
        assert_eq!(Carryover12.decode_vec(&bytes, 1), vec![12345]);
    }

    #[test]
    fn all_zeros() {
        let values = vec![0u32; 1000];
        let bytes = Carryover12.encode_vec(&values);
        assert_eq!(Carryover12.decode_vec(&bytes, values.len()), values);
        // 1-bit codes, 32 per word after the first selector.
        assert!(bytes.len() < 1000 / 8 + 16);
    }
}
