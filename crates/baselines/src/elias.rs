//! Elias gamma and delta universal codes — parameter-free bit-level codes
//! for positive integers, classic in inverted-file compression.
//!
//! Both code `v >= 1`; this codec stores `v + 1` so zero gaps are legal.
//! Gamma: unary length then binary mantissa. Delta: gamma-coded length
//! then mantissa — asymptotically better for large values.

use crate::traits::IntCodec;
use scc_bitpack::{BitReader, BitWriter};

/// Elias gamma codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct EliasGamma;

/// Elias delta codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct EliasDelta;

#[inline]
fn put_gamma(w: &mut BitWriter, v: u64) {
    debug_assert!(v >= 1);
    let nbits = 64 - v.leading_zeros();
    w.put_unary((nbits - 1) as u64);
    // Mantissa without the leading 1 bit.
    w.put(v, nbits - 1);
}

#[inline]
fn get_gamma(r: &mut BitReader<'_>) -> u64 {
    let nbits = r.get_unary() as u32 + 1;
    let mantissa = r.get(nbits - 1);
    (1u64 << (nbits - 1)) | mantissa
}

#[inline]
fn put_delta(w: &mut BitWriter, v: u64) {
    debug_assert!(v >= 1);
    let nbits = 64 - v.leading_zeros();
    put_gamma(w, nbits as u64);
    w.put(v, nbits - 1);
}

#[inline]
fn get_delta(r: &mut BitReader<'_>) -> u64 {
    let nbits = get_gamma(r) as u32;
    let mantissa = r.get(nbits - 1);
    (1u64 << (nbits - 1)) | mantissa
}

fn finish(w: BitWriter, out: &mut Vec<u8>) {
    for word in w.into_words() {
        out.extend_from_slice(&word.to_le_bytes());
    }
}

fn reader_words(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks(8)
        .map(|c| {
            let mut buf = [0u8; 8];
            buf[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(buf)
        })
        .collect()
}

impl IntCodec for EliasGamma {
    fn name(&self) -> &'static str {
        "elias-gamma"
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        let mut w = BitWriter::new();
        for &v in values {
            put_gamma(&mut w, v as u64 + 1);
        }
        finish(w, out);
    }

    fn decode(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) {
        let words = reader_words(bytes);
        let mut r = BitReader::new(&words);
        for _ in 0..n {
            out.push((get_gamma(&mut r) - 1) as u32);
        }
    }
}

impl IntCodec for EliasDelta {
    fn name(&self) -> &'static str {
        "elias-delta"
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        let mut w = BitWriter::new();
        for &v in values {
            put_delta(&mut w, v as u64 + 1);
        }
        finish(w, out);
    }

    fn decode(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) {
        let words = reader_words(bytes);
        let mut r = BitReader::new(&words);
        for _ in 0..n {
            out.push((get_delta(&mut r) - 1) as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_roundtrip() {
        let values = vec![0u32, 1, 2, 3, 7, 8, 100, 1000, u32::MAX - 1, u32::MAX];
        let bytes = EliasGamma.encode_vec(&values);
        assert_eq!(EliasGamma.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn delta_roundtrip() {
        let values = vec![0u32, 1, 2, 3, 7, 8, 100, 1000, u32::MAX - 1, u32::MAX];
        let bytes = EliasDelta.encode_vec(&values);
        assert_eq!(EliasDelta.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn gamma_code_lengths() {
        // value v stored as v+1: 0 -> "1" (1 bit), 1 -> "010"+ (3 bits).
        let mut w = BitWriter::new();
        put_gamma(&mut w, 1);
        assert_eq!(w.len_bits(), 1);
        let mut w = BitWriter::new();
        put_gamma(&mut w, 2);
        assert_eq!(w.len_bits(), 3);
        let mut w = BitWriter::new();
        put_gamma(&mut w, 4);
        assert_eq!(w.len_bits(), 5);
    }

    #[test]
    fn delta_beats_gamma_on_large_values() {
        let values: Vec<u32> = (0..1000).map(|i| 1_000_000 + i).collect();
        let g = EliasGamma.encode_vec(&values).len();
        let d = EliasDelta.encode_vec(&values).len();
        assert!(d < g, "delta {d} vs gamma {g}");
    }

    #[test]
    fn small_gaps_code_compactly() {
        let values = vec![0u32; 8000];
        // All-zero gaps: 1 bit each under gamma.
        assert!(EliasGamma.encode_vec(&values).len() <= 8000 / 8 + 8);
    }
}
