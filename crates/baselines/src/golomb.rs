//! Golomb and Rice coding — the classical storage-optimal codes for
//! inverted-list gaps under a Bernoulli model (Witten, Moffat & Bell,
//! *Managing Gigabytes*).
//!
//! A gap `g >= 0` is coded as quotient `g / M` in unary plus remainder
//! `g % M` in truncated binary. With term frequency `p`, the optimal
//! parameter is `M ≈ 0.69 / p` (i.e. 0.69 × mean gap) — the "local
//! Bernoulli model" the paper cites as the compression-ratio-optimal but
//! slow comparison point.

use crate::traits::{le, IntCodec};
use scc_bitpack::{BitReader, BitWriter};

/// Golomb codec with parameter chosen from the mean of the input
/// (`M = max(1, ceil(0.69 * mean))`), stored in the header.
#[derive(Debug, Default, Clone, Copy)]
pub struct Golomb;

/// Rice codec: Golomb restricted to power-of-two `M = 2^k`, so the
/// remainder is a plain `k`-bit field.
#[derive(Debug, Default, Clone, Copy)]
pub struct Rice;

fn golomb_m(values: &[u32]) -> u32 {
    if values.is_empty() {
        return 1;
    }
    let sum: u64 = values.iter().map(|&v| v as u64).sum();
    let mean = sum as f64 / values.len() as f64;
    ((0.69 * mean).ceil() as u32).max(1)
}

fn golomb_b(m: u32) -> u32 {
    // b = ceil(log2 m), with m >= 2 here.
    32 - (m - 1).leading_zeros()
}

fn encode_golomb(values: &[u32], m: u32, w: &mut BitWriter) {
    // Truncated binary: with b = ceil(log2 m), remainders < 2^b - m use
    // b-1 bits; the rest use b bits. The split is done high-bits-first so
    // the decoder can decide after b-1 bits regardless of stream bit
    // order: long codes carry a (b-1)-bit prefix >= cutoff.
    if m == 1 {
        for &v in values {
            w.put_unary(v as u64);
        }
        return;
    }
    let b = golomb_b(m);
    let cutoff = ((1u64 << b) - m as u64) as u32; // b can be 32
    for &v in values {
        let q = (v / m) as u64;
        let r = v % m;
        w.put_unary(q);
        if r < cutoff {
            w.put(r as u64, b - 1);
        } else {
            let x = r + cutoff; // in [2*cutoff, 2^b)
            w.put((x >> 1) as u64, b - 1);
            w.put((x & 1) as u64, 1);
        }
    }
}

fn decode_golomb(r: &mut BitReader<'_>, m: u32, n: usize, out: &mut Vec<u32>) {
    if m == 1 {
        for _ in 0..n {
            out.push(r.get_unary() as u32);
        }
        return;
    }
    let b = golomb_b(m);
    let cutoff = ((1u64 << b) - m as u64) as u32; // b can be 32
    for _ in 0..n {
        let q = r.get_unary() as u32;
        let hi = r.get(b - 1) as u32;
        let rem = if hi < cutoff { hi } else { ((hi << 1) | r.get(1) as u32) - cutoff };
        out.push(q * m + rem);
    }
}

fn words_to_bytes(words: &[u64], out: &mut Vec<u8>) {
    for &w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn bytes_to_words(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks(8)
        .map(|c| {
            let mut buf = [0u8; 8];
            buf[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(buf)
        })
        .collect()
}

impl IntCodec for Golomb {
    fn name(&self) -> &'static str {
        "golomb"
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        let m = golomb_m(values);
        le::put_u32(out, m);
        let mut w = BitWriter::new();
        encode_golomb(values, m, &mut w);
        words_to_bytes(&w.into_words(), out);
    }

    fn decode(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) {
        if n == 0 {
            return;
        }
        let m = le::get_u32(bytes, 0);
        let words = bytes_to_words(&bytes[4..]);
        let mut r = BitReader::new(&words);
        decode_golomb(&mut r, m, n, out);
    }
}

impl IntCodec for Rice {
    fn name(&self) -> &'static str {
        "rice"
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        // k = ceil(log2 m), capped at 32 (k = 32 degenerates to plain
        // 32-bit fields, which is still a valid code).
        let m = golomb_m(values);
        let k = if m > 1 << 31 { 32 } else { m.next_power_of_two().trailing_zeros() };
        out.push(k as u8);
        let mut w = BitWriter::new();
        for &v in values {
            w.put_unary((v as u64) >> k);
            w.put(v as u64, k);
        }
        words_to_bytes(&w.into_words(), out);
    }

    fn decode(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) {
        if n == 0 {
            return;
        }
        let k = bytes[0] as u32;
        let words = bytes_to_words(&bytes[1..]);
        let mut r = BitReader::new(&words);
        for _ in 0..n {
            let q = r.get_unary();
            let rem = r.get(k);
            out.push(((q << k) | rem) as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometric_gaps(n: usize, mean: u32) -> Vec<u32> {
        // Deterministic pseudo-geometric gaps.
        let mut x = 0x2545F491u64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % (2 * mean as u64)) as u32
            })
            .collect()
    }

    #[test]
    fn golomb_roundtrip() {
        let values = geometric_gaps(5000, 20);
        let bytes = Golomb.encode_vec(&values);
        assert_eq!(Golomb.decode_vec(&bytes, values.len()), values);
        // Mean 20 gaps should code in ~6-8 bits, far below 32.
        assert!(bytes.len() < 5000 * 10 / 8);
    }

    #[test]
    fn rice_roundtrip() {
        let values = geometric_gaps(5000, 100);
        let bytes = Rice.encode_vec(&values);
        assert_eq!(Rice.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn truncated_binary_all_remainders() {
        // Non-power-of-two M exercises both remainder widths.
        let values: Vec<u32> = (0..200u32).collect();
        let mut w = BitWriter::new();
        encode_golomb(&values, 13, &mut w);
        let words = w.into_words();
        let mut out = Vec::new();
        decode_golomb(&mut BitReader::new(&words), 13, values.len(), &mut out);
        assert_eq!(out, values);
    }

    #[test]
    fn m_equal_one_is_pure_unary() {
        let values = vec![0u32, 1, 2, 3, 0, 5];
        let mut w = BitWriter::new();
        encode_golomb(&values, 1, &mut w);
        let words = w.into_words();
        let mut out = Vec::new();
        decode_golomb(&mut BitReader::new(&words), 1, values.len(), &mut out);
        assert_eq!(out, values);
    }

    #[test]
    fn huge_parameter_at_the_top_of_the_domain() {
        // m > 2^31 forces b = 32; the cutoff computation must not
        // overflow (regression test for a shift-left overflow).
        let values = vec![u32::MAX, u32::MAX - 1, 0, 1 << 31];
        for codec in [&Golomb as &dyn IntCodec, &Rice] {
            let bytes = codec.encode_vec(&values);
            assert_eq!(codec.decode_vec(&bytes, values.len()), values, "{}", codec.name());
        }
    }

    #[test]
    fn zeros_and_large_values() {
        let values = vec![0u32, 0, 1_000_000, 0, 123_456_789];
        for codec in [&Golomb as &dyn IntCodec, &Rice] {
            let bytes = codec.encode_vec(&values);
            assert_eq!(codec.decode_vec(&bytes, values.len()), values, "{}", codec.name());
        }
    }
}
