//! LZRW1 (Ross Williams, DCC '91) — the fast Lempel-Ziv variant used by
//! Sybase IQ for page compression (§2.1).
//!
//! A 4096-entry hash table with *no collision list* maps 3-byte contexts
//! to their last position; groups of 16 items share a 16-bit control word
//! whose bits distinguish literals from copies. A copy is two bytes:
//! 12-bit offset (1..=4095) and 4-bit length (3..=18). Exactly the
//! simplifications that make it "an extremely fast Ziv-Lempel" — and still
//! an order of magnitude slower to decompress than PFOR.

use crate::traits::{le, ByteCodec};

const HASH_BITS: u32 = 12;
const MAX_OFFSET: usize = 4095;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;

#[inline]
fn hash(p: &[u8]) -> usize {
    // Williams' multiplicative hash over the next three bytes.
    let v = ((p[0] as u32) << 8) ^ ((p[1] as u32) << 4) ^ (p[2] as u32);
    ((40543u32.wrapping_mul(v)) >> 4) as usize & ((1 << HASH_BITS) - 1)
}

/// LZRW1 codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct Lzrw1;

impl ByteCodec for Lzrw1 {
    fn name(&self) -> &'static str {
        "lzrw1"
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        le::put_u32(out, input.len() as u32);
        let mut table = vec![usize::MAX; 1 << HASH_BITS];
        let mut pos = 0usize;
        let mut items: Vec<u8> = Vec::with_capacity(34);
        let mut control: u16 = 0;
        let mut nitems = 0u32;
        while pos < input.len() {
            let mut emitted_copy = false;
            if pos + MIN_MATCH <= input.len() {
                let h = hash(&input[pos..]);
                let cand = table[h];
                table[h] = pos;
                if cand != usize::MAX && pos - cand <= MAX_OFFSET && cand < pos {
                    let limit = MAX_MATCH.min(input.len() - pos);
                    let mut len = 0usize;
                    while len < limit && input[cand + len] == input[pos + len] {
                        len += 1;
                    }
                    if len >= MIN_MATCH {
                        let offset = pos - cand;
                        items.push((((offset >> 8) as u8) << 4) | ((len - MIN_MATCH) as u8));
                        items.push((offset & 0xff) as u8);
                        control |= 1 << nitems;
                        pos += len;
                        emitted_copy = true;
                    }
                }
            }
            if !emitted_copy {
                items.push(input[pos]);
                pos += 1;
            }
            nitems += 1;
            if nitems == 16 {
                out.extend_from_slice(&control.to_le_bytes());
                out.extend_from_slice(&items);
                items.clear();
                control = 0;
                nitems = 0;
            }
        }
        if nitems > 0 {
            out.extend_from_slice(&control.to_le_bytes());
            out.extend_from_slice(&items);
        }
    }

    fn decompress(&self, input: &[u8], expected_len: usize, out: &mut Vec<u8>) {
        let n = le::get_u32(input, 0) as usize;
        debug_assert_eq!(n, expected_len);
        let start = out.len();
        out.reserve(n);
        let mut pos = 4usize;
        while out.len() - start < n {
            let control = u16::from_le_bytes(input[pos..pos + 2].try_into().unwrap());
            pos += 2;
            for bit in 0..16 {
                if out.len() - start >= n {
                    break;
                }
                if control & (1 << bit) != 0 {
                    let b0 = input[pos] as usize;
                    let b1 = input[pos + 1] as usize;
                    pos += 2;
                    let offset = ((b0 >> 4) << 8) | b1;
                    let len = (b0 & 0xf) + MIN_MATCH;
                    let from = out.len() - offset;
                    // Overlapping copies are legal; copy byte-wise.
                    for k in 0..len {
                        let byte = out[from + k];
                        out.push(byte);
                    }
                } else {
                    out.push(input[pos]);
                    pos += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let compressed = Lzrw1.compress_vec(data);
        assert_eq!(Lzrw1.decompress_vec(&compressed, data.len()), data);
        compressed.len()
    }

    #[test]
    fn repetitive_text_compresses() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(100);
        let size = roundtrip(&data);
        assert!(size < data.len() / 2, "{size} vs {}", data.len());
    }

    #[test]
    fn incompressible_data_expands_gracefully() {
        let mut x = 123456789u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 56) as u8
            })
            .collect();
        let size = roundtrip(&data);
        // Worst case adds 2 control bytes per 16 literals + header.
        assert!(size <= data.len() + data.len() / 8 + 8);
    }

    #[test]
    fn overlapping_matches() {
        // 'aaaa...' forces offset-1 overlapping copies.
        let data = vec![b'a'; 5000];
        let size = roundtrip(&data);
        assert!(size < 1000);
    }

    #[test]
    fn binary_columns() {
        // Little-endian u32 keys: strided repetition typical of column data.
        let mut data = Vec::new();
        for i in 0u32..5000 {
            data.extend_from_slice(&(i / 4).to_le_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    fn tiny_inputs() {
        for n in 0..20 {
            let data: Vec<u8> = (0..n).map(|i| i as u8).collect();
            roundtrip(&data);
        }
    }
}
