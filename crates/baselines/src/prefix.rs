//! Prefix Suppression (Westmann et al., SIGMOD Rec. '00).
//!
//! Eliminates common (zero) prefixes per value: each value stores a 2-bit
//! byte-length tag (1, 2, 3 or 4 significant bytes) in a tag section plus
//! only its significant bytes. This is the *variable*-width cousin of FOR
//! ("PS can be used ... if actual values tend to be significantly smaller
//! than the largest value of the type domain", §2.1).

use crate::traits::IntCodec;

/// Zero-prefix suppression codec: 2-bit length tags + significant bytes.
#[derive(Debug, Default, Clone, Copy)]
pub struct PrefixSuppression;

#[inline]
fn sig_bytes(v: u32) -> usize {
    // 1..=4 significant little-endian bytes (0 encodes in 1 byte).
    (32 - (v | 1).leading_zeros() as usize).div_ceil(8)
}

impl IntCodec for PrefixSuppression {
    fn name(&self) -> &'static str {
        "PS"
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        // Tag section first: 2 bits per value, packed 4 per byte.
        let tag_bytes = values.len().div_ceil(4);
        let tag_start = out.len();
        out.resize(tag_start + tag_bytes, 0);
        let mut data = Vec::with_capacity(values.len());
        for (i, &v) in values.iter().enumerate() {
            let nb = sig_bytes(v);
            out[tag_start + i / 4] |= ((nb - 1) as u8) << ((i % 4) * 2);
            data.extend_from_slice(&v.to_le_bytes()[..nb]);
        }
        out.extend_from_slice(&data);
    }

    fn decode(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) {
        let tag_bytes = n.div_ceil(4);
        let mut pos = tag_bytes;
        for i in 0..n {
            let nb = ((bytes[i / 4] >> ((i % 4) * 2)) & 3) as usize + 1;
            let mut buf = [0u8; 4];
            buf[..nb].copy_from_slice(&bytes[pos..pos + nb]);
            pos += nb;
            out.push(u32::from_le_bytes(buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_magnitudes() {
        let values = vec![0u32, 255, 256, 65_535, 65_536, 16_777_215, 16_777_216, u32::MAX];
        let codec = PrefixSuppression;
        let bytes = codec.encode_vec(&values);
        assert_eq!(codec.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn small_values_compress_to_quarter() {
        let values: Vec<u32> = (0..1000).map(|i| i % 200).collect();
        let bytes = PrefixSuppression.encode_vec(&values);
        // 1 byte data + 0.25 byte tag per value.
        assert!(bytes.len() <= 1000 + 250 + 4);
        assert_eq!(PrefixSuppression.decode_vec(&bytes, 1000), values);
    }

    #[test]
    fn sig_bytes_boundaries() {
        assert_eq!(sig_bytes(0), 1);
        assert_eq!(sig_bytes(255), 1);
        assert_eq!(sig_bytes(256), 2);
        assert_eq!(sig_bytes(65_535), 2);
        assert_eq!(sig_bytes(65_536), 3);
        assert_eq!(sig_bytes(u32::MAX), 4);
    }

    #[test]
    fn non_multiple_of_four_lengths() {
        for n in [1usize, 2, 3, 5, 7, 17] {
            let values: Vec<u32> = (0..n as u32).map(|i| i * 1000).collect();
            let bytes = PrefixSuppression.encode_vec(&values);
            assert_eq!(PrefixSuppression.decode_vec(&bytes, n), values);
        }
    }
}
