//! Canonical, length-limited Huffman coding shared by the semi-static
//! Huffman ("shuff"), deflate-like and BWT block codecs.
//!
//! Code lengths come from the package-merge algorithm (optimal under a
//! length limit); codes are canonical and bit-reversed so they can be
//! emitted LSB-first through [`scc_bitpack::BitWriter`]. Decoding uses a
//! single-level lookup table of `2^max_len` entries.

use scc_bitpack::{BitReader, BitWriter};

/// Maximum code length supported by the table-driven decoder.
pub const MAX_CODE_LEN: u32 = 12;

/// Computes optimal length-limited code lengths for `freqs` (zero
/// frequencies get length 0 = unused). Uses package-merge.
///
/// # Panics
/// Panics if more than `2^max_len` symbols have nonzero frequency.
pub fn code_lengths(freqs: &[u64], max_len: u32) -> Vec<u32> {
    let mut lengths = vec![0u32; freqs.len()];
    let mut items: Vec<(u64, usize)> =
        freqs.iter().enumerate().filter(|&(_, &f)| f > 0).map(|(s, &f)| (f, s)).collect();
    match items.len() {
        0 => return lengths,
        1 => {
            lengths[items[0].1] = 1;
            return lengths;
        }
        _ => {}
    }
    assert!(
        items.len() <= 1usize << max_len,
        "{} symbols cannot fit in {max_len}-bit codes",
        items.len()
    );
    items.sort_unstable();
    // Package-merge. Packages carry the multiset of symbols they contain.
    let singletons: Vec<(u64, Vec<usize>)> = items.iter().map(|&(w, s)| (w, vec![s])).collect();
    let mut prev: Vec<(u64, Vec<usize>)> = Vec::new();
    for _level in 0..max_len {
        let mut pairs: Vec<(u64, Vec<usize>)> = Vec::with_capacity(prev.len() / 2);
        let mut it = prev.chunks_exact(2);
        for chunk in &mut it {
            let mut syms = chunk[0].1.clone();
            syms.extend_from_slice(&chunk[1].1);
            pairs.push((chunk[0].0 + chunk[1].0, syms));
        }
        // Merge singletons and pairs, both sorted by weight.
        let mut cur = Vec::with_capacity(singletons.len() + pairs.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < singletons.len() || j < pairs.len() {
            let take_single =
                j >= pairs.len() || (i < singletons.len() && singletons[i].0 <= pairs[j].0);
            if take_single {
                cur.push(singletons[i].clone());
                i += 1;
            } else {
                cur.push(std::mem::take(&mut pairs[j]));
                j += 1;
            }
        }
        prev = cur;
    }
    // The 2(n-1) cheapest packages define the code lengths.
    for pkg in prev.iter().take(2 * (items.len() - 1)) {
        for &s in &pkg.1 {
            lengths[s] += 1;
        }
    }
    lengths
}

/// Reverses the low `len` bits of `code`.
#[inline]
fn reverse_bits(code: u32, len: u32) -> u32 {
    if len == 0 {
        0
    } else {
        code.reverse_bits() >> (32 - len)
    }
}

/// Canonical encoder: bit-reversed codes ready for LSB-first emission.
#[derive(Debug, Clone)]
pub struct Encoder {
    /// Bit-reversed canonical code per symbol.
    codes: Vec<u32>,
    /// Code length per symbol (0 = unused).
    pub lens: Vec<u32>,
}

impl Encoder {
    /// Builds the canonical code from lengths.
    pub fn from_lengths(lens: &[u32]) -> Self {
        let max = lens.iter().copied().max().unwrap_or(0);
        debug_assert!(max <= MAX_CODE_LEN);
        // Canonical assignment: symbols sorted by (length, index).
        let mut next_code = vec![0u32; (max + 2) as usize];
        let mut bl_count = vec![0u32; (max + 2) as usize];
        for &l in lens {
            bl_count[l as usize] += 1;
        }
        bl_count[0] = 0;
        let mut code = 0u32;
        for l in 1..=max as usize {
            code = (code + bl_count[l - 1]) << 1;
            next_code[l] = code;
        }
        let mut codes = vec![0u32; lens.len()];
        for (s, &l) in lens.iter().enumerate() {
            if l > 0 {
                codes[s] = reverse_bits(next_code[l as usize], l);
                next_code[l as usize] += 1;
            }
        }
        Self { codes, lens: lens.to_vec() }
    }

    /// Emits the code for `sym`.
    #[inline]
    pub fn put(&self, w: &mut BitWriter, sym: usize) {
        debug_assert!(self.lens[sym] > 0, "symbol {sym} has no code");
        w.put(self.codes[sym] as u64, self.lens[sym]);
    }
}

/// Table-driven canonical decoder.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `lut[low_bits] = (symbol << 4) | len`.
    lut: Vec<u32>,
    max_len: u32,
}

impl Decoder {
    /// Builds the decode table from lengths.
    pub fn from_lengths(lens: &[u32]) -> Self {
        let max = lens.iter().copied().max().unwrap_or(0).max(1);
        debug_assert!(max <= MAX_CODE_LEN);
        let enc = Encoder::from_lengths(lens);
        let mut lut = vec![0u32; 1 << max];
        for (s, &l) in lens.iter().enumerate() {
            if l == 0 {
                continue;
            }
            let code = enc.codes[s];
            let step = 1usize << l;
            let mut e = code as usize;
            while e < lut.len() {
                lut[e] = ((s as u32) << 4) | l;
                e += step;
            }
        }
        Self { lut, max_len: max }
    }

    /// Decodes one symbol. The stream must be padded with at least
    /// [`MAX_CODE_LEN`] zero bits past the last code (see
    /// [`pad_for_decode`]).
    #[inline]
    pub fn get(&self, r: &mut BitReader<'_>) -> usize {
        let pos = r.position();
        let peek = r.get(self.max_len) as usize;
        let e = self.lut[peek];
        let len = e & 0xf;
        debug_assert!(len > 0, "invalid code in stream");
        r.seek(pos + len as u64);
        (e >> 4) as usize
    }
}

/// Pads the writer so table-driven decoding can safely over-read.
pub fn pad_for_decode(w: &mut BitWriter) {
    w.put(0, MAX_CODE_LEN.max(16));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(freqs: &[u64], stream: &[usize]) {
        let lens = code_lengths(freqs, MAX_CODE_LEN);
        let enc = Encoder::from_lengths(&lens);
        let dec = Decoder::from_lengths(&lens);
        let mut w = BitWriter::new();
        for &s in stream {
            enc.put(&mut w, s);
        }
        pad_for_decode(&mut w);
        let words = w.into_words();
        let mut r = BitReader::new(&words);
        for &s in stream {
            assert_eq!(dec.get(&mut r), s);
        }
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs: Vec<u64> = (1..=100).map(|i| i * i).collect();
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        let kraft: f64 = lens.iter().filter(|&&l| l > 0).map(|&l| (2.0f64).powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft sum {kraft}");
        // A complete code should reach exactly 1.
        assert!((kraft - 1.0).abs() < 1e-9);
    }

    #[test]
    fn respects_length_limit() {
        // Exponential frequencies would produce very long codes unlimited.
        let freqs: Vec<u64> = (0..40).map(|i| 1u64 << i.min(60)).collect();
        let lens = code_lengths(&freqs, 12);
        assert!(lens.iter().all(|&l| l <= 12));
        assert!(lens.iter().all(|&l| l > 0));
    }

    #[test]
    fn frequent_symbols_get_short_codes() {
        let freqs = vec![1000u64, 1, 1, 1, 1, 1, 1, 1];
        let lens = code_lengths(&freqs, 12);
        assert!(lens[0] < lens[7]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let freqs = vec![50u64, 30, 10, 5, 3, 1, 1];
        let stream: Vec<usize> =
            (0..1000).map(|i| [0, 0, 0, 1, 1, 2, 3, 4, 5, 6][i % 10]).collect();
        roundtrip(&freqs, &stream);
    }

    #[test]
    fn single_symbol_alphabet() {
        roundtrip(&[42, 0, 0], &[0usize; 100]);
    }

    #[test]
    fn two_symbols() {
        roundtrip(&[5, 7], &[0, 1, 1, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn skipped_symbols_get_no_code() {
        let lens = code_lengths(&[10, 0, 20, 0, 5], MAX_CODE_LEN);
        assert_eq!(lens[1], 0);
        assert_eq!(lens[3], 0);
        assert!(lens[0] > 0 && lens[2] > 0 && lens[4] > 0);
    }

    #[test]
    fn empty_alphabet() {
        assert!(code_lengths(&[0, 0], MAX_CODE_LEN).iter().all(|&l| l == 0));
    }
}
