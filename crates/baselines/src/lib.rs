//! Baseline compressors the paper compares against, re-implemented from
//! scratch.
//!
//! Two codec families:
//!
//! * **Integer codecs** ([`IntCodec`]) — operate on `u32` arrays, as used
//!   for column values and inverted-list d-gaps: classic FOR, prefix
//!   suppression / variable byte, classic dictionary, Golomb/Rice, Elias
//!   gamma/delta, Simple-9 and carryover-12 word-aligned codes, and a
//!   semi-static Huffman coder ("shuff" class).
//! * **Byte codecs** ([`ByteCodec`]) — operate on raw byte streams, the
//!   general-purpose competitors of Figure 2: LZRW1 (Williams '91,
//!   Sybase IQ's page codec), an LZSS with fast hashing (the `lzop`
//!   class), an LZ77 + canonical-Huffman coder (the `zlib` class) and a
//!   BWT + MTF + RLE + Huffman block coder (the `bzip2` class).
//!
//! The general-purpose codecs are honest reimplementations, not bindings:
//! the paper's claim under test is the order-of-magnitude bandwidth gap
//! between this entire family and the patched schemes, which survives
//! implementation details (see DESIGN.md §4).

#![warn(missing_docs)]

pub mod bwt;
pub mod carryover12;
pub mod classic_dict;
pub mod classic_for;
pub mod deflate_like;
pub mod elias;
pub mod golomb;
pub mod huffcode;
pub mod huffman;
pub mod lzrw1;
pub mod lzss;
pub mod lzw;
pub mod prefix;
pub mod rle;
pub mod simple9;
pub mod traits;
pub mod varint;

pub use traits::{ByteCodec, IntCodec};
