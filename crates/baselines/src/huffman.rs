//! Semi-static Huffman coding of integers — the "shuff" comparison point
//! of Table 4.
//!
//! Like the canonical-Huffman word coders used for inverted files, values
//! are bucketed by bit length (33 buckets for `u32`), the bucket symbols
//! are Huffman-coded from their measured frequencies (semi-static: one
//! counting pass, one coding pass, table in the header), and the value's
//! remaining `len-1` mantissa bits follow raw.

use crate::huffcode::{code_lengths, pad_for_decode, Decoder, Encoder, MAX_CODE_LEN};
use crate::traits::{le, IntCodec};
use scc_bitpack::{BitReader, BitWriter};

/// Semi-static Huffman codec over bit-length buckets.
#[derive(Debug, Default, Clone, Copy)]
pub struct ShuffHuffman;

/// Bucket of `v`: number of significant bits of `v + 1` (1..=33, stored
/// 0-based). Coding `v + 1` makes the zero value legal.
#[inline]
fn bucket(v: u32) -> u32 {
    64 - (v as u64 + 1).leading_zeros() - 1
}

impl IntCodec for ShuffHuffman {
    fn name(&self) -> &'static str {
        "shuff"
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        // Pass 1: bucket frequencies.
        let mut freqs = [0u64; 33];
        for &v in values {
            freqs[bucket(v) as usize] += 1;
        }
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        // Header: 33 code lengths, 4 bits each (17 bytes), then the stream.
        let mut packed_lens = [0u8; 17];
        for (i, &l) in lens.iter().enumerate() {
            packed_lens[i / 2] |= (l as u8) << ((i % 2) * 4);
        }
        out.extend_from_slice(&packed_lens);
        let enc = Encoder::from_lengths(&lens);
        let mut w = BitWriter::new();
        for &v in values {
            let b = bucket(v);
            enc.put(&mut w, b as usize);
            // Mantissa: the low b bits of v+1 (the leading 1 is implied).
            w.put(v as u64 + 1, b);
        }
        pad_for_decode(&mut w);
        let words = w.into_words();
        le::put_u32(out, words.len() as u32);
        for word in words {
            out.extend_from_slice(&word.to_le_bytes());
        }
    }

    fn decode(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) {
        if n == 0 {
            return;
        }
        let mut lens = vec![0u32; 33];
        for (i, l) in lens.iter_mut().enumerate() {
            *l = ((bytes[i / 2] >> ((i % 2) * 4)) & 0xf) as u32;
        }
        let dec = Decoder::from_lengths(&lens);
        let n_words = le::get_u32(bytes, 17) as usize;
        let words: Vec<u64> = bytes[21..21 + n_words * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut r = BitReader::new(&words);
        for _ in 0..n {
            let b = dec.get(&mut r) as u32;
            let mantissa = r.get(b);
            out.push((((1u64 << b) | mantissa) - 1) as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket(0), 0); // v+1 = 1 -> 1 bit -> bucket 0
        assert_eq!(bucket(1), 1); // 2 -> bucket 1
        assert_eq!(bucket(2), 1); // 3 -> bucket 1
        assert_eq!(bucket(3), 2); // 4 -> bucket 2
        assert_eq!(bucket(u32::MAX), 32);
    }

    #[test]
    fn roundtrip_gap_like_data() {
        let mut x = 0x9E3779B9u64;
        let values: Vec<u32> = (0..30_000)
            .map(|_| {
                x = x.wrapping_mul(0x5851F42D4C957F2D).wrapping_add(1);
                let r = (x >> 40) as u32;
                if r.is_multiple_of(64) {
                    r % 100_000
                } else {
                    r % 12
                }
            })
            .collect();
        let bytes = ShuffHuffman.encode_vec(&values);
        assert_eq!(ShuffHuffman.decode_vec(&bytes, values.len()), values);
        // Skewed small gaps: well under 8 bits/value.
        assert!(bytes.len() < 30_000);
    }

    #[test]
    fn roundtrip_extremes() {
        let values = vec![0u32, u32::MAX, 0, 1, u32::MAX - 1, 2];
        let bytes = ShuffHuffman.encode_vec(&values);
        assert_eq!(ShuffHuffman.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn constant_stream_codes_in_about_one_bit() {
        let values = vec![3u32; 10_000];
        let bytes = ShuffHuffman.encode_vec(&values);
        // bucket code 1 bit + 2 mantissa bits = 3 bits/value + header.
        assert!(bytes.len() <= 10_000 * 3 / 8 + 64, "{} bytes", bytes.len());
        assert_eq!(ShuffHuffman.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn empty() {
        let bytes = ShuffHuffman.encode_vec(&[]);
        assert!(ShuffHuffman.decode_vec(&bytes, 0).is_empty());
    }
}
