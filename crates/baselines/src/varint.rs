//! Variable-byte (LEB128) integer coding — the classic byte-aligned code
//! used by early inverted-file systems.

use crate::traits::IntCodec;

/// LEB128 variable-byte codec: 7 data bits per byte, high bit = continue.
#[derive(Debug, Default, Clone, Copy)]
pub struct VarInt;

impl IntCodec for VarInt {
    fn name(&self) -> &'static str {
        "vbyte"
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        for &v in values {
            let mut v = v;
            loop {
                let byte = (v & 0x7f) as u8;
                v >>= 7;
                if v == 0 {
                    out.push(byte);
                    break;
                }
                out.push(byte | 0x80);
            }
        }
    }

    fn decode(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) {
        let mut pos = 0usize;
        for _ in 0..n {
            let mut v = 0u32;
            let mut shift = 0u32;
            loop {
                let byte = bytes[pos];
                pos += 1;
                v |= ((byte & 0x7f) as u32) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            out.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        let values = vec![0u32, 1, 127, 128, 16_383, 16_384, u32::MAX, 42];
        let codec = VarInt;
        let bytes = codec.encode_vec(&values);
        assert_eq!(codec.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn small_values_take_one_byte() {
        let values: Vec<u32> = (0..128).collect();
        assert_eq!(VarInt.encode_vec(&values).len(), 128);
    }

    #[test]
    fn max_value_takes_five_bytes() {
        assert_eq!(VarInt.encode_vec(&[u32::MAX]).len(), 5);
    }

    #[test]
    fn empty() {
        assert!(VarInt.encode_vec(&[]).is_empty());
        assert!(VarInt.decode_vec(&[], 0).is_empty());
    }
}
