//! LZW (Welch 1984) — the "common Lempel-Ziv compression" the paper
//! positions LZRW1 against (§2.1: "LZRW1 is a fast version of common LZW
//! ... typically achieving a reduced compression ratio when compared to
//! LZW").
//!
//! Classic variable-width implementation: codes start at 9 bits and grow
//! to 16; the table resets when full. Decoding reconstructs the table in
//! lockstep, including the `cScSc` self-referential case.

use crate::traits::{le, ByteCodec};
use scc_bitpack::{BitReader, BitWriter};
use std::collections::HashMap;

const MIN_WIDTH: u32 = 9;
const MAX_WIDTH: u32 = 16;
const RESET_AT: usize = 1 << MAX_WIDTH;

/// LZW codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct Lzw;

fn fresh_encode_table() -> HashMap<Vec<u8>, u32> {
    (0u32..256).map(|b| (vec![b as u8], b)).collect()
}

impl ByteCodec for Lzw {
    fn name(&self) -> &'static str {
        "lzw"
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        le::put_u32(out, input.len() as u32);
        let mut w = BitWriter::new();
        let mut table = fresh_encode_table();
        let mut width = MIN_WIDTH;
        let mut seq: Vec<u8> = Vec::new();
        for &byte in input {
            seq.push(byte);
            if !table.contains_key(&seq) {
                // Emit the code for seq minus the last byte, add seq.
                let prefix = &seq[..seq.len() - 1];
                w.put(table[prefix] as u64, width);
                let next_code = table.len() as u32;
                table.insert(std::mem::take(&mut seq), next_code);
                seq.push(byte);
                // Grow the code width when the next code needs it.
                if table.len() >= (1usize << width) && width < MAX_WIDTH {
                    width += 1;
                }
                if table.len() >= RESET_AT {
                    table = fresh_encode_table();
                    width = MIN_WIDTH;
                }
            }
        }
        if !seq.is_empty() {
            w.put(table[&seq] as u64, width);
        }
        for word in w.into_words() {
            out.extend_from_slice(&word.to_le_bytes());
        }
    }

    fn decompress(&self, input: &[u8], expected_len: usize, out: &mut Vec<u8>) {
        let n = le::get_u32(input, 0) as usize;
        debug_assert_eq!(n, expected_len);
        if n == 0 {
            return;
        }
        let words: Vec<u64> = input[4..]
            .chunks(8)
            .map(|c| {
                let mut buf = [0u8; 8];
                buf[..c.len()].copy_from_slice(c);
                u64::from_le_bytes(buf)
            })
            .collect();
        let mut r = BitReader::new(&words);
        let mut table: Vec<Vec<u8>> = (0u16..256).map(|b| vec![b as u8]).collect();
        let mut width = MIN_WIDTH;
        let start = out.len();
        let mut prev: Option<u32> = None;
        while out.len() - start < n {
            let code = r.get(width) as u32;
            let entry: Vec<u8> = if (code as usize) < table.len() {
                table[code as usize].clone()
            } else {
                // The cScSc case: code not yet in the table — it must be
                // prev + first byte of prev.
                let p = &table[prev.expect("self-referential code cannot be first") as usize];
                let mut e = p.clone();
                e.push(p[0]);
                e
            };
            out.extend_from_slice(&entry);
            if let Some(p) = prev {
                let mut new = table[p as usize].clone();
                new.push(entry[0]);
                table.push(new);
                // Mirror the encoder's width growth: it grows when the
                // table reaches 2^width *before* inserting the next code.
                if table.len() + 1 >= (1usize << width) && width < MAX_WIDTH {
                    width += 1;
                }
                if table.len() + 1 >= RESET_AT {
                    table = (0u16..256).map(|b| vec![b as u8]).collect();
                    width = MIN_WIDTH;
                    prev = None;
                    continue;
                }
            }
            prev = Some(code);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let compressed = Lzw.compress_vec(data);
        assert_eq!(Lzw.decompress_vec(&compressed, data.len()), data, "n={}", data.len());
        compressed.len()
    }

    #[test]
    fn classic_tobeornottobe() {
        let data = b"TOBEORNOTTOBEORTOBEORNOT".repeat(50);
        let size = roundtrip(&data);
        assert!(size < data.len() / 2);
    }

    #[test]
    fn self_referential_cscsc_case() {
        // 'aaaa...' exercises the code-not-yet-in-table branch.
        roundtrip(&vec![b'a'; 1000]);
        roundtrip(b"abababababababab");
    }

    #[test]
    fn all_bytes_and_binary() {
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        roundtrip(&data);
    }

    #[test]
    fn random_data_roundtrips() {
        let mut x = 88172645463325252u64;
        let data: Vec<u8> = (0..20_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_input_crosses_table_reset() {
        // Enough distinct contexts to fill the 16-bit table and reset.
        let mut data = Vec::new();
        let mut x = 7u64;
        for _ in 0..400_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            data.push((x >> 33) as u8);
        }
        roundtrip(&data);
    }

    #[test]
    fn beats_lzrw1_on_ratio_for_text() {
        use crate::lzrw1::Lzrw1;
        let data = b"the quick brown fox jumps over the lazy dog and the cat ".repeat(300);
        let lzw = Lzw.compress_vec(&data).len();
        let lzrw1 = Lzrw1.compress_vec(&data).len();
        assert!(lzw < lzrw1, "lzw {lzw} vs lzrw1 {lzrw1}");
    }

    #[test]
    fn tiny_inputs() {
        for n in 0..8 {
            roundtrip(&vec![b'q'; n]);
        }
    }
}
