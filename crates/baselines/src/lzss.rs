//! LZSS with a fast single-probe hash — our stand-in for the `lzop`/LZO
//! class of byte compressors (see DESIGN.md §4).
//!
//! Compared to [`crate::lzrw1`]: a 64 KiB window, 4-byte minimum matches
//! found through a 16-bit hash of the next four bytes, and match lengths
//! up to 259, giving a better ratio at similar speed.

use crate::traits::{le, ByteCodec};

const HASH_BITS: u32 = 16;
const MAX_OFFSET: usize = 65_535;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 259;

#[inline]
fn hash4(p: &[u8]) -> usize {
    let v = u32::from_le_bytes(p[..4].try_into().unwrap());
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// LZSS codec: 8-item control bytes; match items are 3 bytes
/// (16-bit offset + 8-bit length-4).
#[derive(Debug, Default, Clone, Copy)]
pub struct Lzss;

impl ByteCodec for Lzss {
    fn name(&self) -> &'static str {
        "lzss"
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        le::put_u32(out, input.len() as u32);
        let mut table = vec![usize::MAX; 1 << HASH_BITS];
        let mut pos = 0usize;
        let mut items: Vec<u8> = Vec::with_capacity(24);
        let mut control: u8 = 0;
        let mut nitems = 0u32;
        while pos < input.len() {
            let mut emitted_copy = false;
            if pos + MIN_MATCH <= input.len() {
                let h = hash4(&input[pos..]);
                let cand = table[h];
                table[h] = pos;
                if cand != usize::MAX && pos - cand <= MAX_OFFSET {
                    let limit = MAX_MATCH.min(input.len() - pos);
                    let mut len = 0usize;
                    while len < limit && input[cand + len] == input[pos + len] {
                        len += 1;
                    }
                    if len >= MIN_MATCH {
                        let offset = pos - cand;
                        items.push((offset & 0xff) as u8);
                        items.push((offset >> 8) as u8);
                        items.push((len - MIN_MATCH) as u8);
                        control |= 1 << nitems;
                        pos += len;
                        emitted_copy = true;
                    }
                }
            }
            if !emitted_copy {
                items.push(input[pos]);
                pos += 1;
            }
            nitems += 1;
            if nitems == 8 {
                out.push(control);
                out.extend_from_slice(&items);
                items.clear();
                control = 0;
                nitems = 0;
            }
        }
        if nitems > 0 {
            out.push(control);
            out.extend_from_slice(&items);
        }
    }

    fn decompress(&self, input: &[u8], expected_len: usize, out: &mut Vec<u8>) {
        let n = le::get_u32(input, 0) as usize;
        debug_assert_eq!(n, expected_len);
        let start = out.len();
        out.reserve(n);
        let mut pos = 4usize;
        while out.len() - start < n {
            let control = input[pos];
            pos += 1;
            for bit in 0..8 {
                if out.len() - start >= n {
                    break;
                }
                if control & (1 << bit) != 0 {
                    let offset = input[pos] as usize | ((input[pos + 1] as usize) << 8);
                    let len = input[pos + 2] as usize + MIN_MATCH;
                    pos += 3;
                    let from = out.len() - offset;
                    for k in 0..len {
                        let byte = out[from + k];
                        out.push(byte);
                    }
                } else {
                    out.push(input[pos]);
                    pos += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let compressed = Lzss.compress_vec(data);
        assert_eq!(Lzss.decompress_vec(&compressed, data.len()), data);
        compressed.len()
    }

    #[test]
    fn text_roundtrip_and_ratio() {
        let data = b"select l_orderkey, sum(l_extendedprice) from lineitem ".repeat(200);
        let size = roundtrip(&data);
        assert!(size < data.len() / 3);
    }

    #[test]
    fn beats_lzrw1_on_long_matches() {
        use crate::lzrw1::Lzrw1;
        let data = vec![7u8; 100_000];
        let ours = Lzss.compress_vec(&data).len();
        let theirs = Lzrw1.compress_vec(&data).len();
        assert!(ours < theirs, "lzss {ours} vs lzrw1 {theirs}");
        roundtrip(&data);
    }

    #[test]
    fn random_data() {
        let mut x = 42u64;
        let data: Vec<u8> = (0..20_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn column_like_data() {
        let mut data = Vec::new();
        for i in 0u64..10_000 {
            data.extend_from_slice(&(1_000_000 + i * 3).to_le_bytes());
        }
        let size = roundtrip(&data);
        assert!(size < data.len());
    }

    #[test]
    fn empty_and_tiny() {
        for n in 0..10 {
            roundtrip(&vec![b'x'; n]);
        }
    }
}
