//! Simple-9 word-aligned coding (Anh & Moffat).
//!
//! Each 32-bit word holds a 4-bit selector plus 28 data bits packing
//! 28×1, 14×2, 9×3, 7×4, 5×5, 4×7, 3×9, 2×14 or 1×28-bit values.
//! Decoding branches once per *word* (not per value) into a fully
//! unrolled case — the word-aligned family trades a little compression
//! ratio for much higher speed than bit-level codes, which is the
//! comparison point of §5. A tenth selector escapes values `>= 2^28`
//! into a full follow-on word.

use crate::traits::IntCodec;

/// `(values_per_word, bits_per_value)` for selectors 0..=8.
const CASES: [(usize, u32); 9] =
    [(28, 1), (14, 2), (9, 3), (7, 4), (5, 5), (4, 7), (3, 9), (2, 14), (1, 28)];

/// Selector 9: one raw `u32` in the following word.
const ESCAPE: u32 = 9;

/// Simple-9 codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct Simple9;

impl IntCodec for Simple9 {
    fn name(&self) -> &'static str {
        "simple-9"
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        let mut pos = 0usize;
        while pos < values.len() {
            if values[pos] >= 1 << 28 {
                out.extend_from_slice(&(ESCAPE << 28).to_le_bytes());
                out.extend_from_slice(&values[pos].to_le_bytes());
                pos += 1;
                continue;
            }
            // Greedy: densest case whose next min(n, remaining) values all
            // fit in b bits. The decoder recomputes the same count from the
            // number of values still expected, so a partial final word is
            // unambiguous. Case 8 (1 x 28) always fits here.
            let remaining = values.len() - pos;
            let chosen = CASES
                .iter()
                .position(|&(n, b)| {
                    let count = n.min(remaining);
                    values[pos..pos + count].iter().all(|&v| u64::from(v) < 1u64 << b)
                })
                .expect("28-bit case always fits");
            let (n, b) = CASES[chosen];
            let count = n.min(remaining);
            let mut word = (chosen as u32) << 28;
            for (i, &v) in values[pos..pos + count].iter().enumerate() {
                word |= v << (i as u32 * b);
            }
            out.extend_from_slice(&word.to_le_bytes());
            pos += count;
        }
    }

    fn decode(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) {
        let mut widx = 0usize;
        let word_at =
            |i: usize| u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("truncated"));
        let mut remaining = n;
        while remaining > 0 {
            let word = word_at(widx);
            widx += 1;
            let sel = word >> 28;
            if sel == ESCAPE {
                out.push(word_at(widx));
                widx += 1;
                remaining -= 1;
                continue;
            }
            let (cap, b) = CASES[sel as usize];
            let count = cap.min(remaining);
            let mask = if b == 28 { (1u32 << 28) - 1 } else { (1u32 << b) - 1 };
            for i in 0..count {
                out.push((word >> (i as u32 * b)) & mask);
            }
            remaining -= count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_gaps() {
        let values: Vec<u32> = (0..10_000).map(|i| (i * 7 + 3) % 120).collect();
        let bytes = Simple9.encode_vec(&values);
        assert_eq!(Simple9.decode_vec(&bytes, values.len()), values);
        // 7-bit values pack 4 per word: ~8 bits/value.
        assert!(bytes.len() < 10_000 * 10 / 8);
    }

    #[test]
    fn roundtrip_binary_stream() {
        let values: Vec<u32> = (0..2800).map(|i| i % 2).collect();
        let bytes = Simple9.encode_vec(&values);
        // 28 values per word => exactly 100 words.
        assert_eq!(bytes.len(), 400);
        assert_eq!(Simple9.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn escape_for_huge_values() {
        let values = vec![5u32, u32::MAX, 1 << 28, 3, (1 << 28) - 1];
        let bytes = Simple9.encode_vec(&values);
        assert_eq!(Simple9.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn mixed_magnitudes() {
        let values: Vec<u32> = (0..5000)
            .map(|i| match i % 10 {
                0 => i as u32 * 10_000,
                1..=5 => i as u32 % 4,
                _ => i as u32 % 500,
            })
            .collect();
        let bytes = Simple9.encode_vec(&values);
        assert_eq!(Simple9.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn tail_shorter_than_case() {
        // 3 one-bit values: must still decode exactly 3.
        let values = vec![1u32, 0, 1];
        let bytes = Simple9.encode_vec(&values);
        assert_eq!(Simple9.decode_vec(&bytes, 3), values);
    }

    #[test]
    fn empty() {
        assert!(Simple9.encode_vec(&[]).is_empty());
    }
}
