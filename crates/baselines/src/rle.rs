//! Run-length encoding — the classic database scheme for sorted or
//! low-cardinality columns (runs of `(value, count)` pairs).
//!
//! Not evaluated in the paper but ubiquitous in the systems it compares
//! against (e.g. Sybase IQ); included as an ablation baseline: RLE wins
//! only when runs are long, whereas PFOR's win condition is merely a
//! narrow value *range*.

use crate::traits::{le, IntCodec};

/// Run-length codec: `(u32 value, u32 count)` pairs.
#[derive(Debug, Default, Clone, Copy)]
pub struct Rle;

impl IntCodec for Rle {
    fn name(&self) -> &'static str {
        "rle"
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        let mut i = 0usize;
        while i < values.len() {
            let v = values[i];
            let mut j = i + 1;
            while j < values.len() && values[j] == v {
                j += 1;
            }
            le::put_u32(out, v);
            le::put_u32(out, (j - i) as u32);
            i = j;
        }
    }

    fn decode(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) {
        let mut produced = 0usize;
        let mut pos = 0usize;
        while produced < n {
            let v = le::get_u32(bytes, pos);
            let count = le::get_u32(bytes, pos + 4) as usize;
            pos += 8;
            out.extend(std::iter::repeat_n(v, count));
            produced += count;
        }
        debug_assert_eq!(produced, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_runs() {
        let values: Vec<u32> = (0..10_000).map(|i| i / 100).collect();
        let bytes = Rle.encode_vec(&values);
        assert_eq!(bytes.len(), 100 * 8);
        assert_eq!(Rle.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn unique_values_double_in_size() {
        let values: Vec<u32> = (0..1000).collect();
        let bytes = Rle.encode_vec(&values);
        assert_eq!(bytes.len(), 1000 * 8);
        assert_eq!(Rle.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn constant_column_is_one_pair() {
        let values = vec![9u32; 100_000];
        assert_eq!(Rle.encode_vec(&values).len(), 8);
    }

    #[test]
    fn empty() {
        assert!(Rle.encode_vec(&[]).is_empty());
        assert!(Rle.decode_vec(&[], 0).is_empty());
    }
}
