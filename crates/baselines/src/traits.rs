//! Common codec interfaces used by the benchmark harness.

/// A codec over `u32` arrays (column values, inverted-list d-gaps).
pub trait IntCodec {
    /// Short name used in reports ("golomb", "carryover-12", ...).
    fn name(&self) -> &'static str;

    /// Compresses `values`, appending to `out`.
    fn encode(&self, values: &[u32], out: &mut Vec<u8>);

    /// Decompresses exactly `n` values from `bytes`, appending to `out`.
    fn decode(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>);

    /// Convenience: compress into a fresh buffer.
    fn encode_vec(&self, values: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(values, &mut out);
        out
    }

    /// Convenience: decompress into a fresh buffer.
    fn decode_vec(&self, bytes: &[u8], n: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(n);
        self.decode(bytes, n, &mut out);
        out
    }
}

/// A codec over raw byte streams (general-purpose compressors).
pub trait ByteCodec {
    /// Short name used in reports ("lzrw1", "deflate-like", ...).
    fn name(&self) -> &'static str;

    /// Compresses `input`, appending to `out`.
    fn compress(&self, input: &[u8], out: &mut Vec<u8>);

    /// Decompresses `input` (producing `expected_len` bytes), appending to
    /// `out`.
    fn decompress(&self, input: &[u8], expected_len: usize, out: &mut Vec<u8>);

    /// Convenience: compress into a fresh buffer.
    fn compress_vec(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.compress(input, &mut out);
        out
    }

    /// Convenience: decompress into a fresh buffer.
    fn decompress_vec(&self, input: &[u8], expected_len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(expected_len);
        self.decompress(input, expected_len, &mut out);
        out
    }
}

/// Helpers for writing/reading little-endian integers in codec headers.
pub(crate) mod le {
    /// Appends a `u32` in little-endian order.
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u32` at `off`.
    pub fn get_u32(bytes: &[u8], off: usize) -> u32 {
        u32::from_le_bytes(bytes[off..off + 4].try_into().expect("short buffer"))
    }
}
