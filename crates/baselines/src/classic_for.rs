//! Classic Frame-Of-Reference compression (Goldstein et al., ICDE '98).
//!
//! Stores `min(values)` once and every value as `v - min` in
//! `ceil(log2(max - min + 1))` bits. Unlike PFOR there are no exceptions:
//! a single outlier forces the width up for the whole block — exactly the
//! weakness the paper's patched variant repairs.

use crate::traits::{le, IntCodec};
use scc_bitpack::{pack_vec, unpack, width_of};

/// Classic FOR codec. Header: min (u32), bit width (u8).
#[derive(Debug, Default, Clone, Copy)]
pub struct ClassicFor;

impl IntCodec for ClassicFor {
    fn name(&self) -> &'static str {
        "FOR"
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) {
        let min = values.iter().copied().min().unwrap_or(0);
        let max = values.iter().copied().max().unwrap_or(0);
        let b = width_of(max - min);
        le::put_u32(out, min);
        out.push(b as u8);
        let offsets: Vec<u32> = values.iter().map(|&v| v - min).collect();
        for word in pack_vec(&offsets, b) {
            le::put_u32(out, word);
        }
    }

    fn decode(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) {
        if n == 0 {
            return;
        }
        let min = le::get_u32(bytes, 0);
        let b = bytes[4] as u32;
        let words: Vec<u32> =
            bytes[5..].chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
        let start = out.len();
        out.resize(start + n, 0);
        unpack(&words, b, &mut out[start..]);
        for v in &mut out[start..] {
            *v = v.wrapping_add(min);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_clustered() {
        let values: Vec<u32> = (1000..2000).collect();
        let codec = ClassicFor;
        let bytes = codec.encode_vec(&values);
        assert_eq!(codec.decode_vec(&bytes, values.len()), values);
        // 1000 values spanning 1000 => 10 bits/value plus header.
        assert!(bytes.len() < 1000 * 10 / 8 + 64);
    }

    #[test]
    fn outlier_destroys_ratio() {
        let mut values: Vec<u32> = (0..1000).map(|i| i % 16).collect();
        let tight = ClassicFor.encode_vec(&values).len();
        values[500] = u32::MAX;
        let wide = ClassicFor.encode_vec(&values).len();
        // One outlier forces 32-bit codes for everything.
        assert!(wide > tight * 6, "tight={tight} wide={wide}");
        assert_eq!(ClassicFor.decode_vec(&ClassicFor.encode_vec(&values), 1000), values);
    }

    #[test]
    fn constant_column() {
        let values = vec![7u32; 500];
        let bytes = ClassicFor.encode_vec(&values);
        assert_eq!(ClassicFor.decode_vec(&bytes, 500), values);
        assert!(bytes.len() < 16);
    }

    #[test]
    fn empty() {
        let bytes = ClassicFor.encode_vec(&[]);
        assert!(ClassicFor.decode_vec(&bytes, 0).is_empty());
    }
}
