//! Burrows-Wheeler block compressor — our stand-in for the `bzip2` class
//! (see DESIGN.md §4).
//!
//! Per block (256 KiB default): suffix-array BWT (prefix doubling), then
//! move-to-front, then bzip2-style zero-run-length coding (RUNA/RUNB),
//! then canonical Huffman. High ratio, low speed — the opposite corner of
//! the design space from PFOR, which is exactly what Figure 2 contrasts.

use crate::huffcode::{code_lengths, pad_for_decode, Decoder, Encoder, MAX_CODE_LEN};
use crate::traits::{le, ByteCodec};
use scc_bitpack::{BitReader, BitWriter};

/// Block size: bounds memory and sorting cost.
pub const BLOCK_SIZE: usize = 256 * 1024;

/// MTF alphabet: 256 byte values. After RLE-0 the symbol space becomes
/// RUNA, RUNB, then MTF symbols 1..=255 shifted by one.
const RUNA: usize = 0;
const RUNB: usize = 1;
const SYMS: usize = 257; // RUNA, RUNB, 255 shifted MTF symbols

/// Suffix array by prefix doubling (O(n log^2 n)); `data` values must be
/// < 2^30 - 1 so ranks fit.
fn suffix_array(data: &[u16]) -> Vec<u32> {
    let n = data.len();
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<u32> = data.iter().map(|&c| c as u32).collect();
    let mut tmp = vec![0u32; n];
    let mut k = 1usize;
    loop {
        let key = |i: u32| {
            let i = i as usize;
            let second = if i + k < n { rank[i + k] + 1 } else { 0 };
            ((rank[i] as u64) << 32) | second as u64
        };
        sa.sort_unstable_by_key(|&i| key(i));
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            tmp[cur as usize] = tmp[prev as usize] + u32::from(key(prev) != key(cur));
        }
        std::mem::swap(&mut rank, &mut tmp);
        if rank[sa[n - 1] as usize] as usize == n - 1 {
            break;
        }
        k *= 2;
    }
    sa
}

/// Forward BWT with a virtual sentinel: returns `(bwt, primary)` where the
/// sentinel's output position is `primary` (its symbol is *omitted* from
/// `bwt`, which therefore has the same length as the input).
fn bwt_forward(block: &[u8]) -> (Vec<u8>, u32) {
    // Append a unique sentinel smaller than everything (value 0 in a
    // shifted alphabet: bytes become 1..=256).
    let mut data: Vec<u16> = Vec::with_capacity(block.len() + 1);
    data.extend(block.iter().map(|&b| b as u16 + 1));
    data.push(0);
    let sa = suffix_array(&data);
    let mut bwt = Vec::with_capacity(block.len());
    let mut primary = 0u32;
    for (i, &s) in sa.iter().enumerate() {
        if s == 0 {
            // The row starting at the sentinel... its preceding char is
            // the last input byte; but the sentinel row itself is sa[0].
            // Row whose suffix starts at 0 would emit the sentinel: skip
            // it and record the position.
            primary = i as u32;
        } else {
            bwt.push(block[s as usize - 1]);
        }
    }
    (bwt, primary)
}

/// Inverse BWT via LF mapping.
fn bwt_inverse(bwt: &[u8], primary: u32) -> Vec<u8> {
    let n = bwt.len();
    if n == 0 {
        return Vec::new();
    }
    // Conceptually the transformed string has n+1 rows; row `primary` is
    // the sentinel row. Build LF over the n real symbols, treating the
    // sentinel as the unique smallest symbol at first position.
    let mut counts = [0u32; 256];
    for &b in bwt {
        counts[b as usize] += 1;
    }
    // first[c] = row index (in the full n+1 matrix) of the first row
    // starting with c; row 0 starts with the sentinel.
    let mut first = [0u32; 257];
    first[0] = 1; // after the sentinel row
    for c in 0..256 {
        first[c + 1] = first[c] + counts[c];
    }
    // next[i] = LF mapping: row index of the row starting with bwt[i].
    // bwt rows are the full matrix rows except the primary; account for
    // that offset when walking.
    let mut occ = [0u32; 256];
    let mut lf = vec![0u32; n];
    for (i, &b) in bwt.iter().enumerate() {
        lf[i] = first[b as usize] + occ[b as usize];
        occ[b as usize] += 1;
    }
    // Walk backwards starting from row 0, the rotation that begins with
    // the sentinel: its last character (= its L entry) is the last byte of
    // the output, and LF steps move one position left each time. After n
    // steps the walk lands on `primary` (the row whose L entry is the
    // sentinel).
    let mut out = vec![0u8; n];
    // Row index -> bwt index: rows except `primary` map in order. Row 0 is
    // never `primary` (the sentinel-first rotation sorts first).
    let row_to_idx = |row: u32| if row < primary { row } else { row - 1 };
    let mut row = 0u32;
    for slot in (0..n).rev() {
        let idx = row_to_idx(row) as usize;
        out[slot] = bwt[idx];
        row = lf[idx];
    }
    debug_assert_eq!(row, primary);
    out
}

/// Move-to-front transform.
fn mtf_forward(data: &[u8]) -> Vec<u8> {
    let mut order: Vec<u8> = (0..=255).collect();
    data.iter()
        .map(|&b| {
            let pos = order.iter().position(|&o| o == b).expect("byte in alphabet") as u8;
            order.copy_within(0..pos as usize, 1);
            order[0] = b;
            pos
        })
        .collect()
}

/// Inverse move-to-front.
fn mtf_inverse(data: &[u8]) -> Vec<u8> {
    let mut order: Vec<u8> = (0..=255).collect();
    data.iter()
        .map(|&pos| {
            let b = order[pos as usize];
            order.copy_within(0..pos as usize, 1);
            order[0] = b;
            b
        })
        .collect()
}

/// bzip2-style RLE-0: zero runs become a binary number in RUNA/RUNB
/// digits; nonzero MTF symbols shift up by one.
fn rle0_forward(mtf: &[u8], out: &mut Vec<u16>) {
    let mut run = 0u64;
    let flush = |run: &mut u64, out: &mut Vec<u16>| {
        let mut r = *run;
        while r > 0 {
            // Bijective base-2: digits 1 (RUNA) and 2 (RUNB).
            if r & 1 == 1 {
                out.push(RUNA as u16);
                r = (r - 1) / 2;
            } else {
                out.push(RUNB as u16);
                r = (r - 2) / 2;
            }
        }
        *run = 0;
    };
    for &m in mtf {
        if m == 0 {
            run += 1;
        } else {
            flush(&mut run, out);
            out.push(m as u16 + 1);
        }
    }
    flush(&mut run, out);
}

/// Inverse of [`rle0_forward`].
fn rle0_inverse(syms: &[u16], out: &mut Vec<u8>) {
    let mut i = 0usize;
    while i < syms.len() {
        if syms[i] as usize <= RUNB {
            // Collect the full RUNA/RUNB group.
            let mut run = 0u64;
            let mut place = 1u64;
            while i < syms.len() && syms[i] as usize <= RUNB {
                run += place * (syms[i] as u64 + 1);
                place *= 2;
                i += 1;
            }
            out.extend(std::iter::repeat_n(0u8, run as usize));
        } else {
            out.push((syms[i] - 1) as u8);
            i += 1;
        }
    }
}

/// BWT block codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct BwtCodec;

impl ByteCodec for BwtCodec {
    fn name(&self) -> &'static str {
        "bwt"
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        le::put_u32(out, input.len() as u32);
        for block in input.chunks(BLOCK_SIZE) {
            let (bwt, primary) = bwt_forward(block);
            let mtf = mtf_forward(&bwt);
            let mut syms: Vec<u16> = Vec::with_capacity(mtf.len());
            rle0_forward(&mtf, &mut syms);
            let mut freqs = vec![0u64; SYMS];
            for &s in &syms {
                freqs[s as usize] += 1;
            }
            let lens = code_lengths(&freqs, MAX_CODE_LEN);
            // Block header: block len, primary, symbol count, code lengths.
            le::put_u32(out, block.len() as u32);
            le::put_u32(out, primary);
            le::put_u32(out, syms.len() as u32);
            let mut table = vec![0u8; SYMS.div_ceil(2)];
            for (i, &l) in lens.iter().enumerate() {
                table[i / 2] |= (l as u8) << ((i % 2) * 4);
            }
            out.extend_from_slice(&table);
            let enc = Encoder::from_lengths(&lens);
            let mut w = BitWriter::new();
            for &s in &syms {
                enc.put(&mut w, s as usize);
            }
            pad_for_decode(&mut w);
            let words = w.into_words();
            le::put_u32(out, words.len() as u32);
            for word in words {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
    }

    fn decompress(&self, input: &[u8], expected_len: usize, out: &mut Vec<u8>) {
        let n = le::get_u32(input, 0) as usize;
        debug_assert_eq!(n, expected_len);
        let mut pos = 4usize;
        let mut produced = 0usize;
        while produced < n {
            let block_len = le::get_u32(input, pos) as usize;
            let primary = le::get_u32(input, pos + 4);
            let n_syms = le::get_u32(input, pos + 8) as usize;
            pos += 12;
            let mut lens = vec![0u32; SYMS];
            for (i, l) in lens.iter_mut().enumerate() {
                *l = ((input[pos + i / 2] >> ((i % 2) * 4)) & 0xf) as u32;
            }
            pos += SYMS.div_ceil(2);
            let n_words = le::get_u32(input, pos) as usize;
            pos += 4;
            let words: Vec<u64> = input[pos..pos + n_words * 8]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            pos += n_words * 8;
            let dec = Decoder::from_lengths(&lens);
            let mut r = BitReader::new(&words);
            let mut syms = Vec::with_capacity(n_syms);
            for _ in 0..n_syms {
                syms.push(dec.get(&mut r) as u16);
            }
            let mut mtf = Vec::with_capacity(block_len);
            rle0_inverse(&syms, &mut mtf);
            let bwt = mtf_inverse(&mtf);
            out.extend_from_slice(&bwt_inverse(&bwt, primary));
            produced += block_len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let compressed = BwtCodec.compress_vec(data);
        assert_eq!(BwtCodec.decompress_vec(&compressed, data.len()), data, "len {}", data.len());
        compressed.len()
    }

    #[test]
    fn bwt_transform_known_example() {
        // "banana": classic example.
        let (bwt, primary) = bwt_forward(b"banana");
        assert_eq!(bwt_inverse(&bwt, primary), b"banana");
    }

    #[test]
    fn bwt_inverse_is_exact_for_edge_blocks() {
        for data in [&b""[..], b"a", b"aa", b"ab", b"aba", b"abcabcabc"] {
            let (bwt, primary) = bwt_forward(data);
            assert_eq!(bwt_inverse(&bwt, primary), data);
        }
    }

    #[test]
    fn mtf_roundtrip() {
        let data = b"compressible compressible data".to_vec();
        assert_eq!(mtf_inverse(&mtf_forward(&data)), data);
    }

    #[test]
    fn rle0_roundtrip_various_run_lengths() {
        for run in [0usize, 1, 2, 3, 4, 7, 255, 1000] {
            let mut mtf = vec![0u8; run];
            mtf.push(5);
            mtf.extend_from_slice(&[0, 0, 9]);
            let mut syms = Vec::new();
            rle0_forward(&mtf, &mut syms);
            let mut back = Vec::new();
            rle0_inverse(&syms, &mut back);
            assert_eq!(back, mtf, "run {run}");
        }
    }

    #[test]
    fn text_gets_high_ratio() {
        let data = b"effective. Effectiveness is the essence of efficiency. ".repeat(400);
        let size = roundtrip(&data);
        assert!(size < data.len() / 8, "{size} vs {}", data.len());
    }

    #[test]
    fn random_data_survives() {
        let mut x = 99u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x = x.wrapping_mul(0x5DEECE66D).wrapping_add(11);
                (x >> 24) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn multi_block_inputs() {
        let data: Vec<u8> = (0..BLOCK_SIZE + 1234).map(|i| (i % 251) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn empty_and_tiny() {
        for n in 0..6 {
            roundtrip(&vec![b'z'; n]);
        }
    }
}
