//! Property-based round-trip tests for every baseline codec.

use proptest::prelude::*;
use scc_baselines::{
    bwt::BwtCodec,
    carryover12::Carryover12,
    classic_dict::ClassicDict,
    classic_for::ClassicFor,
    deflate_like::DeflateLike,
    elias::{EliasDelta, EliasGamma},
    golomb::{Golomb, Rice},
    huffman::ShuffHuffman,
    lzrw1::Lzrw1,
    lzss::Lzss,
    lzw::Lzw,
    prefix::PrefixSuppression,
    rle::Rle,
    simple9::Simple9,
    varint::VarInt,
    ByteCodec, IntCodec,
};

fn int_codecs() -> Vec<Box<dyn IntCodec>> {
    vec![
        Box::new(VarInt),
        Box::new(ClassicFor),
        Box::new(PrefixSuppression),
        Box::new(ClassicDict),
        Box::new(Golomb),
        Box::new(Rice),
        Box::new(EliasGamma),
        Box::new(EliasDelta),
        Box::new(Simple9),
        Box::new(ShuffHuffman),
        Box::new(Rle),
    ]
}

fn byte_codecs() -> Vec<Box<dyn ByteCodec>> {
    vec![Box::new(Lzrw1), Box::new(Lzss), Box::new(Lzw), Box::new(DeflateLike), Box::new(BwtCodec)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn int_codecs_roundtrip_any_u32(values in prop::collection::vec(any::<u32>(), 0..400)) {
        for codec in int_codecs() {
            let bytes = codec.encode_vec(&values);
            prop_assert_eq!(codec.decode_vec(&bytes, values.len()), values.clone(), "codec {}", codec.name());
        }
    }

    #[test]
    fn int_codecs_roundtrip_gap_like(values in prop::collection::vec(
        prop_oneof![9 => 0u32..50, 1 => 0u32..100_000], 0..600
    )) {
        for codec in int_codecs() {
            let bytes = codec.encode_vec(&values);
            prop_assert_eq!(codec.decode_vec(&bytes, values.len()), values.clone(), "codec {}", codec.name());
        }
    }

    #[test]
    fn carryover12_roundtrips_below_2_30(values in prop::collection::vec(0u32..(1 << 30), 0..500)) {
        let bytes = Carryover12.encode_vec(&values);
        prop_assert_eq!(Carryover12.decode_vec(&bytes, values.len()), values);
    }

    #[test]
    fn byte_codecs_roundtrip(data in prop::collection::vec(any::<u8>(), 0..3000)) {
        for codec in byte_codecs() {
            let compressed = codec.compress_vec(&data);
            prop_assert_eq!(codec.decompress_vec(&compressed, data.len()), data.clone(), "codec {}", codec.name());
        }
    }

    #[test]
    fn byte_codecs_roundtrip_compressible(
        pattern in prop::collection::vec(any::<u8>(), 1..60),
        repeats in 1usize..80,
        tail in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        let mut data: Vec<u8> = pattern.iter().cycle().take(pattern.len() * repeats).copied().collect();
        data.extend_from_slice(&tail);
        for codec in byte_codecs() {
            let compressed = codec.compress_vec(&data);
            prop_assert_eq!(codec.decompress_vec(&compressed, data.len()), data.clone(), "codec {}", codec.name());
        }
    }

    #[test]
    fn gap_codecs_monotone_ratio_sanity(mean in 1u32..200) {
        // Small-mean geometric-ish gaps must compress below 32 bits/value
        // for every gap-oriented codec.
        let mut x = 0xDEADBEEFu64;
        let values: Vec<u32> = (0..2000)
            .map(|_| {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                (x % (2 * mean as u64)) as u32
            })
            .collect();
        for codec in int_codecs() {
            let bytes = codec.encode_vec(&values);
            // RLE is run-oriented, not gap-oriented: it legitimately
            // expands non-repeating gap streams, so it only has to
            // round-trip here.
            if codec.name() != "rle" {
                prop_assert!(
                    bytes.len() < 2000 * 4,
                    "codec {} did not compress mean-{mean} gaps: {} bytes",
                    codec.name(), bytes.len()
                );
            }
            prop_assert_eq!(codec.decode_vec(&bytes, values.len()), values.clone());
        }
    }
}
