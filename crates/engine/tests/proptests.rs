//! Property tests: engine operators agree with naive Rust reference
//! implementations.

use proptest::prelude::*;
use scc_engine::ops::collect;
use scc_engine::{
    AggExpr, Expr, HashAggregate, HashJoin, JoinKind, MemSource, OrderBy, Project, Select, SortKey,
    TopN, Vector,
};
use std::collections::HashMap;

fn src(cols: Vec<Vec<i64>>, vs: usize) -> MemSource {
    MemSource::from_i64(cols, vs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn select_matches_filter(values in prop::collection::vec(-100i64..100, 0..500), threshold in -100i64..100, vs in 1usize..64) {
        let mut sel = Select::new(src(vec![values.clone()], vs), Expr::col(0).ge(Expr::lit_i64(threshold)));
        let out = collect(&mut sel);
        let expect: Vec<i64> = values.iter().copied().filter(|&v| v >= threshold).collect();
        let got = if out.columns.is_empty() { vec![] } else { out.col(0).as_i64().to_vec() };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn project_matches_map(values in prop::collection::vec(-1000i64..1000, 0..400), vs in 1usize..64) {
        let mut proj = Project::new(
            src(vec![values.clone()], vs),
            vec![Expr::col(0).mul(Expr::lit_i64(3)).add(Expr::lit_i64(1))],
        );
        let out = collect(&mut proj);
        let expect: Vec<i64> = values.iter().map(|v| v * 3 + 1).collect();
        let got = if out.columns.is_empty() { vec![] } else { out.col(0).as_i64().to_vec() };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn aggregate_matches_hashmap(keys in prop::collection::vec(0i64..8, 1..500), vs in 1usize..64) {
        let values: Vec<i64> = keys.iter().enumerate().map(|(i, _)| i as i64).collect();
        let mut agg = HashAggregate::new(
            src(vec![keys.clone(), values.clone()], vs),
            vec![Expr::col(0)],
            vec![AggExpr::Sum(Expr::col(1)), AggExpr::Count, AggExpr::Min(Expr::col(1)), AggExpr::Max(Expr::col(1))],
        );
        let out = collect(&mut agg);
        let mut expect: HashMap<i64, (i64, i64, i64, i64)> = HashMap::new();
        for (k, v) in keys.iter().zip(&values) {
            let e = expect.entry(*k).or_insert((0, 0, i64::MAX, i64::MIN));
            e.0 += v;
            e.1 += 1;
            e.2 = e.2.min(*v);
            e.3 = e.3.max(*v);
        }
        prop_assert_eq!(out.len(), expect.len());
        for row in 0..out.len() {
            let k = out.col(0).as_i64()[row];
            let e = expect[&k];
            prop_assert_eq!(out.col(1).as_i64()[row], e.0);
            prop_assert_eq!(out.col(2).as_i64()[row], e.1);
            prop_assert_eq!(out.col(3).as_i64()[row], e.2);
            prop_assert_eq!(out.col(4).as_i64()[row], e.3);
        }
    }

    #[test]
    fn inner_join_matches_nested_loops(
        probe in prop::collection::vec(0i64..12, 0..150),
        build in prop::collection::vec(0i64..12, 0..150),
        vs in 1usize..32,
    ) {
        let probe_pay: Vec<i64> = (0..probe.len() as i64).collect();
        let build_pay: Vec<i64> = (0..build.len() as i64).map(|i| i + 1000).collect();
        let mut join = HashJoin::new(
            src(vec![probe.clone(), probe_pay.clone()], vs),
            src(vec![build.clone(), build_pay.clone()], vs),
            vec![0],
            vec![0],
            JoinKind::Inner,
        );
        let out = collect(&mut join);
        let mut expect: Vec<(i64, i64)> = Vec::new();
        for (pk, pp) in probe.iter().zip(&probe_pay) {
            for (bk, bp) in build.iter().zip(&build_pay) {
                if pk == bk {
                    expect.push((*pp, *bp));
                }
            }
        }
        let mut got: Vec<(i64, i64)> = if out.columns.is_empty() {
            vec![]
        } else {
            out.col(1).as_i64().iter().zip(out.col(3).as_i64()).map(|(&a, &b)| (a, b)).collect()
        };
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn semi_and_anti_partition_probe(
        probe in prop::collection::vec(0i64..10, 0..200),
        build in prop::collection::vec(0i64..10, 0..50),
        vs in 1usize..32,
    ) {
        let semi = collect(&mut HashJoin::new(
            src(vec![probe.clone()], vs),
            src(vec![build.clone()], vs),
            vec![0], vec![0], JoinKind::LeftSemi,
        ));
        let anti = collect(&mut HashJoin::new(
            src(vec![probe.clone()], vs),
            src(vec![build.clone()], vs),
            vec![0], vec![0], JoinKind::LeftAnti,
        ));
        let semi_n = if semi.columns.is_empty() { 0 } else { semi.len() };
        let anti_n = if anti.columns.is_empty() { 0 } else { anti.len() };
        prop_assert_eq!(semi_n + anti_n, probe.len());
        if !semi.columns.is_empty() {
            for &v in semi.col(0).as_i64() {
                prop_assert!(build.contains(&v));
            }
        }
        if !anti.columns.is_empty() {
            for &v in anti.col(0).as_i64() {
                prop_assert!(!build.contains(&v));
            }
        }
    }

    #[test]
    fn sort_is_stablely_ordered(values in prop::collection::vec(-50i64..50, 0..300), vs in 1usize..32) {
        let mut sort = OrderBy::new(src(vec![values.clone()], vs), vec![SortKey::asc(0)]);
        let out = collect(&mut sort);
        let mut expect = values.clone();
        expect.sort_unstable();
        let got = if out.columns.is_empty() { vec![] } else { out.col(0).as_i64().to_vec() };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn topn_is_sorted_prefix(values in prop::collection::vec(any::<i64>(), 0..300), n in 0usize..20, vs in 1usize..32) {
        let mut top = TopN::new(src(vec![values.clone()], vs), vec![SortKey::desc(0)], n);
        let out = collect(&mut top);
        let mut expect = values.clone();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(n);
        let got = if out.columns.is_empty() { vec![] } else { out.col(0).as_i64().to_vec() };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn cond_expr_equals_branchy_map(values in prop::collection::vec(-100i64..100, 1..300)) {
        let batch = scc_engine::Batch::new(vec![Vector::I64(values.clone())]);
        let e = Expr::col(0).ge(Expr::lit_i64(0)).cond(Expr::col(0), Expr::col(0).mul(Expr::lit_i64(-1)));
        let out = e.eval(&batch);
        let expect: Vec<i64> = values.iter().map(|&v| v.abs()).collect();
        prop_assert_eq!(out.as_i64(), &expect[..]);
    }

    #[test]
    fn results_invariant_under_vector_size(values in prop::collection::vec(0i64..100, 1..400)) {
        let run = |vs: usize| {
            let sel = Select::new(src(vec![values.clone()], vs), Expr::col(0).lt(Expr::lit_i64(50)));
            let mut agg = HashAggregate::new(sel, vec![], vec![AggExpr::Sum(Expr::col(0)), AggExpr::Count]);
            collect(&mut agg)
        };
        let a = run(1);
        let b = run(7);
        let c = run(1024);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merge_join_agrees_with_hash_join(
        mut lk in prop::collection::vec(0i64..40, 0..200),
        mut rk in prop::collection::vec(0i64..40, 0..200),
        lvs in 1usize..16,
        rvs in 1usize..16,
    ) {
        lk.sort_unstable();
        rk.sort_unstable();
        let lp: Vec<i64> = (0..lk.len() as i64).collect();
        let rp: Vec<i64> = (0..rk.len() as i64).map(|i| i + 10_000).collect();
        let mut merge = scc_engine::MergeJoin::new(
            src(vec![lk.clone(), lp.clone()], lvs),
            src(vec![rk.clone(), rp.clone()], rvs),
            0,
            0,
        );
        let mut hash = HashJoin::new(
            src(vec![lk, lp], lvs),
            src(vec![rk, rp], rvs),
            vec![0],
            vec![0],
            JoinKind::Inner,
        );
        let rows = |out: scc_engine::Batch| -> Vec<(i64, i64)> {
            if out.columns.is_empty() {
                vec![]
            } else {
                out.col(1).as_i64().iter().zip(out.col(3).as_i64()).map(|(&a, &b)| (a, b)).collect()
            }
        };
        let mut m = rows(collect(&mut merge));
        let mut h = rows(collect(&mut hash));
        m.sort_unstable();
        h.sort_unstable();
        prop_assert_eq!(m, h);
    }
}
