//! Exchange under multi-source feeds: several producer threads (the
//! shape of a cluster coordinator, one thread per shard) each owning a
//! slice of the partition space, delivering out of order and at
//! adversarial relative speeds. The merged stream must be *exactly* the
//! serial stream — same rows, same order, same first error at the same
//! position — for every interleaving.

use scc_core::Error;
use scc_engine::ops::exchange::{Exchange, Partition};
use scc_engine::ops::{try_collect, Operator};
use scc_engine::{Batch, Vector};
use std::sync::mpsc::sync_channel;
use std::time::Duration;

fn batch(values: Vec<i64>) -> Batch {
    Batch::new(vec![Vector::I64(values)])
}

/// Splitmix-style mixer for deterministic per-test scheduling jitter.
fn mix(seed: u64, i: u64) -> u64 {
    let mut x = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The rows partition `seq` contributes, split into `seq % 3 + 1`
/// batches so batch boundaries differ per partition.
fn partition_batches(seq: u64) -> Vec<Batch> {
    let rows: Vec<i64> = (0..12).map(|r| (seq * 100 + r) as i64).collect();
    let cuts = seq as usize % 3 + 1;
    rows.chunks(rows.len() / cuts).map(|c| batch(c.to_vec())).collect()
}

/// Serial oracle: partitions in order, rows in order.
fn serial_rows(total: u64) -> Vec<i64> {
    (0..total).flat_map(|s| (0..12).map(move |r| (s * 100 + r) as i64)).collect()
}

#[test]
fn multi_source_out_of_order_streams_merge_into_serial_order() {
    for seed in 0..8u64 {
        const SOURCES: u64 = 4;
        const TOTAL: u64 = 16;
        let (tx, rx) = sync_channel::<Partition>(2);
        let workers: Vec<_> = (0..SOURCES)
            .map(|w| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    // Source w owns seqs w, w+SOURCES, ... and delivers
                    // its own slice in reverse with jittered pacing, so
                    // arrival order is thoroughly scrambled across and
                    // within sources.
                    let mut own: Vec<u64> = (w..TOTAL).step_by(SOURCES as usize).collect();
                    own.reverse();
                    for seq in own {
                        std::thread::sleep(Duration::from_micros(mix(seed, seq) % 500));
                        if tx.send((seq, Ok(partition_batches(seq)))).is_err() {
                            return;
                        }
                    }
                })
            })
            .collect();
        drop(tx);
        let mut ex = Exchange::new(TOTAL, rx, workers);
        let out = try_collect(&mut ex).unwrap();
        assert_eq!(out.col(0).as_i64(), serial_rows(TOTAL), "seed {seed}");
    }
}

#[test]
fn error_from_one_source_surfaces_at_its_serial_position_not_its_arrival_time() {
    // The failing partition is delivered *first* in wall-clock time,
    // but sits at serial position 5: every row of partitions 0..5 must
    // still come out, then exactly this error, then end of stream.
    const TOTAL: u64 = 8;
    const FAIL_SEQ: u64 = 5;
    let (tx, rx) = sync_channel::<Partition>(TOTAL as usize);
    let failer = {
        let tx = tx.clone();
        std::thread::spawn(move || {
            tx.send((FAIL_SEQ, Err(Error::ReadFailed { chunk: (7, 7, 0), attempts: 3 }))).unwrap();
        })
    };
    failer.join().unwrap(); // error is en route before any data
    let workers: Vec<_> = (0..2u64)
        .map(|w| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                for seq in (w..TOTAL).step_by(2).filter(|&s| s != FAIL_SEQ) {
                    std::thread::sleep(Duration::from_micros(mix(9, seq) % 300));
                    if tx.send((seq, Ok(partition_batches(seq)))).is_err() {
                        return;
                    }
                }
            })
        })
        .collect();
    drop(tx);
    let mut ex = Exchange::new(TOTAL, rx, workers);
    let mut rows: Vec<i64> = Vec::new();
    let err = loop {
        match ex.try_next() {
            Ok(Some(b)) => rows.extend(b.col(0).as_i64()),
            Ok(None) => panic!("stream ended without surfacing the error"),
            Err(e) => break e,
        }
    };
    assert_eq!(rows, serial_rows(FAIL_SEQ), "full prefix before the failing partition");
    assert_eq!(err, Error::ReadFailed { chunk: (7, 7, 0), attempts: 3 });
    // The stream is over — no resumption past an error.
    assert_eq!(ex.try_next(), Ok(None));
}

#[test]
fn slow_source_stalls_but_never_reorders() {
    // One source is an order of magnitude slower than the others; the
    // merge waits for it at each of its turns rather than skipping.
    const TOTAL: u64 = 6;
    let (tx, rx) = sync_channel::<Partition>(1);
    let workers: Vec<_> = (0..3u64)
        .map(|w| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                for seq in (w..TOTAL).step_by(3) {
                    if w == 0 {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    if tx.send((seq, Ok(partition_batches(seq)))).is_err() {
                        return;
                    }
                }
            })
        })
        .collect();
    drop(tx);
    let mut ex = Exchange::new(TOTAL, rx, workers);
    let out = try_collect(&mut ex).unwrap();
    assert_eq!(out.col(0).as_i64(), serial_rows(TOTAL));
}
