//! A MonetDB/X100-style vectorized query engine (§2.3).
//!
//! Volcano-style operators exchange *vectors* of ~1024 tuples instead of
//! single tuples: each [`Operator::next`] call returns a [`Batch`] whose
//! columns are plain arrays, and all computation happens in tight,
//! branch-light loops over those arrays ("primitives"). Function-call
//! overhead is paid once per vector, and the compiler loop-pipelines the
//! primitives — the properties the paper's compression kernels share.
//!
//! Strings never reach the engine: string columns are dictionary-encoded
//! at the storage layer and predicates on them arrive as code-set
//! predicates (see `scc-storage`), so every vector is numeric.
//!
//! ```
//! use scc_engine::{Batch, ColType, Expr, MemSource, Operator, Select, Project};
//!
//! let ids: Vec<i64> = (0..10_000).collect();
//! let vals: Vec<i64> = (0..10_000).map(|i| i * 3).collect();
//! let source = MemSource::from_i64(vec![ids, vals], 1024);
//! let filtered = Select::new(Box::new(source), Expr::col(1).ge(Expr::lit_i64(15_000)));
//! let mut proj = Project::new(
//!     Box::new(filtered),
//!     vec![Expr::col(0), Expr::col(1).mul(Expr::lit_i64(2))],
//! );
//! let mut rows = 0;
//! while let Some(batch) = proj.next() {
//!     rows += batch.len();
//! }
//! assert_eq!(rows, 5_000);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod explain;
pub mod expr;
pub mod ops;

pub use batch::{Batch, CodeCol, ColType, LazyCol, PushPred, Vector};
pub use explain::{ExplainNode, OpProfile};
pub use expr::Expr;
pub use ops::aggregate::{AggExpr, HashAggregate};
pub use ops::exchange::{Exchange, Partition};
pub use ops::join::{HashJoin, JoinKind};
pub use ops::merge_join::MergeJoin;
pub use ops::project::Project;
pub use ops::select::Select;
pub use ops::sort::{OrderBy, SortKey, TopN};
pub use ops::source::MemSource;
pub use ops::Operator;

/// Default vector length ("a few hundreds of tuples" per the paper; 1024
/// keeps per-vector state comfortably inside L1/L2).
pub const VECTOR_SIZE: usize = 1024;
