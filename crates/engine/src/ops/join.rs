//! Hash joins: inner, left-semi and left-anti, keyed on any number of
//! columns.

use crate::batch::{Batch, Vector};
use crate::explain::{ExplainNode, OpProfile};
use crate::ops::Operator;
use std::collections::HashMap;

/// Join variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Emit probe ++ build columns per matching pair.
    Inner,
    /// Emit probe rows with at least one match (probe columns only).
    LeftSemi,
    /// Emit probe rows with no match (probe columns only).
    LeftAnti,
}

/// Hash join. The build side is drained and hashed on the first `next()`
/// call; probing is vector-at-a-time. For [`JoinKind::Inner`] the output
/// schema is all probe columns followed by all build columns (including
/// the key columns of both sides).
pub struct HashJoin {
    probe: Box<dyn Operator>,
    build: Box<dyn Operator>,
    built: bool,
    probe_keys: Vec<usize>,
    build_keys: Vec<usize>,
    kind: JoinKind,
    table: HashMap<Box<[u64]>, Vec<u32>>,
    build_data: Option<Batch>,
    profile: OpProfile,
}

impl HashJoin {
    /// Builds a hash join: `probe` is streamed, `build` is materialized.
    pub fn new(
        probe: impl Operator + 'static,
        build: impl Operator + 'static,
        probe_keys: Vec<usize>,
        build_keys: Vec<usize>,
        kind: JoinKind,
    ) -> Self {
        assert_eq!(probe_keys.len(), build_keys.len(), "key arity mismatch");
        assert!(!probe_keys.is_empty(), "joins need at least one key");
        Self {
            probe: Box::new(probe),
            build: Box::new(build),
            built: false,
            probe_keys,
            build_keys,
            kind,
            table: HashMap::new(),
            build_data: None,
            profile: OpProfile::default(),
        }
    }

    fn ensure_built(&mut self) -> Result<(), scc_core::Error> {
        if !self.built {
            self.built = true;
            let data = crate::ops::try_collect(self.build.as_mut())?;
            let mut key = vec![0u64; self.build_keys.len()];
            for row in 0..data.len() {
                for (slot, &k) in key.iter_mut().zip(&self.build_keys) {
                    *slot = data.col(k).key_at(row);
                }
                self.table.entry(key.clone().into_boxed_slice()).or_default().push(row as u32);
            }
            self.build_data = Some(data);
        }
        Ok(())
    }

    fn produce(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        self.ensure_built()?;
        let mut key = vec![0u64; self.probe_keys.len()];
        loop {
            let Some(mut batch) = self.probe.try_next()? else {
                return Ok(None);
            };
            self.profile.values_decoded += batch.ensure_values()?;
            match self.kind {
                JoinKind::Inner => {
                    let mut probe_idx: Vec<usize> = Vec::new();
                    let mut build_idx: Vec<usize> = Vec::new();
                    for row in 0..batch.len() {
                        for (slot, &k) in key.iter_mut().zip(&self.probe_keys) {
                            *slot = batch.col(k).key_at(row);
                        }
                        if let Some(rows) = self.table.get(key.as_slice()) {
                            for &b in rows {
                                probe_idx.push(row);
                                build_idx.push(b as usize);
                            }
                        }
                    }
                    if probe_idx.is_empty() {
                        continue;
                    }
                    let mut cols: Vec<Vector> =
                        batch.columns.iter().map(|c| c.gather(&probe_idx)).collect();
                    let build_data = self.build_data.as_ref().expect("built");
                    cols.extend(build_data.columns.iter().map(|c| c.gather(&build_idx)));
                    return Ok(Some(Batch::new(cols)));
                }
                JoinKind::LeftSemi | JoinKind::LeftAnti => {
                    let want_match = self.kind == JoinKind::LeftSemi;
                    let mut keep: Vec<usize> = Vec::new();
                    for row in 0..batch.len() {
                        for (slot, &k) in key.iter_mut().zip(&self.probe_keys) {
                            *slot = batch.col(k).key_at(row);
                        }
                        if self.table.contains_key(key.as_slice()) == want_match {
                            keep.push(row);
                        }
                    }
                    if keep.is_empty() {
                        continue;
                    }
                    return Ok(Some(batch.gather(&keep)));
                }
            }
        }
    }
}

impl Operator for HashJoin {
    fn try_next(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        let start = scc_obs::clock();
        let out = self.produce();
        self.profile.record(start, &out);
        out
    }

    fn label(&self) -> String {
        format!("HashJoin({:?}, keys={})", self.kind, self.probe_keys.len())
    }

    fn profile(&self) -> OpProfile {
        self.profile
    }

    fn explain(&self) -> ExplainNode {
        // Probe (streamed) side first, build (materialized) side last.
        ExplainNode::new(
            self.label(),
            self.profile,
            vec![self.probe.explain(), self.build.explain()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{collect, source::MemSource};

    fn probe_src() -> Box<dyn Operator> {
        // (key, payload)
        Box::new(MemSource::from_i64(vec![vec![1, 2, 3, 4, 2], vec![10, 20, 30, 40, 21]], 2))
    }

    fn build_src() -> Box<dyn Operator> {
        // (key, name-code): key 2 appears twice.
        Box::new(MemSource::from_i64(vec![vec![2, 3, 2, 9], vec![200, 300, 201, 900]], 3))
    }

    #[test]
    fn inner_join_with_duplicates() {
        let mut join = HashJoin::new(probe_src(), build_src(), vec![0], vec![0], JoinKind::Inner);
        let out = collect(&mut join);
        // probe rows 2,2(payload 20/21) x 2 build rows; probe 3 x 1.
        assert_eq!(out.len(), 5);
        // Columns: probe key, probe payload, build key, build name.
        let bk = out.col(2).as_i64();
        assert!(bk.iter().all(|&k| k == 2 || k == 3));
        let pk = out.col(0).as_i64();
        for (p, b) in pk.iter().zip(bk) {
            assert_eq!(p, b);
        }
    }

    #[test]
    fn semi_join_keeps_matching_probe_rows_once() {
        let mut join =
            HashJoin::new(probe_src(), build_src(), vec![0], vec![0], JoinKind::LeftSemi);
        let out = collect(&mut join);
        assert_eq!(out.col(0).as_i64(), &[2, 3, 2]);
        assert_eq!(out.col(1).as_i64(), &[20, 30, 21]);
    }

    #[test]
    fn anti_join_keeps_non_matching() {
        let mut join =
            HashJoin::new(probe_src(), build_src(), vec![0], vec![0], JoinKind::LeftAnti);
        let out = collect(&mut join);
        assert_eq!(out.col(0).as_i64(), &[1, 4]);
    }

    #[test]
    fn composite_key_join() {
        let probe = Box::new(MemSource::from_i64(
            vec![vec![1, 1, 2], vec![5, 6, 5], vec![100, 101, 102]],
            8,
        ));
        let build = Box::new(MemSource::from_i64(vec![vec![1, 2], vec![5, 5]], 8));
        let mut join = HashJoin::new(probe, build, vec![0, 1], vec![0, 1], JoinKind::Inner);
        let out = collect(&mut join);
        assert_eq!(out.col(2).as_i64(), &[100, 102]);
    }

    #[test]
    fn empty_build_side() {
        let build = Box::new(MemSource::from_i64(vec![vec![], vec![]], 8));
        let mut inner = HashJoin::new(probe_src(), build, vec![0], vec![0], JoinKind::Inner);
        assert!(inner.next().is_none());
        let build = Box::new(MemSource::from_i64(vec![vec![], vec![]], 8));
        let mut anti = HashJoin::new(probe_src(), build, vec![0], vec![0], JoinKind::LeftAnti);
        assert_eq!(collect(&mut anti).len(), 5);
    }
}
