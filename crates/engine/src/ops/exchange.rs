//! Exchange: merges partitioned producer threads back into one ordered
//! vector stream.
//!
//! Producers (e.g. the parallel scan in `scc-storage`) run on their own
//! threads and send `(sequence, Result<Vec<Batch>>)` pairs over a
//! bounded channel; the exchange reorders them and emits batches in
//! strictly increasing sequence order. The consumer side therefore sees
//! *exactly* the serial stream — same batch boundaries, same row order,
//! and the same first error at the same point — regardless of worker
//! count or scheduling, which is what makes parallel plans drop-in
//! replacements for serial ones.
//!
//! Errors travel in-band: a partition that fails sends `Err` under its
//! sequence number, and the exchange surfaces it only when that
//! sequence becomes next, then shuts the pipeline down (drops the
//! receiver so producers unblock, joins the workers). Worker *panics*
//! are propagated on join rather than silently truncating the stream.

use crate::batch::Batch;
use crate::explain::{ExplainNode, OpProfile};
use crate::ops::Operator;
use scc_core::Error;
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::Receiver;
use std::thread::JoinHandle;

/// One partition's payload: its position in the serial order and the
/// batches it produced (or the error that stopped it).
pub type Partition = (u64, Result<Vec<Batch>, Error>);

/// The ordered-merge operator over partitioned producer threads.
pub struct Exchange {
    rx: Option<Receiver<Partition>>,
    workers: Vec<JoinHandle<()>>,
    n_workers: usize,
    /// Partitions received ahead of their turn, keyed by sequence.
    pending: BTreeMap<u64, Result<Vec<Batch>, Error>>,
    /// Batches of the current partition, drained one per `try_next`.
    ready: VecDeque<Batch>,
    next_seq: u64,
    total_seqs: u64,
    done: bool,
    profile: OpProfile,
}

// Exchanges (and the plans built on them) can themselves move across
// threads.
const _: () = {
    const fn check<T: Send>() {}
    check::<Exchange>();
};

impl Exchange {
    /// Builds an exchange expecting partitions `0..total_seqs` from the
    /// channel, with `workers` the producer threads to join at end of
    /// stream (or on shutdown).
    pub fn new(total_seqs: u64, rx: Receiver<Partition>, workers: Vec<JoinHandle<()>>) -> Self {
        let n_workers = workers.len();
        Self {
            rx: Some(rx),
            workers,
            n_workers,
            pending: BTreeMap::new(),
            ready: VecDeque::new(),
            next_seq: 0,
            total_seqs,
            done: false,
            profile: OpProfile::default(),
        }
    }

    /// Number of producer threads feeding this exchange.
    pub fn workers(&self) -> usize {
        self.n_workers
    }

    /// Drops the receiver (unblocking any producer parked on the bounded
    /// channel, whose next send then fails) and joins the workers,
    /// propagating a worker panic unless already unwinding.
    fn shutdown(&mut self) {
        self.rx = None;
        for handle in self.workers.drain(..) {
            if let Err(payload) = handle.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }

    fn produce(&mut self) -> Result<Option<Batch>, Error> {
        if self.done {
            return Ok(None);
        }
        loop {
            if let Some(batch) = self.ready.pop_front() {
                return Ok(Some(batch));
            }
            if self.next_seq >= self.total_seqs {
                self.done = true;
                self.shutdown();
                return Ok(None);
            }
            if let Some(result) = self.pending.remove(&self.next_seq) {
                self.next_seq += 1;
                match result {
                    Ok(batches) => self.ready.extend(batches),
                    Err(e) => {
                        self.done = true;
                        self.shutdown();
                        return Err(e);
                    }
                }
                continue;
            }
            let rx = self.rx.as_ref().expect("receiver alive while partitions outstanding");
            match rx.recv() {
                Ok((seq, result)) => {
                    self.pending.insert(seq, result);
                }
                Err(_) => {
                    // Every sender hung up with partitions still owed:
                    // a worker died. Joining surfaces its panic; if all
                    // joins succeed the producers were miswired.
                    self.done = true;
                    self.shutdown();
                    panic!(
                        "exchange producers disconnected at partition {} of {}",
                        self.next_seq, self.total_seqs
                    );
                }
            }
        }
    }
}

impl Operator for Exchange {
    fn try_next(&mut self) -> Result<Option<Batch>, Error> {
        let start = scc_obs::clock();
        let out = self.produce();
        self.profile.record(start, &out);
        out
    }

    fn label(&self) -> String {
        format!("Exchange(partitions={}, workers={})", self.total_seqs, self.n_workers)
    }

    fn profile(&self) -> OpProfile {
        self.profile
    }

    fn explain(&self) -> ExplainNode {
        ExplainNode::leaf(self.label(), self.profile)
    }
}

impl Drop for Exchange {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Vector;
    use crate::ops::try_collect;
    use std::sync::mpsc::sync_channel;

    fn batch(values: Vec<i64>) -> Batch {
        Batch::new(vec![Vector::I64(values)])
    }

    #[test]
    fn reorders_partitions_into_serial_order() {
        let (tx, rx) = sync_channel::<Partition>(8);
        // Deliver out of order: 2, 0, 1.
        tx.send((2, Ok(vec![batch(vec![4])]))).unwrap();
        tx.send((0, Ok(vec![batch(vec![0]), batch(vec![1])]))).unwrap();
        tx.send((1, Ok(vec![]))).unwrap(); // an empty partition is fine
        drop(tx);
        let mut ex = Exchange::new(3, rx, Vec::new());
        let out = try_collect(&mut ex).unwrap();
        assert_eq!(out.col(0).as_i64(), &[0, 1, 4]);
        assert_eq!(ex.profile().rows, 3);
    }

    #[test]
    fn error_surfaces_at_its_serial_position() {
        let (tx, rx) = sync_channel::<Partition>(8);
        tx.send((1, Err(Error::UnalignedRange { start: 7 }))).unwrap();
        tx.send((0, Ok(vec![batch(vec![10])]))).unwrap();
        // Partition 2 succeeded elsewhere, but the stream must stop at 1.
        tx.send((2, Ok(vec![batch(vec![99])]))).unwrap();
        drop(tx);
        let mut ex = Exchange::new(3, rx, Vec::new());
        assert_eq!(ex.try_next().unwrap().unwrap().col(0).as_i64(), &[10]);
        assert_eq!(ex.try_next(), Err(Error::UnalignedRange { start: 7 }));
        // After the error the stream is over, not resumed mid-order.
        assert_eq!(ex.try_next(), Ok(None));
    }

    #[test]
    fn joins_real_worker_threads() {
        let (tx, rx) = sync_channel::<Partition>(2);
        let workers: Vec<_> = (0..3u64)
            .map(|seq| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    tx.send((seq, Ok(vec![batch(vec![seq as i64])]))).unwrap();
                })
            })
            .collect();
        drop(tx);
        let mut ex = Exchange::new(3, rx, workers);
        let out = try_collect(&mut ex).unwrap();
        assert_eq!(out.col(0).as_i64(), &[0, 1, 2]);
        assert_eq!(ex.workers(), 3);
    }

    #[test]
    fn dropping_undrained_exchange_unblocks_producers() {
        let (tx, rx) = sync_channel::<Partition>(1);
        let worker = std::thread::spawn(move || {
            // The bounded channel fills; once the exchange drops the
            // receiver the pending send errors and the loop exits.
            for seq in 0..100u64 {
                if tx.send((seq, Ok(vec![batch(vec![1])]))).is_err() {
                    return;
                }
            }
            panic!("send never failed: receiver leaked");
        });
        let mut ex = Exchange::new(100, rx, vec![worker]);
        assert!(ex.try_next().unwrap().is_some());
        drop(ex); // must not deadlock, and must join the worker cleanly
    }

    #[test]
    #[should_panic(expected = "worker exploded")]
    fn worker_panic_propagates() {
        let (tx, rx) = sync_channel::<Partition>(1);
        let worker = std::thread::spawn(move || {
            let _tx = tx; // hold the sender so disconnect implies death
            panic!("worker exploded");
        });
        let mut ex = Exchange::new(1, rx, vec![worker]);
        let _ = ex.try_next();
    }

    #[test]
    fn empty_exchange_ends_immediately() {
        let (tx, rx) = sync_channel::<Partition>(1);
        drop(tx);
        let mut ex = Exchange::new(0, rx, Vec::new());
        assert_eq!(ex.try_next(), Ok(None));
        assert!(ex.label().contains("partitions=0"));
    }
}
