//! Merge join over sorted inputs — the join the paper's §5 retrieval
//! query uses ("a merge-join of the postings table with the document
//! offsets"). Both inputs must be sorted ascending on their key column;
//! this is the natural join for clustered/ordered storage, needing no
//! hash table and streaming both sides.

use crate::batch::{Batch, Vector};
use crate::explain::{ExplainNode, OpProfile};
use crate::ops::Operator;

/// Inner merge join of two key-sorted inputs. Output: left columns ++
/// right columns, one row per matching pair (duplicate keys produce the
/// full cross product of their groups).
///
/// Keys are compared through [`Vector::key_at`]'s widening: `i64` keys
/// order correctly everywhere; `i32`/`u32` keys must be non-negative
/// (negative `i32` widens above the positives). All TPC-H and postings
/// keys satisfy this.
pub struct MergeJoin {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_key: usize,
    right_key: usize,
    left_buf: Option<(Batch, usize)>,
    right_buf: Option<(Batch, usize)>,
    left_done: bool,
    right_done: bool,
    /// Buffered right-side group for duplicate-key cross products.
    right_group: Option<(i64, Batch)>,
    profile: OpProfile,
}

impl MergeJoin {
    /// Builds a merge join; `left_key`/`right_key` are the sorted key
    /// columns (compared as widened i64 via [`Vector::key_at`]).
    pub fn new(
        left: impl Operator + 'static,
        right: impl Operator + 'static,
        left_key: usize,
        right_key: usize,
    ) -> Self {
        Self {
            left: Box::new(left),
            right: Box::new(right),
            left_key,
            right_key,
            left_buf: None,
            right_buf: None,
            left_done: false,
            right_done: false,
            right_group: None,
            profile: OpProfile::default(),
        }
    }

    fn fill_left(&mut self) -> Result<bool, scc_core::Error> {
        loop {
            if let Some((b, pos)) = &self.left_buf {
                if *pos < b.len() {
                    return Ok(true);
                }
            }
            if self.left_done {
                return Ok(false);
            }
            match self.left.try_next()? {
                Some(mut b) if !b.is_empty() => {
                    self.profile.values_decoded += b.ensure_values()?;
                    self.left_buf = Some((b, 0));
                }
                Some(_) => continue,
                None => {
                    self.left_done = true;
                    return Ok(false);
                }
            }
        }
    }

    fn fill_right(&mut self) -> Result<bool, scc_core::Error> {
        loop {
            if let Some((b, pos)) = &self.right_buf {
                if *pos < b.len() {
                    return Ok(true);
                }
            }
            if self.right_done {
                return Ok(false);
            }
            match self.right.try_next()? {
                Some(mut b) if !b.is_empty() => {
                    self.profile.values_decoded += b.ensure_values()?;
                    self.right_buf = Some((b, 0));
                }
                Some(_) => continue,
                None => {
                    self.right_done = true;
                    return Ok(false);
                }
            }
        }
    }

    fn left_key_at(&self) -> i64 {
        let (b, pos) = self.left_buf.as_ref().expect("filled");
        b.col(self.left_key).key_at(*pos) as i64
    }

    fn right_key_at(&self) -> i64 {
        let (b, pos) = self.right_buf.as_ref().expect("filled");
        b.col(self.right_key).key_at(*pos) as i64
    }

    /// Collects the full right-side group for `key` (may span batches).
    fn collect_right_group(&mut self, key: i64) -> Result<Batch, scc_core::Error> {
        let mut rows: Option<Batch> = None;
        while self.fill_right()? && self.right_key_at() == key {
            let (b, pos) = self.right_buf.as_mut().expect("filled");
            let start = *pos;
            let mut end = start;
            while end < b.len() && b.col(self.right_key).key_at(end) as i64 == key {
                end += 1;
            }
            *pos = end;
            let part = b.gather(&(start..end).collect::<Vec<_>>());
            match &mut rows {
                None => rows = Some(part),
                Some(acc) => {
                    for (a, c) in acc.columns.iter_mut().zip(part.columns.iter()) {
                        a.append(c);
                    }
                }
            }
        }
        Ok(rows.expect("group is non-empty by construction"))
    }
}

impl MergeJoin {
    fn produce(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        loop {
            if !self.fill_left()? {
                return Ok(None);
            }
            let lk = self.left_key_at();
            // Reuse the buffered right group if it matches; otherwise
            // advance the right side to lk.
            let group_matches = self.right_group.as_ref().is_some_and(|(k, _)| *k == lk);
            if !group_matches {
                self.right_group = None;
                loop {
                    if !self.fill_right()? {
                        return Ok(None); // right exhausted: no more matches
                    }
                    let rk = self.right_key_at();
                    if rk < lk {
                        let (b, pos) = self.right_buf.as_mut().expect("filled");
                        // Skip the whole run below lk within this batch.
                        while *pos < b.len() && (b.col(self.right_key).key_at(*pos) as i64) < lk {
                            *pos += 1;
                        }
                    } else {
                        break;
                    }
                }
                if self.right_key_at() > lk {
                    // No right match: advance left past lk.
                    let (b, pos) = self.left_buf.as_mut().expect("filled");
                    while *pos < b.len() && b.col(self.left_key).key_at(*pos) as i64 == lk {
                        *pos += 1;
                    }
                    continue;
                }
                let group = self.collect_right_group(lk)?;
                self.right_group = Some((lk, group));
            }
            // Emit the cross product of the left run (within this batch)
            // with the right group.
            let (b, pos) = self.left_buf.as_mut().expect("filled");
            let start = *pos;
            let mut end = start;
            while end < b.len() && b.col(self.left_key).key_at(end) as i64 == lk {
                end += 1;
            }
            *pos = end;
            let group = &self.right_group.as_ref().expect("set above").1;
            let g = group.len();
            let left_idx: Vec<usize> =
                (start..end).flat_map(|i| std::iter::repeat_n(i, g)).collect();
            let right_idx: Vec<usize> = (start..end).flat_map(|_| 0..g).collect();
            let mut cols: Vec<Vector> = b.columns.iter().map(|c| c.gather(&left_idx)).collect();
            cols.extend(group.columns.iter().map(|c| c.gather(&right_idx)));
            return Ok(Some(Batch::new(cols)));
        }
    }
}

impl Operator for MergeJoin {
    fn try_next(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        let start = scc_obs::clock();
        let out = self.produce();
        self.profile.record(start, &out);
        out
    }

    fn label(&self) -> String {
        "MergeJoin".into()
    }

    fn profile(&self) -> OpProfile {
        self.profile
    }

    fn explain(&self) -> ExplainNode {
        ExplainNode::new(
            self.label(),
            self.profile,
            vec![self.left.explain(), self.right.explain()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{collect, source::MemSource};

    fn sorted_src(keys: Vec<i64>, pay: Vec<i64>, vs: usize) -> MemSource {
        MemSource::from_i64(vec![keys, pay], vs)
    }

    #[test]
    fn basic_inner_merge() {
        let left = sorted_src(vec![1, 2, 4, 6], vec![10, 20, 40, 60], 2);
        let right = sorted_src(vec![2, 3, 4, 4, 7], vec![200, 300, 400, 401, 700], 2);
        let mut join = MergeJoin::new(left, right, 0, 0);
        let out = collect(&mut join);
        // Matches: (2,200), (4,400), (4,401).
        assert_eq!(out.col(0).as_i64(), &[2, 4, 4]);
        assert_eq!(out.col(1).as_i64(), &[20, 40, 40]);
        assert_eq!(out.col(3).as_i64(), &[200, 400, 401]);
    }

    #[test]
    fn duplicate_keys_cross_product() {
        let left = sorted_src(vec![5, 5, 5], vec![1, 2, 3], 1);
        let right = sorted_src(vec![5, 5], vec![10, 20], 1);
        let mut join = MergeJoin::new(left, right, 0, 0);
        let out = collect(&mut join);
        assert_eq!(out.len(), 6);
        let pairs: Vec<(i64, i64)> =
            out.col(1).as_i64().iter().zip(out.col(3).as_i64()).map(|(&a, &b)| (a, b)).collect();
        for l in 1..=3 {
            for r in [10, 20] {
                assert!(pairs.contains(&(l, r)), "missing ({l},{r})");
            }
        }
    }

    #[test]
    fn disjoint_inputs_produce_nothing() {
        let left = sorted_src(vec![1, 3, 5], vec![0; 3], 2);
        let right = sorted_src(vec![2, 4, 6], vec![0; 3], 2);
        let mut join = MergeJoin::new(left, right, 0, 0);
        assert!(join.next().is_none());
    }

    #[test]
    fn agrees_with_hash_join() {
        use crate::ops::join::{HashJoin, JoinKind};
        let lk: Vec<i64> = (0..300).map(|i| (i / 3) as i64).collect();
        let lp: Vec<i64> = (0..300).collect();
        let rk: Vec<i64> = (0..150).map(|i| (i / 2 + 20) as i64).collect();
        let rp: Vec<i64> = (0..150).map(|i| i + 5000).collect();
        let mut merge = MergeJoin::new(
            sorted_src(lk.clone(), lp.clone(), 7),
            sorted_src(rk.clone(), rp.clone(), 5),
            0,
            0,
        );
        let mut hash = HashJoin::new(
            sorted_src(lk, lp, 7),
            sorted_src(rk, rp, 5),
            vec![0],
            vec![0],
            JoinKind::Inner,
        );
        let mut m_rows: Vec<(i64, i64, i64)> = {
            let out = collect(&mut merge);
            (0..out.len())
                .map(|i| (out.col(0).as_i64()[i], out.col(1).as_i64()[i], out.col(3).as_i64()[i]))
                .collect()
        };
        let mut h_rows: Vec<(i64, i64, i64)> = {
            let out = collect(&mut hash);
            (0..out.len())
                .map(|i| (out.col(0).as_i64()[i], out.col(1).as_i64()[i], out.col(3).as_i64()[i]))
                .collect()
        };
        m_rows.sort_unstable();
        h_rows.sort_unstable();
        assert_eq!(m_rows, h_rows);
    }

    #[test]
    fn runs_spanning_batch_boundaries() {
        // Key 7 spans two left batches and two right batches.
        let left = sorted_src(vec![7; 6], (0..6).collect(), 2);
        let right = sorted_src(vec![7; 4], (10..14).collect(), 3);
        let mut join = MergeJoin::new(left, right, 0, 0);
        let out = collect(&mut join);
        assert_eq!(out.len(), 24);
    }

    #[test]
    fn empty_sides() {
        let left = sorted_src(vec![], vec![], 2);
        let right = sorted_src(vec![1], vec![1], 2);
        assert!(MergeJoin::new(left, right, 0, 0).next().is_none());
        let left = sorted_src(vec![1], vec![1], 2);
        let right = sorted_src(vec![], vec![], 2);
        assert!(MergeJoin::new(left, right, 0, 0).next().is_none());
    }
}
