//! Sorting and top-N.

use crate::batch::{Batch, Vector};
use crate::explain::{ExplainNode, OpProfile};
use crate::ops::Operator;
use std::cmp::Ordering;

/// One sort key: column index and direction.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    /// Column to order by.
    pub col: usize,
    /// Descending when true.
    pub desc: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(col: usize) -> Self {
        Self { col, desc: false }
    }

    /// Descending key.
    pub fn desc(col: usize) -> Self {
        Self { col, desc: true }
    }
}

fn cmp_at(v: &Vector, a: usize, b: usize) -> Ordering {
    match v {
        Vector::I32(x) => x[a].cmp(&x[b]),
        Vector::I64(x) => x[a].cmp(&x[b]),
        Vector::U32(x) => x[a].cmp(&x[b]),
        Vector::F64(x) => x[a].partial_cmp(&x[b]).unwrap_or(Ordering::Equal),
        Vector::Mask(x) => x[a].cmp(&x[b]),
        Vector::Lazy { .. } => panic!("cmp_at on a lazy column: call Batch::ensure_values first"),
    }
}

fn sorted_indices(data: &Batch, keys: &[SortKey]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| {
        for k in keys {
            let ord = cmp_at(data.col(k.col), a, b);
            let ord = if k.desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    idx
}

/// Full materializing sort. The child operator is retained after the
/// sort runs so post-execution [`Operator::explain`] sees the whole
/// plan.
pub struct OrderBy {
    input: Box<dyn Operator>,
    keys: Vec<SortKey>,
    out: Option<Batch>,
    done: bool,
    profile: OpProfile,
}

impl OrderBy {
    /// Builds a sort over `input`.
    pub fn new(input: impl Operator + 'static, keys: Vec<SortKey>) -> Self {
        Self { input: Box::new(input), keys, out: None, done: false, profile: OpProfile::default() }
    }

    fn produce(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        if !self.done {
            self.done = true;
            let data = crate::ops::try_collect(self.input.as_mut())?;
            if !data.is_empty() {
                let idx = sorted_indices(&data, &self.keys);
                self.out = Some(data.gather(&idx));
            }
        }
        Ok(self.out.take().filter(|b| !b.is_empty()))
    }
}

impl Operator for OrderBy {
    fn try_next(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        let start = scc_obs::clock();
        let out = self.produce();
        self.profile.record(start, &out);
        out
    }

    fn label(&self) -> String {
        format!("OrderBy(keys={})", self.keys.len())
    }

    fn profile(&self) -> OpProfile {
        self.profile
    }

    fn explain(&self) -> ExplainNode {
        ExplainNode::new(self.label(), self.profile, vec![self.input.explain()])
    }
}

/// Sort + limit: the top `n` rows under the sort order.
pub struct TopN {
    inner: OrderBy,
    n: usize,
    profile: OpProfile,
}

impl TopN {
    /// Builds a top-N over `input`.
    pub fn new(input: impl Operator + 'static, keys: Vec<SortKey>, n: usize) -> Self {
        Self { inner: OrderBy::new(input, keys), n, profile: OpProfile::default() }
    }

    fn produce(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        let Some(batch) = self.inner.try_next()? else {
            return Ok(None);
        };
        if batch.len() <= self.n {
            return Ok(Some(batch));
        }
        let idx: Vec<usize> = (0..self.n).collect();
        Ok(Some(batch.gather(&idx)))
    }
}

impl Operator for TopN {
    fn try_next(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        let start = scc_obs::clock();
        let out = self.produce();
        self.profile.record(start, &out);
        out
    }

    fn label(&self) -> String {
        format!("TopN(n={}, keys={})", self.n, self.inner.keys.len())
    }

    fn profile(&self) -> OpProfile {
        self.profile
    }

    fn explain(&self) -> ExplainNode {
        ExplainNode::new(self.label(), self.profile, vec![self.inner.explain()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::source::MemSource;

    #[test]
    fn multi_key_sort() {
        let a = vec![2i64, 1, 2, 1];
        let b = vec![5i64, 9, 3, 7];
        let src = MemSource::from_i64(vec![a, b], 2);
        let mut sort = OrderBy::new(Box::new(src), vec![SortKey::asc(0), SortKey::desc(1)]);
        let out = sort.next().unwrap();
        assert_eq!(out.col(0).as_i64(), &[1, 1, 2, 2]);
        assert_eq!(out.col(1).as_i64(), &[9, 7, 5, 3]);
        assert!(sort.next().is_none());
    }

    #[test]
    fn top_n_truncates() {
        let src = MemSource::from_i64(vec![(0..100).collect()], 7);
        let mut top = TopN::new(Box::new(src), vec![SortKey::desc(0)], 3);
        let out = top.next().unwrap();
        assert_eq!(out.col(0).as_i64(), &[99, 98, 97]);
    }

    #[test]
    fn top_n_smaller_input_passes_through() {
        let src = MemSource::from_i64(vec![vec![3, 1, 2]], 8);
        let mut top = TopN::new(Box::new(src), vec![SortKey::asc(0)], 10);
        assert_eq!(top.next().unwrap().col(0).as_i64(), &[1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let src = MemSource::from_i64(vec![vec![]], 8);
        let mut sort = OrderBy::new(Box::new(src), vec![SortKey::asc(0)]);
        assert!(sort.next().is_none());
    }

    #[test]
    fn float_keys_sort() {
        let src = MemSource::new(vec![Vector::F64(vec![2.5, -1.0, 0.0])], 8);
        let mut sort = OrderBy::new(Box::new(src), vec![SortKey::asc(0)]);
        assert_eq!(sort.next().unwrap().col(0).as_f64(), &[-1.0, 0.0, 2.5]);
    }
}
