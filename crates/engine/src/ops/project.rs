//! Projection: computes one output vector per expression.

use crate::batch::Batch;
use crate::explain::{ExplainNode, OpProfile};
use crate::expr::Expr;
use crate::ops::Operator;

/// Map operator: output columns are the given expressions evaluated over
/// each input vector.
pub struct Project {
    input: Box<dyn Operator>,
    exprs: Vec<Expr>,
    profile: OpProfile,
}

impl Project {
    /// Builds a projection over `input`.
    pub fn new(input: impl Operator + 'static, exprs: Vec<Expr>) -> Self {
        Self { input: Box::new(input), exprs, profile: OpProfile::default() }
    }

    fn produce(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        let Some(mut batch) = self.input.try_next()? else {
            return Ok(None);
        };
        self.profile.values_decoded += batch.ensure_values()?;
        Ok(Some(Batch::new(self.exprs.iter().map(|e| e.eval(&batch)).collect())))
    }
}

impl Operator for Project {
    fn try_next(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        let start = scc_obs::clock();
        let out = self.produce();
        self.profile.record(start, &out);
        out
    }

    fn label(&self) -> String {
        format!("Project(exprs={})", self.exprs.len())
    }

    fn profile(&self) -> OpProfile {
        self.profile
    }

    fn explain(&self) -> ExplainNode {
        ExplainNode::new(self.label(), self.profile, vec![self.input.explain()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{collect, source::MemSource};

    #[test]
    fn computes_expressions() {
        let src = MemSource::from_i64(vec![(1..=4).collect()], 2);
        let mut proj =
            Project::new(Box::new(src), vec![Expr::col(0), Expr::col(0).mul(Expr::col(0))]);
        let out = collect(&mut proj);
        assert_eq!(out.col(0).as_i64(), &[1, 2, 3, 4]);
        assert_eq!(out.col(1).as_i64(), &[1, 4, 9, 16]);
    }

    #[test]
    fn can_drop_and_reorder_columns() {
        let src = MemSource::from_i64(vec![vec![1, 2], vec![10, 20], vec![100, 200]], 8);
        let mut proj = Project::new(Box::new(src), vec![Expr::col(2), Expr::col(0)]);
        let out = collect(&mut proj);
        assert_eq!(out.col(0).as_i64(), &[100, 200]);
        assert_eq!(out.col(1).as_i64(), &[1, 2]);
    }
}
