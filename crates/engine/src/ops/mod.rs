//! Volcano-style vector-at-a-time operators.

use crate::batch::Batch;

pub mod aggregate;
pub mod join;
pub mod merge_join;
pub mod project;
pub mod select;
pub mod sort;
pub mod source;

/// A vectorized Volcano operator: `next()` yields a [`Batch`] of tuples
/// (typically [`crate::VECTOR_SIZE`] rows) or `None` at end of stream.
pub trait Operator {
    /// Pulls the next vector of tuples.
    fn next(&mut self) -> Option<Batch>;
}

impl<T: Operator + ?Sized> Operator for Box<T> {
    fn next(&mut self) -> Option<Batch> {
        (**self).next()
    }
}

/// Drains an operator into a single materialized batch (test/report
/// helper, not a pipeline stage).
pub fn collect(op: &mut dyn Operator) -> Batch {
    let mut out: Option<Batch> = None;
    while let Some(batch) = op.next() {
        match &mut out {
            None => out = Some(batch),
            Some(acc) => {
                for (a, b) in acc.columns.iter_mut().zip(batch.columns.iter()) {
                    a.append(b);
                }
            }
        }
    }
    out.unwrap_or_else(|| Batch::new(vec![]))
}
