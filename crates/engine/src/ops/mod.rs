//! Volcano-style vector-at-a-time operators.

use crate::batch::Batch;
use crate::explain::{ExplainNode, OpProfile};
use scc_core::Error;

pub mod aggregate;
pub mod exchange;
pub mod join;
pub mod merge_join;
pub mod project;
pub mod select;
pub mod sort;
pub mod source;

/// A vectorized Volcano operator: pulls yield a [`Batch`] of tuples
/// (typically [`crate::VECTOR_SIZE`] rows) or `None` at end of stream.
///
/// [`try_next`](Operator::try_next) is the required method: operators that
/// read storage surface corruption and I/O failures as [`Error`] instead
/// of panicking, and every relational operator propagates its child's
/// errors, so a checksum mismatch deep in a scan travels intact to the
/// root of the pipeline. [`next`](Operator::next) is the infallible
/// convenience wrapper used by bench kernels and trusted in-memory
/// pipelines; it panics with the error's message.
pub trait Operator {
    /// Pulls the next vector of tuples, or the first error raised beneath
    /// this operator.
    fn try_next(&mut self) -> Result<Option<Batch>, Error>;

    /// Infallible [`try_next`](Operator::try_next); panics on error.
    fn next(&mut self) -> Option<Batch> {
        self.try_next().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Short human-readable description for EXPLAIN output, e.g.
    /// `HashAggregate(keys=2, aggs=8)`.
    fn label(&self) -> String {
        "Operator".into()
    }

    /// This operator's execution counters so far. The default (for
    /// operators that predate instrumentation or don't track one)
    /// reports an empty profile.
    fn profile(&self) -> OpProfile {
        OpProfile::default()
    }

    /// The EXPLAIN ANALYZE tree rooted at this operator, reflecting
    /// execution so far. Call after draining the plan for a complete
    /// picture.
    fn explain(&self) -> ExplainNode {
        ExplainNode::leaf(self.label(), self.profile())
    }
}

impl<T: Operator + ?Sized> Operator for Box<T> {
    fn try_next(&mut self) -> Result<Option<Batch>, Error> {
        (**self).try_next()
    }

    fn label(&self) -> String {
        (**self).label()
    }

    fn profile(&self) -> OpProfile {
        (**self).profile()
    }

    fn explain(&self) -> ExplainNode {
        (**self).explain()
    }
}

/// Drains an operator into a single materialized batch (test/report
/// helper, not a pipeline stage); panics on pipeline errors.
pub fn collect(op: &mut dyn Operator) -> Batch {
    try_collect(op).unwrap_or_else(|e| panic!("{e}"))
}

/// Drains an operator into a single materialized batch, stopping at the
/// first error raised anywhere in the pipeline.
pub fn try_collect(op: &mut dyn Operator) -> Result<Batch, Error> {
    let mut out: Option<Batch> = None;
    while let Some(mut batch) = op.try_next()? {
        // Batches can still carry compressed columns; collecting is a
        // value consumer, so decode them here.
        batch.ensure_values()?;
        match &mut out {
            None => out = Some(batch),
            Some(acc) => {
                for (a, b) in acc.columns.iter_mut().zip(batch.columns.iter()) {
                    a.append(b);
                }
            }
        }
    }
    Ok(out.unwrap_or_else(|| Batch::new(vec![])))
}
