//! In-memory table source: slices materialized columns into vectors.

use crate::batch::{Batch, Vector};
use crate::explain::OpProfile;
use crate::ops::Operator;

/// A source over fully materialized columns, yielding `vector_size`-row
/// batches. The compressed scan in `scc-storage` implements the same
/// [`Operator`] interface against disk segments.
pub struct MemSource {
    columns: Vec<Vector>,
    vector_size: usize,
    pos: usize,
    len: usize,
    profile: OpProfile,
}

impl MemSource {
    /// Builds a source from column vectors (all equal length).
    pub fn new(columns: Vec<Vector>, vector_size: usize) -> Self {
        let len = columns.first().map_or(0, Vector::len);
        assert!(columns.iter().all(|c| c.len() == len), "ragged columns");
        assert!(vector_size > 0);
        Self { columns, vector_size, pos: 0, len, profile: OpProfile::default() }
    }

    /// Convenience constructor from i64 columns.
    pub fn from_i64(columns: Vec<Vec<i64>>, vector_size: usize) -> Self {
        Self::new(columns.into_iter().map(Vector::I64).collect(), vector_size)
    }

    fn produce(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        if self.pos >= self.len {
            return Ok(None);
        }
        let take = self.vector_size.min(self.len - self.pos);
        let indices: Vec<usize> = (self.pos..self.pos + take).collect();
        self.pos += take;
        Ok(Some(Batch::new(self.columns.iter().map(|c| c.gather(&indices)).collect())))
    }
}

impl Operator for MemSource {
    fn try_next(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        let start = scc_obs::clock();
        let out = self.produce();
        self.profile.record(start, &out);
        out
    }

    fn label(&self) -> String {
        format!("MemSource(cols={})", self.columns.len())
    }

    fn profile(&self) -> OpProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect;

    #[test]
    fn slices_into_vectors() {
        let mut src = MemSource::from_i64(vec![(0..2500).collect()], 1024);
        let sizes: Vec<usize> = std::iter::from_fn(|| src.next().map(|b| b.len())).collect();
        assert_eq!(sizes, vec![1024, 1024, 452]);
    }

    #[test]
    fn collect_reassembles() {
        let data: Vec<i64> = (0..5000).collect();
        let mut src = MemSource::from_i64(vec![data.clone()], 700);
        let all = collect(&mut src);
        assert_eq!(all.col(0).as_i64(), &data[..]);
    }

    #[test]
    fn empty_source() {
        let mut src = MemSource::from_i64(vec![vec![]], 16);
        assert!(src.next().is_none());
    }
}
