//! Hash aggregation with grouping.

use crate::batch::{Batch, ColType, Vector};
use crate::explain::{ExplainNode, OpProfile};
use crate::expr::Expr;
use crate::ops::Operator;
use std::collections::HashMap;

/// An aggregate over an expression.
#[derive(Debug, Clone)]
pub enum AggExpr {
    /// Sum (integer or float, from the expression's type).
    Sum(Expr),
    /// Row count.
    Count,
    /// Mean as f64 (input promoted).
    Avg(Expr),
    /// Minimum.
    Min(Expr),
    /// Maximum.
    Max(Expr),
}

#[derive(Debug, Clone, Copy)]
enum Acc {
    SumI64(i64),
    SumF64(f64),
    Count(i64),
    Avg(f64, i64),
    MinI64(i64),
    MinF64(f64),
    MaxI64(i64),
    MaxF64(f64),
}

impl Acc {
    fn update(&mut self, v: &Vector, row: usize) {
        match self {
            Acc::SumI64(s) => *s += value_i64(v, row),
            Acc::SumF64(s) => *s += value_f64(v, row),
            Acc::Count(c) => *c += 1,
            Acc::Avg(s, c) => {
                *s += value_f64(v, row);
                *c += 1;
            }
            Acc::MinI64(m) => *m = (*m).min(value_i64(v, row)),
            Acc::MinF64(m) => *m = m.min(value_f64(v, row)),
            Acc::MaxI64(m) => *m = (*m).max(value_i64(v, row)),
            Acc::MaxF64(m) => *m = m.max(value_f64(v, row)),
        }
    }
}

#[inline]
fn value_i64(v: &Vector, row: usize) -> i64 {
    match v {
        Vector::I32(x) => x[row] as i64,
        Vector::I64(x) => x[row],
        Vector::U32(x) => x[row] as i64,
        _ => panic!("integer aggregate over non-integer input"),
    }
}

#[inline]
fn value_f64(v: &Vector, row: usize) -> f64 {
    match v {
        Vector::I32(x) => x[row] as f64,
        Vector::I64(x) => x[row] as f64,
        Vector::U32(x) => x[row] as f64,
        Vector::F64(x) => x[row],
        Vector::Mask(_) | Vector::Lazy { .. } => panic!("aggregate over non-value vector"),
    }
}

fn fresh_acc(agg: &AggExpr, input: &Vector) -> Acc {
    let is_float = matches!(input, Vector::F64(_));
    match agg {
        AggExpr::Sum(_) if is_float => Acc::SumF64(0.0),
        AggExpr::Sum(_) => Acc::SumI64(0),
        AggExpr::Count => Acc::Count(0),
        AggExpr::Avg(_) => Acc::Avg(0.0, 0),
        AggExpr::Min(_) if is_float => Acc::MinF64(f64::INFINITY),
        AggExpr::Min(_) => Acc::MinI64(i64::MAX),
        AggExpr::Max(_) if is_float => Acc::MaxF64(f64::NEG_INFINITY),
        AggExpr::Max(_) => Acc::MaxI64(i64::MIN),
    }
}

/// Blocking hash group-by. Consumes the whole input on the first `next()`
/// call and emits one batch: the key columns (original types preserved)
/// followed by one column per aggregate.
pub struct HashAggregate {
    input: Box<dyn Operator>,
    keys: Vec<Expr>,
    aggs: Vec<AggExpr>,
    done: bool,
    profile: OpProfile,
}

impl HashAggregate {
    /// Builds a group-by over `input`. With no keys, produces exactly one
    /// global group (even on empty input there is one output row, matching
    /// SQL aggregate semantics only for COUNT; sums of empty input report
    /// their identity).
    pub fn new(input: impl Operator + 'static, keys: Vec<Expr>, aggs: Vec<AggExpr>) -> Self {
        Self { input: Box::new(input), keys, aggs, done: false, profile: OpProfile::default() }
    }

    fn produce(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut groups: HashMap<Box<[u64]>, usize> = HashMap::new();
        let mut key_vals: Vec<Box<[u64]>> = Vec::new();
        let mut accs: Vec<Vec<Acc>> = Vec::new();
        let mut key_types: Vec<ColType> = Vec::new();
        let mut key_buf: Vec<u64> = vec![0; self.keys.len()];
        while let Some(mut batch) = self.input.try_next()? {
            self.profile.values_decoded += batch.ensure_values()?;
            let key_vecs: Vec<Vector> = self.keys.iter().map(|k| k.eval(&batch)).collect();
            let agg_vecs: Vec<Vector> = self
                .aggs
                .iter()
                .map(|a| match a {
                    AggExpr::Sum(e) | AggExpr::Avg(e) | AggExpr::Min(e) | AggExpr::Max(e) => {
                        e.eval(&batch)
                    }
                    AggExpr::Count => Vector::I64(vec![0; batch.len()]),
                })
                .collect();
            if key_types.is_empty() {
                key_types = key_vecs.iter().map(Vector::col_type).collect();
            }
            for row in 0..batch.len() {
                for (slot, kv) in key_buf.iter_mut().zip(key_vecs.iter()) {
                    *slot = kv.key_at(row);
                }
                let gid = match groups.get(key_buf.as_slice()) {
                    Some(&g) => g,
                    None => {
                        let g = key_vals.len();
                        let key: Box<[u64]> = key_buf.clone().into_boxed_slice();
                        groups.insert(key.clone(), g);
                        key_vals.push(key);
                        accs.push(
                            self.aggs
                                .iter()
                                .zip(agg_vecs.iter())
                                .map(|(a, v)| fresh_acc(a, v))
                                .collect(),
                        );
                        g
                    }
                };
                for (acc, v) in accs[gid].iter_mut().zip(agg_vecs.iter()) {
                    acc.update(v, row);
                }
            }
        }
        if !self.keys.is_empty() && key_vals.is_empty() {
            // Keyed group-by over an empty input: no groups, no rows.
            return Ok(None);
        }
        if self.keys.is_empty() && key_vals.is_empty() {
            // Global aggregate over empty input: one identity row.
            key_vals.push(Box::new([]));
            accs.push(
                self.aggs
                    .iter()
                    .map(|a| match a {
                        AggExpr::Count => Acc::Count(0),
                        AggExpr::Sum(_) => Acc::SumI64(0),
                        AggExpr::Avg(_) => Acc::Avg(0.0, 0),
                        AggExpr::Min(_) => Acc::MinI64(i64::MAX),
                        AggExpr::Max(_) => Acc::MaxI64(i64::MIN),
                    })
                    .collect(),
            );
        }
        let n = key_vals.len();
        let mut columns: Vec<Vector> = Vec::with_capacity(self.keys.len() + self.aggs.len());
        for (k, ty) in key_types.iter().enumerate() {
            columns.push(rebuild_key_column(&key_vals, k, *ty));
        }
        for a in 0..self.aggs.len() {
            columns.push(rebuild_agg_column(&accs, a, n));
        }
        Ok(Some(Batch::new(columns)))
    }
}

impl Operator for HashAggregate {
    fn try_next(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        let start = scc_obs::clock();
        let out = self.produce();
        self.profile.record(start, &out);
        out
    }

    fn label(&self) -> String {
        format!("HashAggregate(keys={}, aggs={})", self.keys.len(), self.aggs.len())
    }

    fn profile(&self) -> OpProfile {
        self.profile
    }

    fn explain(&self) -> ExplainNode {
        ExplainNode::new(self.label(), self.profile, vec![self.input.explain()])
    }
}

fn rebuild_key_column(key_vals: &[Box<[u64]>], k: usize, ty: ColType) -> Vector {
    match ty {
        ColType::I32 => Vector::I32(key_vals.iter().map(|kv| kv[k] as u32 as i32).collect()),
        ColType::I64 => Vector::I64(key_vals.iter().map(|kv| kv[k] as i64).collect()),
        ColType::U32 => Vector::U32(key_vals.iter().map(|kv| kv[k] as u32).collect()),
        ColType::F64 => Vector::F64(key_vals.iter().map(|kv| f64::from_bits(kv[k])).collect()),
    }
}

fn rebuild_agg_column(accs: &[Vec<Acc>], a: usize, n: usize) -> Vector {
    debug_assert_eq!(accs.len(), n);
    match accs[0][a] {
        Acc::SumI64(_) => Vector::I64(
            accs.iter()
                .map(|g| match g[a] {
                    Acc::SumI64(s) => s,
                    _ => unreachable!(),
                })
                .collect(),
        ),
        Acc::SumF64(_) => Vector::F64(
            accs.iter()
                .map(|g| match g[a] {
                    Acc::SumF64(s) => s,
                    _ => unreachable!(),
                })
                .collect(),
        ),
        Acc::Count(_) => Vector::I64(
            accs.iter()
                .map(|g| match g[a] {
                    Acc::Count(c) => c,
                    _ => unreachable!(),
                })
                .collect(),
        ),
        Acc::Avg(..) => Vector::F64(
            accs.iter()
                .map(|g| match g[a] {
                    Acc::Avg(s, c) => {
                        if c == 0 {
                            f64::NAN
                        } else {
                            s / c as f64
                        }
                    }
                    _ => unreachable!(),
                })
                .collect(),
        ),
        Acc::MinI64(_) => Vector::I64(
            accs.iter()
                .map(|g| match g[a] {
                    Acc::MinI64(m) => m,
                    _ => unreachable!(),
                })
                .collect(),
        ),
        Acc::MinF64(_) => Vector::F64(
            accs.iter()
                .map(|g| match g[a] {
                    Acc::MinF64(m) => m,
                    _ => unreachable!(),
                })
                .collect(),
        ),
        Acc::MaxI64(_) => Vector::I64(
            accs.iter()
                .map(|g| match g[a] {
                    Acc::MaxI64(m) => m,
                    _ => unreachable!(),
                })
                .collect(),
        ),
        Acc::MaxF64(_) => Vector::F64(
            accs.iter()
                .map(|g| match g[a] {
                    Acc::MaxF64(m) => m,
                    _ => unreachable!(),
                })
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::source::MemSource;

    #[test]
    fn group_by_with_sums_and_counts() {
        // keys 0,1,0,1,...; values 0..10
        let keys: Vec<i64> = (0..10).map(|i| i % 2).collect();
        let vals: Vec<i64> = (0..10).collect();
        let src = MemSource::from_i64(vec![keys, vals], 3);
        let mut agg = HashAggregate::new(
            Box::new(src),
            vec![Expr::col(0)],
            vec![AggExpr::Sum(Expr::col(1)), AggExpr::Count, AggExpr::Avg(Expr::col(1))],
        );
        let out = agg.next().unwrap();
        assert!(agg.next().is_none());
        assert_eq!(out.len(), 2);
        // Groups in first-seen order: key 0 then key 1.
        assert_eq!(out.col(0).as_i64(), &[0, 1]);
        assert_eq!(out.col(1).as_i64(), &[20, 25]); // 0+2+4+6+8, 1+3+5+7+9
        assert_eq!(out.col(2).as_i64(), &[5, 5]);
        assert_eq!(out.col(3).as_f64(), &[4.0, 5.0]);
    }

    #[test]
    fn composite_keys() {
        let a: Vec<i64> = vec![1, 1, 2, 2, 1];
        let b: Vec<i64> = vec![10, 20, 10, 10, 10];
        let src = MemSource::from_i64(vec![a, b], 2);
        let mut agg = HashAggregate::new(
            Box::new(src),
            vec![Expr::col(0), Expr::col(1)],
            vec![AggExpr::Count],
        );
        let out = agg.next().unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.col(2).as_i64(), &[2, 1, 2]); // (1,10), (1,20), (2,10)
    }

    #[test]
    fn min_max_float() {
        let src = MemSource::new(vec![Vector::F64(vec![3.5, -1.0, 2.0])], 8);
        let mut agg = HashAggregate::new(
            Box::new(src),
            vec![],
            vec![AggExpr::Min(Expr::col(0)), AggExpr::Max(Expr::col(0))],
        );
        let out = agg.next().unwrap();
        assert_eq!(out.col(0).as_f64(), &[-1.0]);
        assert_eq!(out.col(1).as_f64(), &[3.5]);
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let src = MemSource::from_i64(vec![vec![]], 8);
        let mut agg = HashAggregate::new(Box::new(src), vec![], vec![AggExpr::Count]);
        let out = agg.next().unwrap();
        assert_eq!(out.col(0).as_i64(), &[0]);
    }

    #[test]
    fn float_sum_typed_by_input() {
        let src = MemSource::new(vec![Vector::F64(vec![0.5, 0.25])], 8);
        let mut agg = HashAggregate::new(Box::new(src), vec![], vec![AggExpr::Sum(Expr::col(0))]);
        let out = agg.next().unwrap();
        assert_eq!(out.col(0).as_f64(), &[0.75]);
    }
}
