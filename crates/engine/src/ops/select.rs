//! Selection: filters rows by a mask-valued expression and compacts the
//! survivors into dense output vectors.

use crate::batch::Batch;
use crate::explain::{ExplainNode, OpProfile};
use crate::expr::Expr;
use crate::ops::Operator;

/// Filter operator. Empty result vectors are skipped, so downstream
/// operators always see non-empty batches.
pub struct Select {
    input: Box<dyn Operator>,
    predicate: Expr,
    profile: OpProfile,
}

impl Select {
    /// Builds a filter over `input`.
    pub fn new(input: impl Operator + 'static, predicate: Expr) -> Self {
        Self { input: Box::new(input), predicate, profile: OpProfile::default() }
    }

    fn produce(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        loop {
            let Some(batch) = self.input.try_next()? else {
                return Ok(None);
            };
            let mask_v = self.predicate.eval(&batch);
            let mask = mask_v.as_mask();
            // Predicated compaction (§2.2 / Ross PODS'02): always store
            // the index, advance the cursor by the boolean — no
            // data-dependent branch for the CPU to mispredict.
            let mut indices = vec![0usize; batch.len()];
            let mut j = 0usize;
            for (i, &m) in mask.iter().enumerate() {
                indices[j] = i;
                j += m as usize;
            }
            indices.truncate(j);
            if indices.is_empty() {
                continue;
            }
            if indices.len() == batch.len() {
                return Ok(Some(batch));
            }
            return Ok(Some(batch.gather(&indices)));
        }
    }
}

impl Operator for Select {
    fn try_next(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        let start = scc_obs::clock();
        let out = self.produce();
        self.profile.record(start, &out);
        out
    }

    fn label(&self) -> String {
        "Select".into()
    }

    fn profile(&self) -> OpProfile {
        self.profile
    }

    fn explain(&self) -> ExplainNode {
        ExplainNode::new(self.label(), self.profile, vec![self.input.explain()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Vector;
    use crate::ops::{collect, source::MemSource};

    #[test]
    fn filters_and_compacts() {
        let src = MemSource::from_i64(vec![(0..100).collect()], 7);
        let mut sel = Select::new(Box::new(src), Expr::col(0).lt(Expr::lit_i64(10)));
        let out = collect(&mut sel);
        assert_eq!(out.col(0).as_i64(), &(0..10).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn all_pass_short_circuits() {
        let src = MemSource::from_i64(vec![(0..50).collect()], 50);
        let mut sel = Select::new(Box::new(src), Expr::col(0).ge(Expr::lit_i64(0)));
        assert_eq!(sel.next().unwrap().len(), 50);
    }

    #[test]
    fn none_pass_yields_none() {
        let src = MemSource::from_i64(vec![(0..50).collect()], 8);
        let mut sel = Select::new(Box::new(src), Expr::col(0).lt(Expr::lit_i64(0)));
        assert!(sel.next().is_none());
    }

    #[test]
    fn multi_column_rows_stay_aligned() {
        let src = MemSource::new(
            vec![
                Vector::I64((0..20).collect()),
                Vector::F64((0..20).map(|i| i as f64 * 0.5).collect()),
            ],
            6,
        );
        let mut sel = Select::new(Box::new(src), Expr::col(0).ge(Expr::lit_i64(15)));
        let out = collect(&mut sel);
        assert_eq!(out.col(0).as_i64(), &[15, 16, 17, 18, 19]);
        assert_eq!(out.col(1).as_f64(), &[7.5, 8.0, 8.5, 9.0, 9.5]);
    }
}
