//! Selection: filters rows by a mask-valued expression and compacts the
//! survivors into dense output vectors.
//!
//! When the input batch carries compressed columns (a scan's
//! [`LazyCol`] side channel), the predicate is split into conjuncts and
//! each `col OP literal` / `col IN set` conjunct is pushed into code
//! space via [`CodeCol::try_select`] — the column's packed codes are
//! compared directly against the re-encoded literal, no decoding.
//! Conjuncts that cannot be answered in code space materialize exactly
//! the columns they read and evaluate normally. Surviving rows are then
//! gathered from the still-compressed columns block-by-block, so a
//! selective filter decodes a small fraction of the values a
//! decode-then-filter plan would.

use crate::batch::{Batch, PushPred};
use crate::explain::{ExplainNode, OpProfile};
use crate::expr::Expr;
use crate::ops::Operator;
use scc_core::PredOp;

/// Filter operator. Empty result vectors are skipped, so downstream
/// operators always see non-empty batches.
pub struct Select {
    input: Box<dyn Operator>,
    predicate: Expr,
    profile: OpProfile,
}

/// Flattens an `And` tree into its conjuncts (any other node is a
/// single conjunct).
fn split_conjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::And(a, b) = e {
        split_conjuncts(a, out);
        split_conjuncts(b, out);
    } else {
        out.push(e);
    }
}

/// The `i64` wire value of an exact integer literal (`f64` literals are
/// not pushable: their comparisons are not representable in code space).
fn literal_of(e: &Expr) -> Option<i64> {
    match e {
        Expr::LitI32(v) => Some(*v as i64),
        Expr::LitI64(v) => Some(*v),
        Expr::LitU32(v) => Some(*v as i64),
        _ => None,
    }
}

/// `lit OP col` reads as `col mirror(OP) lit`.
fn mirror(op: PredOp) -> PredOp {
    match op {
        PredOp::Eq => PredOp::Eq,
        PredOp::Ne => PredOp::Ne,
        PredOp::Lt => PredOp::Gt,
        PredOp::Le => PredOp::Ge,
        PredOp::Gt => PredOp::Lt,
        PredOp::Ge => PredOp::Le,
    }
}

/// Recognizes a conjunct the compressed domain can evaluate: a single
/// column compared against an integer literal (either side), or a
/// column set-membership test.
fn as_pushable(e: &Expr) -> Option<(usize, PushPred)> {
    let cmp = |a: &Expr, b: &Expr, op: PredOp| match (a, b) {
        (Expr::Col(i), rhs) => literal_of(rhs).map(|lit| (*i, PushPred::Cmp { op, lit })),
        (lhs, Expr::Col(i)) => {
            literal_of(lhs).map(|lit| (*i, PushPred::Cmp { op: mirror(op), lit }))
        }
        _ => None,
    };
    match e {
        Expr::Eq(a, b) => cmp(a, b, PredOp::Eq),
        Expr::Ne(a, b) => cmp(a, b, PredOp::Ne),
        Expr::Lt(a, b) => cmp(a, b, PredOp::Lt),
        Expr::Le(a, b) => cmp(a, b, PredOp::Le),
        Expr::Gt(a, b) => cmp(a, b, PredOp::Gt),
        Expr::Ge(a, b) => cmp(a, b, PredOp::Ge),
        Expr::InSet(inner, set) => match &**inner {
            Expr::Col(i) => Some((*i, PushPred::InSet(set.clone()))),
            _ => None,
        },
        _ => None,
    }
}

fn collect_cols(e: &Expr, out: &mut Vec<usize>) {
    match e {
        Expr::Col(i) => out.push(*i),
        Expr::LitI32(_)
        | Expr::LitI64(_)
        | Expr::LitU32(_)
        | Expr::LitF64(_)
        | Expr::LitBool(_) => {}
        Expr::Add(a, b)
        | Expr::Sub(a, b)
        | Expr::Mul(a, b)
        | Expr::Eq(a, b)
        | Expr::Ne(a, b)
        | Expr::Lt(a, b)
        | Expr::Le(a, b)
        | Expr::Gt(a, b)
        | Expr::Ge(a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b) => {
            collect_cols(a, out);
            collect_cols(b, out);
        }
        Expr::ToF64(a) | Expr::Not(a) | Expr::InSet(a, _) | Expr::BucketI32(a, _) => {
            collect_cols(a, out)
        }
        Expr::Cond(m, t, e2) => {
            collect_cols(m, out);
            collect_cols(t, out);
            collect_cols(e2, out);
        }
    }
}

/// The distinct columns an expression reads.
fn referenced_cols(e: &Expr) -> Vec<usize> {
    let mut out = Vec::new();
    collect_cols(e, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

impl Select {
    /// Builds a filter over `input`.
    pub fn new(input: impl Operator + 'static, predicate: Expr) -> Self {
        Self { input: Box::new(input), predicate, profile: OpProfile::default() }
    }

    /// Evaluates the predicate over a batch that still carries
    /// compressed columns. Returns the combined selection mask and the
    /// number of values decoded for fallback conjuncts.
    fn eval_with_pushdown(&self, batch: &mut Batch) -> Result<(Vec<bool>, u64), scc_core::Error> {
        let n = batch.len();
        let mut mask = vec![true; n];
        let mut decoded = 0u64;
        let mut conjuncts = Vec::new();
        split_conjuncts(&self.predicate, &mut conjuncts);
        let mut sel = vec![false; n];
        for c in conjuncts {
            if let Some((col, pp)) = as_pushable(c) {
                if let Some(lz) = batch.lazy_col(col) {
                    if lz.col.try_select(&pp, lz.offset, &mut sel)? {
                        for (m, s) in mask.iter_mut().zip(&sel) {
                            *m &= *s;
                        }
                        continue;
                    }
                }
            }
            // Fall back: decode the columns this conjunct reads, then
            // evaluate it like any expression.
            for col in referenced_cols(c) {
                decoded += batch.materialize_col(col)?;
            }
            let v = c.eval(batch);
            for (m, s) in mask.iter_mut().zip(v.as_mask()) {
                *m &= *s;
            }
        }
        Ok((mask, decoded))
    }

    fn produce(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        loop {
            let Some(mut batch) = self.input.try_next()? else {
                return Ok(None);
            };
            let n = batch.len();
            let (mask, mut decoded) = if batch.has_lazy() {
                self.eval_with_pushdown(&mut batch)?
            } else {
                (self.predicate.eval(&batch).as_mask().to_vec(), 0)
            };
            // Predicated compaction (§2.2 / Ross PODS'02): always store
            // the index, advance the cursor by the boolean — no
            // data-dependent branch for the CPU to mispredict.
            let mut indices = vec![0usize; n];
            let mut j = 0usize;
            for (i, &m) in mask.iter().enumerate() {
                indices[j] = i;
                j += m as usize;
            }
            indices.truncate(j);
            // Columns still compressed decode only their survivors:
            // everything when the whole batch passed, nothing when the
            // batch died, touched blocks otherwise.
            let mut skipped = 0u64;
            let out = if indices.is_empty() {
                for i in 0..batch.columns.len() {
                    if let Some(lz) = batch.take_lazy(i) {
                        skipped += lz.len as u64;
                    }
                }
                None
            } else if indices.len() == n {
                decoded += batch.ensure_values()?;
                Some(batch)
            } else {
                let mut cols = Vec::with_capacity(batch.columns.len());
                for i in 0..batch.columns.len() {
                    match batch.take_lazy(i) {
                        Some(lz) => {
                            let (v, d) = lz.col.gather(lz.offset, &indices)?;
                            decoded += d;
                            skipped += (lz.len as u64).saturating_sub(d);
                            cols.push(v);
                        }
                        None => cols.push(batch.columns[i].gather(&indices)),
                    }
                }
                Some(Batch::new(cols))
            };
            self.profile.values_decoded += decoded;
            self.profile.values_skipped += skipped;
            scc_obs::counter_add!("engine.select.values_decoded", decoded);
            scc_obs::counter_add!("engine.select.values_skipped", skipped);
            if let Some(b) = out {
                return Ok(Some(b));
            }
        }
    }
}

impl Operator for Select {
    fn try_next(&mut self) -> Result<Option<Batch>, scc_core::Error> {
        let start = scc_obs::clock();
        let out = self.produce();
        self.profile.record(start, &out);
        out
    }

    fn label(&self) -> String {
        "Select".into()
    }

    fn profile(&self) -> OpProfile {
        self.profile
    }

    fn explain(&self) -> ExplainNode {
        ExplainNode::new(self.label(), self.profile, vec![self.input.explain()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{CodeCol, ColType, LazyCol, Vector};
    use crate::ops::{collect, source::MemSource};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn filters_and_compacts() {
        let src = MemSource::from_i64(vec![(0..100).collect()], 7);
        let mut sel = Select::new(Box::new(src), Expr::col(0).lt(Expr::lit_i64(10)));
        let out = collect(&mut sel);
        assert_eq!(out.col(0).as_i64(), &(0..10).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn all_pass_short_circuits() {
        let src = MemSource::from_i64(vec![(0..50).collect()], 50);
        let mut sel = Select::new(Box::new(src), Expr::col(0).ge(Expr::lit_i64(0)));
        assert_eq!(sel.next().unwrap().len(), 50);
    }

    #[test]
    fn none_pass_yields_none() {
        let src = MemSource::from_i64(vec![(0..50).collect()], 8);
        let mut sel = Select::new(Box::new(src), Expr::col(0).lt(Expr::lit_i64(0)));
        assert!(sel.next().is_none());
    }

    #[test]
    fn multi_column_rows_stay_aligned() {
        let src = MemSource::new(
            vec![
                Vector::I64((0..20).collect()),
                Vector::F64((0..20).map(|i| i as f64 * 0.5).collect()),
            ],
            6,
        );
        let mut sel = Select::new(Box::new(src), Expr::col(0).ge(Expr::lit_i64(15)));
        let out = collect(&mut sel);
        assert_eq!(out.col(0).as_i64(), &[15, 16, 17, 18, 19]);
        assert_eq!(out.col(1).as_f64(), &[7.5, 8.0, 8.5, 9.0, 9.5]);
    }

    /// In-memory [`CodeCol`]: answers `Cmp`/`InSet` in "code space"
    /// (directly over its values, which is what a storage handle does
    /// after re-encoding the literal) and counts how many values each
    /// path touches.
    struct FakeCodeCol {
        values: Vec<i64>,
        selectable: bool,
        decoded: AtomicU64,
        selects: AtomicU64,
    }

    impl FakeCodeCol {
        fn new(values: Vec<i64>, selectable: bool) -> Arc<Self> {
            Arc::new(Self {
                values,
                selectable,
                decoded: AtomicU64::new(0),
                selects: AtomicU64::new(0),
            })
        }
    }

    impl CodeCol for FakeCodeCol {
        fn col_type(&self) -> ColType {
            ColType::I64
        }

        fn try_select(
            &self,
            pred: &PushPred,
            offset: usize,
            out: &mut [bool],
        ) -> Result<bool, scc_core::Error> {
            if !self.selectable {
                return Ok(false);
            }
            self.selects.fetch_add(out.len() as u64, Ordering::Relaxed);
            for (i, o) in out.iter_mut().enumerate() {
                let v = self.values[offset + i];
                *o = match pred {
                    PushPred::Cmp { op, lit } => match op {
                        PredOp::Eq => v == *lit,
                        PredOp::Ne => v != *lit,
                        PredOp::Lt => v < *lit,
                        PredOp::Le => v <= *lit,
                        PredOp::Gt => v > *lit,
                        PredOp::Ge => v >= *lit,
                    },
                    PushPred::InSet(set) => set.contains(&(v as u64)),
                };
            }
            Ok(true)
        }

        fn materialize(&self, offset: usize, len: usize) -> Result<Vector, scc_core::Error> {
            self.decoded.fetch_add(len as u64, Ordering::Relaxed);
            Ok(Vector::I64(self.values[offset..offset + len].to_vec()))
        }

        fn gather(&self, offset: usize, rows: &[usize]) -> Result<(Vector, u64), scc_core::Error> {
            self.decoded.fetch_add(rows.len() as u64, Ordering::Relaxed);
            Ok((
                Vector::I64(rows.iter().map(|&r| self.values[offset + r]).collect()),
                rows.len() as u64,
            ))
        }
    }

    /// One-batch source carrying lazy columns.
    struct LazySource {
        batch: Option<Batch>,
    }

    impl Operator for LazySource {
        fn try_next(&mut self) -> Result<Option<Batch>, scc_core::Error> {
            Ok(self.batch.take())
        }
    }

    fn lazy_batch(cols: &[Arc<FakeCodeCol>], offset: usize, len: usize) -> Batch {
        let lazies: Vec<Option<LazyCol>> = cols
            .iter()
            .map(|c| Some(LazyCol::new(Arc::clone(c) as Arc<dyn CodeCol>, offset, len)))
            .collect();
        let placeholders = lazies.iter().map(|l| l.as_ref().unwrap().placeholder()).collect();
        Batch::with_lazy(placeholders, lazies)
    }

    #[test]
    fn pushdown_selects_codes_and_gathers_survivors() {
        let key = FakeCodeCol::new((0..100).collect(), true);
        let val = FakeCodeCol::new((0..100).map(|i| i * 3).collect(), true);
        let src = LazySource { batch: Some(lazy_batch(&[key.clone(), val.clone()], 0, 100)) };
        let mut sel = Select::new(src, Expr::col(0).lt(Expr::lit_i64(10)));
        let out = collect(&mut sel);
        assert_eq!(out.col(0).as_i64(), &(0..10).collect::<Vec<_>>()[..]);
        assert_eq!(out.col(1).as_i64(), &(0..10).map(|i| i * 3).collect::<Vec<_>>()[..]);
        // The predicate ran in code space; only survivors were decoded.
        assert_eq!(key.selects.load(Ordering::Relaxed), 100);
        assert_eq!(key.decoded.load(Ordering::Relaxed), 10);
        assert_eq!(val.decoded.load(Ordering::Relaxed), 10);
        let p = sel.profile();
        assert_eq!(p.values_decoded, 20, "10 survivors x 2 columns");
        assert_eq!(p.values_skipped, 180, "90 pruned rows x 2 columns");
    }

    #[test]
    fn unanswerable_pushdown_falls_back_to_decode() {
        let key = FakeCodeCol::new((0..64).collect(), false);
        let src = LazySource { batch: Some(lazy_batch(std::slice::from_ref(&key), 0, 64)) };
        let mut sel = Select::new(src, Expr::col(0).ge(Expr::lit_i64(60)));
        let out = collect(&mut sel);
        assert_eq!(out.col(0).as_i64(), &[60, 61, 62, 63]);
        // Fallback materialized the whole column once; the gather then
        // found it already decoded.
        assert_eq!(key.decoded.load(Ordering::Relaxed), 64);
        assert_eq!(sel.profile().values_decoded, 64);
        assert_eq!(sel.profile().values_skipped, 0);
    }

    #[test]
    fn dead_batch_decodes_nothing() {
        let key = FakeCodeCol::new((0..256).collect(), true);
        let src = LazySource { batch: Some(lazy_batch(std::slice::from_ref(&key), 0, 256)) };
        let mut sel = Select::new(src, Expr::col(0).lt(Expr::lit_i64(0)));
        assert!(sel.next().is_none());
        assert_eq!(key.decoded.load(Ordering::Relaxed), 0, "no survivor, no decode");
        assert_eq!(sel.profile().values_skipped, 256);
    }

    #[test]
    fn conjunct_split_pushes_each_side() {
        // col0 pushable, col1 conjunct uses arithmetic -> fallback.
        let a = FakeCodeCol::new((0..50).collect(), true);
        let b = FakeCodeCol::new((0..50).map(|i| i % 7).collect(), true);
        let src = LazySource { batch: Some(lazy_batch(&[a.clone(), b.clone()], 0, 50)) };
        let pred = Expr::col(0)
            .lt(Expr::lit_i64(25))
            .and(Expr::col(1).add(Expr::lit_i64(1)).gt(Expr::lit_i64(3)));
        let mut sel = Select::new(src, pred);
        let out = collect(&mut sel);
        let want: Vec<i64> = (0..25).filter(|i| i % 7 + 1 > 3).collect();
        assert_eq!(out.col(0).as_i64(), &want[..]);
        // col0 answered in code space, col1 forced a full materialize.
        assert_eq!(a.selects.load(Ordering::Relaxed), 50);
        assert_eq!(b.decoded.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn reversed_literal_and_inset_are_pushable() {
        let (i, pp) = as_pushable(&Expr::lit_i64(5).lt(Expr::col(2))).expect("pushable");
        assert_eq!(i, 2);
        assert!(matches!(pp, PushPred::Cmp { op: PredOp::Gt, lit: 5 }));
        let set: std::collections::HashSet<u64> = [1u64, 2].into_iter().collect();
        let (i, pp) = as_pushable(&Expr::col(0).in_set(set)).expect("pushable");
        assert_eq!(i, 0);
        assert!(matches!(pp, PushPred::InSet(_)));
        // Float literals and arithmetic are not pushable.
        assert!(as_pushable(&Expr::col(0).lt(Expr::lit_f64(1.0))).is_none());
        assert!(as_pushable(&Expr::col(0).add(Expr::lit_i64(1)).lt(Expr::lit_i64(2))).is_none());
    }
}
