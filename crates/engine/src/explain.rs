//! Per-operator execution profiles and EXPLAIN ANALYZE trees.
//!
//! Every [`Operator`](crate::ops::Operator) keeps an [`OpProfile`] —
//! calls, vectors produced, rows produced, and (when
//! [`scc_obs::enabled()`] telemetry is on) inclusive wall time — and
//! can describe itself *after execution* as an [`ExplainNode`] tree.
//! The `scc explain` CLI subcommand renders that tree in the style of
//! `EXPLAIN ANALYZE`.
//!
//! Vector/row counts are plain integer adds and are always maintained;
//! the wall clock is only read when telemetry is enabled, so pipelines
//! in benches pay nothing for the instrumentation by default.

use std::fmt;

/// Execution counters for one operator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpProfile {
    /// `try_next` invocations (including the final `None`).
    pub calls: u64,
    /// Non-empty batches produced.
    pub vectors: u64,
    /// Total rows produced.
    pub rows: u64,
    /// Inclusive wall time spent in `try_next` (self + children), in
    /// nanoseconds. Zero unless telemetry was enabled during the run.
    pub wall_ns: u64,
    /// Values this operator decoded from compressed columns (full
    /// materializations plus block-granular survivor gathers).
    pub values_decoded: u64,
    /// Values this operator consumed *without* decoding: answered in
    /// code space by a compressed-domain predicate, or pruned before
    /// materialization. Zero for plans that never carry lazy columns.
    pub values_skipped: u64,
}

impl OpProfile {
    /// Folds one `try_next` outcome into the profile. `start` is the
    /// probe from [`scc_obs::clock()`] taken before the call body
    /// (`None` when telemetry is disabled).
    #[inline]
    pub fn record<E>(
        &mut self,
        start: Option<std::time::Instant>,
        result: &Result<Option<crate::batch::Batch>, E>,
    ) {
        self.calls += 1;
        if let Some(t) = start {
            self.wall_ns += scc_obs::elapsed_ns(t);
        }
        if let Ok(Some(batch)) = result {
            self.vectors += 1;
            self.rows += batch.len() as u64;
        }
    }

    /// Sums two profiles (used when a plan runs in phases).
    pub fn merge(&mut self, other: &OpProfile) {
        self.calls += other.calls;
        self.vectors += other.vectors;
        self.rows += other.rows;
        self.wall_ns += other.wall_ns;
        self.values_decoded += other.values_decoded;
        self.values_skipped += other.values_skipped;
    }
}

/// One node of an EXPLAIN ANALYZE tree: an operator label, its
/// profile, and its inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainNode {
    /// Operator description, e.g. `HashAggregate(keys=2, aggs=8)`.
    pub label: String,
    /// The operator's execution counters.
    pub profile: OpProfile,
    /// Input operators (build/right side last).
    pub children: Vec<ExplainNode>,
}

impl ExplainNode {
    /// A node with children.
    pub fn new(label: impl Into<String>, profile: OpProfile, children: Vec<ExplainNode>) -> Self {
        Self { label: label.into(), profile, children }
    }

    /// A node without children.
    pub fn leaf(label: impl Into<String>, profile: OpProfile) -> Self {
        Self::new(label, profile, Vec::new())
    }

    /// Groups the root trees of a multi-phase plan (e.g. TPC-H Q15
    /// materializes a view, then runs a second pipeline over it) under
    /// one synthetic parent. The parent carries no profile of its own
    /// and renders without counters.
    pub fn phases(label: impl Into<String>, phases: Vec<ExplainNode>) -> Self {
        Self::new(label, OpProfile::default(), phases)
    }

    /// Compressed-domain accounting summed over the whole subtree:
    /// `(values_decoded, values_skipped)`. Skipped values were consumed
    /// without ever being decompressed — answered in code space by a
    /// pushed-down predicate or pruned before materialization.
    pub fn values_totals(&self) -> (u64, u64) {
        self.children.iter().fold(
            (self.profile.values_decoded, self.profile.values_skipped),
            |(d, s), c| {
                let (cd, cs) = c.values_totals();
                (d + cd, s + cs)
            },
        )
    }

    /// Wall time excluding children, in nanoseconds.
    pub fn self_ns(&self) -> u64 {
        self.profile.wall_ns.saturating_sub(self.children.iter().map(|c| c.profile.wall_ns).sum())
    }

    /// Full EXPLAIN ANALYZE rendering: one line per operator with
    /// rows, vectors, calls, inclusive (`total`) and exclusive
    /// (`self`) wall time.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", "", true);
        out
    }

    /// Deterministic rendering for golden tests: the tree shape,
    /// labels, rows and vectors — no wall times.
    pub fn render_structure(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", "", false);
        out
    }

    fn render_into(&self, out: &mut String, prefix: &str, branch: &str, timed: bool) {
        use fmt::Write as _;
        let _ = write!(out, "{prefix}{branch}{}", self.label);
        if self.profile.calls > 0 {
            let _ = write!(out, "  rows={} vectors={}", self.profile.rows, self.profile.vectors);
            if timed {
                let _ = write!(
                    out,
                    " calls={} total={} self={}",
                    self.profile.calls,
                    fmt_ns(self.profile.wall_ns),
                    fmt_ns(self.self_ns())
                );
                // Compressed-domain accounting, shown only where a lazy
                // column was in play (and only in the timed rendering,
                // so structure goldens stay stable).
                if self.profile.values_decoded + self.profile.values_skipped > 0 {
                    let _ = write!(
                        out,
                        " values_decoded={} values_skipped={}",
                        self.profile.values_decoded, self.profile.values_skipped
                    );
                }
            }
        }
        out.push('\n');
        let child_prefix = if branch.is_empty() {
            prefix.to_string()
        } else if branch.starts_with("├") {
            format!("{prefix}│  ")
        } else {
            format!("{prefix}   ")
        };
        for (i, child) in self.children.iter().enumerate() {
            let last = i + 1 == self.children.len();
            child.render_into(out, &child_prefix, if last { "└─ " } else { "├─ " }, timed);
        }
    }
}

/// Human-scale duration formatting (`842ns`, `13.4µs`, `2.1ms`, `1.35s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(rows: u64, vectors: u64, wall_ns: u64) -> OpProfile {
        OpProfile { calls: vectors + 1, vectors, rows, wall_ns, ..Default::default() }
    }

    #[test]
    fn decode_counters_render_only_when_timed_and_nonzero() {
        let mut p = profile(10, 1, 500);
        let node = ExplainNode::leaf("Select", p);
        assert!(!node.render().contains("values_decoded"), "zero counters stay hidden");
        p.values_decoded = 256;
        p.values_skipped = 768;
        let node = ExplainNode::leaf("Select", p);
        assert!(node.render().contains(" values_decoded=256 values_skipped=768"));
        // The structure rendering (golden-test surface) never shows them.
        assert!(!node.render_structure().contains("values_decoded"));
        // merge folds them like the other counters.
        let mut acc = OpProfile::default();
        acc.merge(&p);
        acc.merge(&p);
        assert_eq!((acc.values_decoded, acc.values_skipped), (512, 1536));
    }

    #[test]
    fn self_time_subtracts_children() {
        let child = ExplainNode::leaf("Scan", profile(100, 1, 700));
        let root = ExplainNode::new("Select", profile(10, 1, 1000), vec![child]);
        assert_eq!(root.self_ns(), 300);
        // Never underflows even if children over-report.
        let child = ExplainNode::leaf("Scan", profile(100, 1, 2000));
        let root = ExplainNode::new("Select", profile(10, 1, 1000), vec![child]);
        assert_eq!(root.self_ns(), 0);
    }

    #[test]
    fn structure_rendering_is_deterministic() {
        let tree = ExplainNode::new(
            "HashJoin(Inner, keys=1)",
            profile(5, 1, 10),
            vec![
                ExplainNode::new(
                    "Select",
                    profile(8, 2, 5),
                    vec![ExplainNode::leaf("Scan(t1)", profile(20, 2, 3))],
                ),
                ExplainNode::leaf("Scan(t2)", profile(4, 1, 2)),
            ],
        );
        let expected = "\
HashJoin(Inner, keys=1)  rows=5 vectors=1
├─ Select  rows=8 vectors=2
│  └─ Scan(t1)  rows=20 vectors=2
└─ Scan(t2)  rows=4 vectors=1
";
        assert_eq!(tree.render_structure(), expected);
    }

    #[test]
    fn phase_nodes_render_without_counters() {
        let tree = ExplainNode::phases(
            "Q15 (2 phases)",
            vec![
                ExplainNode::leaf("HashAggregate(keys=1, aggs=1)", profile(3, 1, 10)),
                ExplainNode::leaf("OrderBy(keys=1)", profile(1, 1, 10)),
            ],
        );
        let text = tree.render_structure();
        assert!(text.starts_with("Q15 (2 phases)\n"), "{text}");
        assert!(text.contains("├─ HashAggregate"));
        assert!(text.contains("└─ OrderBy"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(842), "842ns");
        assert_eq!(fmt_ns(13_400), "13.4µs");
        assert_eq!(fmt_ns(2_100_000), "2.1ms");
        assert_eq!(fmt_ns(1_350_000_000), "1.35s");
    }
}
