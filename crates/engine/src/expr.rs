//! Vectorized expression evaluation.
//!
//! Expressions compile to trees evaluated one vector at a time; every
//! arithmetic/comparison node is a tight loop over the operand vectors
//! (the engine's "primitives"). Type promotion is minimal and explicit:
//! integer ops stay integer, `to_f64` promotes, comparisons yield masks.

use crate::batch::{Batch, Vector};
use std::collections::HashSet;

/// A vectorized expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Input column by position.
    Col(usize),
    /// Literal i32.
    LitI32(i32),
    /// Literal i64.
    LitI64(i64),
    /// Literal u32.
    LitU32(u32),
    /// Literal f64.
    LitF64(f64),
    /// Literal boolean mask — a constant-folded predicate. Produced when
    /// a pushed-down literal falls outside its column's domain (e.g. a
    /// negative literal against an unsigned column), where the answer is
    /// known without looking at any value.
    LitBool(bool),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Promote to f64.
    ToF64(Box<Expr>),
    /// Comparison: equal.
    Eq(Box<Expr>, Box<Expr>),
    /// Comparison: not equal.
    Ne(Box<Expr>, Box<Expr>),
    /// Comparison: less than.
    Lt(Box<Expr>, Box<Expr>),
    /// Comparison: less or equal.
    Le(Box<Expr>, Box<Expr>),
    /// Comparison: greater than.
    Gt(Box<Expr>, Box<Expr>),
    /// Comparison: greater or equal.
    Ge(Box<Expr>, Box<Expr>),
    /// Logical and of two masks.
    And(Box<Expr>, Box<Expr>),
    /// Logical or of two masks.
    Or(Box<Expr>, Box<Expr>),
    /// Logical not of a mask.
    Not(Box<Expr>),
    /// Membership of a (widened) value in a set — how string predicates
    /// arrive after dictionary translation.
    InSet(Box<Expr>, HashSet<u64>),
    /// Branch-free conditional: `mask ? then : else` per row (the
    /// predicated select primitive; both branches are evaluated).
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Bucket an i32 input by sorted boundaries: result is the number of
    /// boundaries `<=` the value (e.g. year extraction from day numbers
    /// with year-start boundaries).
    BucketI32(Box<Expr>, Vec<i32>),
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// i64 literal.
    pub fn lit_i64(v: i64) -> Expr {
        Expr::LitI64(v)
    }

    /// i32 literal.
    pub fn lit_i32(v: i32) -> Expr {
        Expr::LitI32(v)
    }

    /// u32 literal.
    pub fn lit_u32(v: u32) -> Expr {
        Expr::LitU32(v)
    }

    /// f64 literal.
    pub fn lit_f64(v: f64) -> Expr {
        Expr::LitF64(v)
    }

    /// Constant boolean mask (always-true / always-false predicate).
    pub fn lit_bool(v: bool) -> Expr {
        Expr::LitBool(v)
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // vectorized-expression DSL, not std ops
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)] // vectorized-expression DSL, not std ops
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)] // vectorized-expression DSL, not std ops
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// Promote to f64.
    pub fn to_f64(self) -> Expr {
        Expr::ToF64(Box::new(self))
    }

    /// `self == rhs` mask.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Eq(Box::new(self), Box::new(rhs))
    }

    /// `self != rhs` mask.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Ne(Box::new(self), Box::new(rhs))
    }

    /// `self < rhs` mask.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Lt(Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs` mask.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Le(Box::new(self), Box::new(rhs))
    }

    /// `self > rhs` mask.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Gt(Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs` mask.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Ge(Box::new(self), Box::new(rhs))
    }

    /// Mask conjunction.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// Mask disjunction.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// Mask negation.
    #[allow(clippy::should_implement_trait)] // vectorized-expression DSL, not std ops
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Set membership over widened values.
    pub fn in_set(self, set: HashSet<u64>) -> Expr {
        Expr::InSet(Box::new(self), set)
    }

    /// Per-row conditional (`self` must evaluate to a mask).
    pub fn cond(self, then: Expr, otherwise: Expr) -> Expr {
        Expr::Cond(Box::new(self), Box::new(then), Box::new(otherwise))
    }

    /// Bucket by sorted i32 boundaries.
    pub fn bucket_i32(self, boundaries: Vec<i32>) -> Expr {
        debug_assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
        Expr::BucketI32(Box::new(self), boundaries)
    }

    /// Evaluates against a batch, producing one vector of `batch.len()`
    /// values.
    pub fn eval(&self, batch: &Batch) -> Vector {
        let n = batch.len();
        match self {
            Expr::Col(i) => batch.col(*i).clone(),
            Expr::LitI32(v) => Vector::I32(vec![*v; n]),
            Expr::LitI64(v) => Vector::I64(vec![*v; n]),
            Expr::LitU32(v) => Vector::U32(vec![*v; n]),
            Expr::LitF64(v) => Vector::F64(vec![*v; n]),
            Expr::LitBool(v) => Vector::Mask(vec![*v; n]),
            Expr::Add(a, b) => arith(&a.eval(batch), &b.eval(batch), ArithOp::Add),
            Expr::Sub(a, b) => arith(&a.eval(batch), &b.eval(batch), ArithOp::Sub),
            Expr::Mul(a, b) => arith(&a.eval(batch), &b.eval(batch), ArithOp::Mul),
            Expr::ToF64(a) => to_f64(&a.eval(batch)),
            Expr::Eq(a, b) => compare(&a.eval(batch), &b.eval(batch), CmpOp::Eq),
            Expr::Ne(a, b) => compare(&a.eval(batch), &b.eval(batch), CmpOp::Ne),
            Expr::Lt(a, b) => compare(&a.eval(batch), &b.eval(batch), CmpOp::Lt),
            Expr::Le(a, b) => compare(&a.eval(batch), &b.eval(batch), CmpOp::Le),
            Expr::Gt(a, b) => compare(&a.eval(batch), &b.eval(batch), CmpOp::Gt),
            Expr::Ge(a, b) => compare(&a.eval(batch), &b.eval(batch), CmpOp::Ge),
            Expr::And(a, b) => {
                let (av, bv) = (a.eval(batch), b.eval(batch));
                let (am, bm) = (av.as_mask(), bv.as_mask());
                Vector::Mask(am.iter().zip(bm).map(|(&x, &y)| x & y).collect())
            }
            Expr::Or(a, b) => {
                let (av, bv) = (a.eval(batch), b.eval(batch));
                let (am, bm) = (av.as_mask(), bv.as_mask());
                Vector::Mask(am.iter().zip(bm).map(|(&x, &y)| x | y).collect())
            }
            Expr::Not(a) => {
                let av = a.eval(batch);
                Vector::Mask(av.as_mask().iter().map(|&x| !x).collect())
            }
            Expr::InSet(a, set) => {
                let av = a.eval(batch);
                Vector::Mask((0..n).map(|i| set.contains(&av.key_at(i))).collect())
            }
            Expr::Cond(m, t, e) => {
                let mv = m.eval(batch);
                let mask = mv.as_mask();
                let tv = t.eval(batch);
                let ev = e.eval(batch);
                cond_select(mask, &tv, &ev)
            }
            Expr::BucketI32(a, bounds) => {
                let av = a.eval(batch);
                let x = av.as_i32();
                Vector::I32(x.iter().map(|v| bounds.partition_point(|b| b <= v) as i32).collect())
            }
        }
    }
}

fn cond_select(mask: &[bool], t: &Vector, e: &Vector) -> Vector {
    match (t, e) {
        (Vector::I32(a), Vector::I32(b)) => Vector::I32(
            mask.iter().zip(a.iter().zip(b)).map(|(&m, (&x, &y))| if m { x } else { y }).collect(),
        ),
        (Vector::I64(a), Vector::I64(b)) => Vector::I64(
            mask.iter().zip(a.iter().zip(b)).map(|(&m, (&x, &y))| if m { x } else { y }).collect(),
        ),
        (Vector::U32(a), Vector::U32(b)) => Vector::U32(
            mask.iter().zip(a.iter().zip(b)).map(|(&m, (&x, &y))| if m { x } else { y }).collect(),
        ),
        (Vector::F64(a), Vector::F64(b)) => Vector::F64(
            mask.iter().zip(a.iter().zip(b)).map(|(&m, (&x, &y))| if m { x } else { y }).collect(),
        ),
        _ => panic!("cond branch type mismatch"),
    }
}

#[derive(Clone, Copy)]
enum ArithOp {
    Add,
    Sub,
    Mul,
}

#[derive(Clone, Copy)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

macro_rules! arith_loop {
    ($a:expr, $b:expr, $op:expr, $ctor:path) => {{
        debug_assert_eq!($a.len(), $b.len());
        $ctor(match $op {
            ArithOp::Add => $a.iter().zip($b).map(|(&x, &y)| x + y).collect(),
            ArithOp::Sub => $a.iter().zip($b).map(|(&x, &y)| x - y).collect(),
            ArithOp::Mul => $a.iter().zip($b).map(|(&x, &y)| x * y).collect(),
        })
    }};
}

fn arith(a: &Vector, b: &Vector, op: ArithOp) -> Vector {
    match (a, b) {
        (Vector::I32(x), Vector::I32(y)) => arith_loop!(x, y, op, Vector::I32),
        (Vector::I64(x), Vector::I64(y)) => arith_loop!(x, y, op, Vector::I64),
        (Vector::F64(x), Vector::F64(y)) => arith_loop!(x, y, op, Vector::F64),
        _ => panic!("arith type mismatch"),
    }
}

fn to_f64(a: &Vector) -> Vector {
    match a {
        Vector::I32(x) => Vector::F64(x.iter().map(|&v| v as f64).collect()),
        Vector::I64(x) => Vector::F64(x.iter().map(|&v| v as f64).collect()),
        Vector::U32(x) => Vector::F64(x.iter().map(|&v| v as f64).collect()),
        Vector::F64(x) => Vector::F64(x.clone()),
        Vector::Mask(_) | Vector::Lazy { .. } => panic!("cannot promote to f64"),
    }
}

macro_rules! cmp_loop {
    ($a:expr, $b:expr, $op:expr) => {{
        debug_assert_eq!($a.len(), $b.len());
        Vector::Mask(match $op {
            CmpOp::Eq => $a.iter().zip($b).map(|(x, y)| x == y).collect(),
            CmpOp::Ne => $a.iter().zip($b).map(|(x, y)| x != y).collect(),
            CmpOp::Lt => $a.iter().zip($b).map(|(x, y)| x < y).collect(),
            CmpOp::Le => $a.iter().zip($b).map(|(x, y)| x <= y).collect(),
            CmpOp::Gt => $a.iter().zip($b).map(|(x, y)| x > y).collect(),
            CmpOp::Ge => $a.iter().zip($b).map(|(x, y)| x >= y).collect(),
        })
    }};
}

fn compare(a: &Vector, b: &Vector, op: CmpOp) -> Vector {
    match (a, b) {
        (Vector::I32(x), Vector::I32(y)) => cmp_loop!(x, y, op),
        (Vector::I64(x), Vector::I64(y)) => cmp_loop!(x, y, op),
        (Vector::U32(x), Vector::U32(y)) => cmp_loop!(x, y, op),
        (Vector::F64(x), Vector::F64(y)) => cmp_loop!(x, y, op),
        _ => panic!("compare type mismatch"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Batch {
        Batch::new(vec![
            Vector::I64(vec![1, 2, 3, 4, 5]),
            Vector::F64(vec![0.1, 0.2, 0.3, 0.4, 0.5]),
            Vector::U32(vec![7, 8, 7, 9, 7]),
        ])
    }

    #[test]
    fn arithmetic_and_promotion() {
        let e = Expr::col(0).to_f64().mul(Expr::col(1));
        let v = e.eval(&batch());
        let f = v.as_f64();
        assert!((f[4] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn comparisons_yield_masks() {
        let e = Expr::col(0).ge(Expr::lit_i64(3));
        assert_eq!(e.eval(&batch()).as_mask(), &[false, false, true, true, true]);
    }

    #[test]
    fn boolean_combinators() {
        let e = Expr::col(0)
            .ge(Expr::lit_i64(2))
            .and(Expr::col(0).le(Expr::lit_i64(4)))
            .or(Expr::col(0).eq(Expr::lit_i64(1)));
        assert_eq!(e.eval(&batch()).as_mask(), &[true, true, true, true, false]);
        let n = Expr::col(0).eq(Expr::lit_i64(1)).not();
        assert_eq!(n.eval(&batch()).as_mask(), &[false, true, true, true, true]);
    }

    #[test]
    fn in_set_membership() {
        let set: HashSet<u64> = [7u64, 9].into_iter().collect();
        let e = Expr::col(2).in_set(set);
        assert_eq!(e.eval(&batch()).as_mask(), &[true, false, true, true, true]);
    }

    #[test]
    fn literals_broadcast() {
        let e = Expr::lit_f64(2.0).mul(Expr::col(1));
        let v = e.eval(&batch());
        assert_eq!(v.len(), 5);
        assert!((v.as_f64()[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn mixed_type_arith_panics() {
        Expr::col(0).add(Expr::col(1)).eval(&batch());
    }

    #[test]
    fn cond_selects_per_row() {
        let e = Expr::col(0).ge(Expr::lit_i64(3)).cond(Expr::col(0), Expr::lit_i64(0));
        assert_eq!(e.eval(&batch()).as_i64(), &[0, 0, 3, 4, 5]);
    }

    #[test]
    fn cond_f64_branches() {
        let e = Expr::col(2).eq(Expr::lit_u32(7)).cond(Expr::col(1), Expr::lit_f64(0.0));
        let v = e.eval(&batch());
        assert_eq!(v.as_f64(), &[0.1, 0.0, 0.3, 0.0, 0.5]);
    }

    #[test]
    fn bucket_counts_boundaries() {
        let b = Batch::new(vec![Vector::I32(vec![-5, 0, 10, 365, 366, 1000])]);
        let e = Expr::col(0).bucket_i32(vec![0, 366]);
        assert_eq!(e.eval(&b).as_i32(), &[0, 1, 1, 1, 2, 2]);
    }
}
