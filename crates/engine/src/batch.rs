//! Column vectors and batches: the unit of data flow between operators.
//!
//! Batches normally carry materialized [`Vector`]s, but a scan over
//! compressed storage may instead attach a [`LazyCol`] per column: a
//! handle into the compressed segment that can answer predicates in
//! code space ([`CodeCol::try_select`]) and decode values on demand.
//! The column slot holds a [`Vector::Lazy`] placeholder until someone
//! calls [`Batch::ensure_values`] (or `Select` gathers just the
//! surviving rows). Every operator that consumes column *values* must
//! materialize first; the placeholder panics loudly if one forgets.

use std::fmt;
use std::sync::Arc;

/// The type of one column vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 32-bit signed integers (dates as days, small numerics).
    I32,
    /// 64-bit signed integers (keys, decimals as scaled integers).
    I64,
    /// 32-bit unsigned integers (dictionary codes).
    U32,
    /// 64-bit floats (derived arithmetic, averages).
    F64,
}

impl ColType {
    /// Stable one-byte wire tag (see [`Vector::write_wire`]).
    pub fn tag(self) -> u8 {
        match self {
            ColType::I32 => 1,
            ColType::I64 => 2,
            ColType::U32 => 3,
            ColType::F64 => 4,
        }
    }

    /// Inverse of [`Self::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<ColType> {
        match tag {
            1 => Some(ColType::I32),
            2 => Some(ColType::I64),
            3 => Some(ColType::U32),
            4 => Some(ColType::F64),
            _ => None,
        }
    }
}

/// A typed column vector.
#[derive(Debug, Clone, PartialEq)]
pub enum Vector {
    /// 32-bit signed values.
    I32(Vec<i32>),
    /// 64-bit signed values.
    I64(Vec<i64>),
    /// Dictionary codes.
    U32(Vec<u32>),
    /// Floats.
    F64(Vec<f64>),
    /// Boolean masks produced by comparison primitives.
    Mask(Vec<bool>),
    /// Placeholder for a column still in its compressed form: the
    /// values live behind the batch's [`LazyCol`] side channel until
    /// [`Batch::ensure_values`] decodes them. Accessing the data
    /// through this variant panics.
    Lazy {
        /// Row count the materialized vector will have.
        len: usize,
        /// Value type the column decodes to.
        ty: ColType,
    },
}

impl Vector {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Vector::I32(v) => v.len(),
            Vector::I64(v) => v.len(),
            Vector::U32(v) => v.len(),
            Vector::F64(v) => v.len(),
            Vector::Mask(v) => v.len(),
            Vector::Lazy { len, .. } => *len,
        }
    }

    /// True when the vector holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The vector's column type.
    ///
    /// # Panics
    /// Panics on [`Vector::Mask`], which is not a storable column type.
    pub fn col_type(&self) -> ColType {
        match self {
            Vector::I32(_) => ColType::I32,
            Vector::I64(_) => ColType::I64,
            Vector::U32(_) => ColType::U32,
            Vector::F64(_) => ColType::F64,
            Vector::Mask(_) => panic!("masks are not a column type"),
            Vector::Lazy { ty, .. } => *ty,
        }
    }

    /// The underlying `i64` data (panics on other types).
    pub fn as_i64(&self) -> &[i64] {
        match self {
            Vector::I64(v) => v,
            other => panic!("expected I64 vector, got {:?}", other.type_name()),
        }
    }

    /// The underlying `i32` data (panics on other types).
    pub fn as_i32(&self) -> &[i32] {
        match self {
            Vector::I32(v) => v,
            other => panic!("expected I32 vector, got {:?}", other.type_name()),
        }
    }

    /// The underlying `u32` data (panics on other types).
    pub fn as_u32(&self) -> &[u32] {
        match self {
            Vector::U32(v) => v,
            other => panic!("expected U32 vector, got {:?}", other.type_name()),
        }
    }

    /// The underlying `f64` data (panics on other types).
    pub fn as_f64(&self) -> &[f64] {
        match self {
            Vector::F64(v) => v,
            other => panic!("expected F64 vector, got {:?}", other.type_name()),
        }
    }

    /// The underlying mask (panics on other types).
    pub fn as_mask(&self) -> &[bool] {
        match self {
            Vector::Mask(v) => v,
            other => panic!("expected Mask vector, got {:?}", other.type_name()),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Vector::I32(_) => "I32",
            Vector::I64(_) => "I64",
            Vector::U32(_) => "U32",
            Vector::F64(_) => "F64",
            Vector::Mask(_) => "Mask",
            Vector::Lazy { .. } => "Lazy",
        }
    }

    /// Value at `i` widened to `i64` for key handling (F64 uses raw bits).
    #[inline]
    pub fn key_at(&self, i: usize) -> u64 {
        match self {
            Vector::I32(v) => v[i] as u32 as u64,
            Vector::I64(v) => v[i] as u64,
            Vector::U32(v) => v[i] as u64,
            Vector::F64(v) => v[i].to_bits(),
            Vector::Mask(v) => v[i] as u64,
            Vector::Lazy { .. } => {
                panic!("key_at on a lazy column: call Batch::ensure_values first")
            }
        }
    }

    /// Gathers the elements at `indices` into a new vector of the same
    /// type (the compaction primitive behind selections and joins).
    pub fn gather(&self, indices: &[usize]) -> Vector {
        match self {
            Vector::I32(v) => Vector::I32(indices.iter().map(|&i| v[i]).collect()),
            Vector::I64(v) => Vector::I64(indices.iter().map(|&i| v[i]).collect()),
            Vector::U32(v) => Vector::U32(indices.iter().map(|&i| v[i]).collect()),
            Vector::F64(v) => Vector::F64(indices.iter().map(|&i| v[i]).collect()),
            Vector::Mask(v) => Vector::Mask(indices.iter().map(|&i| v[i]).collect()),
            Vector::Lazy { .. } => {
                panic!("gather on a lazy column: use LazyCol::gather or ensure_values first")
            }
        }
    }

    /// Appends `other` (same type) onto `self`.
    pub fn append(&mut self, other: &Vector) {
        match (self, other) {
            (Vector::I32(a), Vector::I32(b)) => a.extend_from_slice(b),
            (Vector::I64(a), Vector::I64(b)) => a.extend_from_slice(b),
            (Vector::U32(a), Vector::U32(b)) => a.extend_from_slice(b),
            (Vector::F64(a), Vector::F64(b)) => a.extend_from_slice(b),
            (Vector::Mask(a), Vector::Mask(b)) => a.extend_from_slice(b),
            (Vector::Lazy { .. }, _) | (_, Vector::Lazy { .. }) => {
                panic!("append on a lazy column: call Batch::ensure_values first")
            }
            (a, b) => panic!("append type mismatch: {} vs {}", a.type_name(), b.type_name()),
        }
    }

    /// An empty vector of the given type.
    pub fn empty(ty: ColType) -> Vector {
        match ty {
            ColType::I32 => Vector::I32(Vec::new()),
            ColType::I64 => Vector::I64(Vec::new()),
            ColType::U32 => Vector::U32(Vec::new()),
            ColType::F64 => Vector::F64(Vec::new()),
        }
    }

    /// Appends the wire form — `[u8 type tag][u32 LE count][count
    /// little-endian values]` — to `out`. The unit the server's value
    /// and batch response frames are built from.
    ///
    /// # Panics
    /// Panics on [`Vector::Mask`] (masks are transient predicate
    /// results, never materialized column data).
    pub fn write_wire(&self, out: &mut Vec<u8>) {
        if let Vector::Lazy { .. } = self {
            panic!("write_wire on a lazy column: call Batch::ensure_values first");
        }
        out.push(self.col_type().tag());
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        match self {
            Vector::I32(v) => v.iter().for_each(|x| out.extend_from_slice(&x.to_le_bytes())),
            Vector::I64(v) => v.iter().for_each(|x| out.extend_from_slice(&x.to_le_bytes())),
            Vector::U32(v) => v.iter().for_each(|x| out.extend_from_slice(&x.to_le_bytes())),
            Vector::F64(v) => v.iter().for_each(|x| out.extend_from_slice(&x.to_le_bytes())),
            Vector::Mask(_) | Vector::Lazy { .. } => unreachable!("rejected above"),
        }
    }

    /// Reads one [`Self::write_wire`] record from `bytes` starting at
    /// `*pos`, advancing `*pos` past it. Unknown type tags and short
    /// buffers come back as typed errors — network peers are not
    /// trusted to frame vectors correctly.
    pub fn read_wire(bytes: &[u8], pos: &mut usize) -> Result<Vector, scc_core::Error> {
        use scc_core::{Error, WireError};
        let need =
            |at: usize, need: usize, have: usize| Error::Truncated { offset: at, need, have };
        if *pos + 5 > bytes.len() {
            return Err(need(*pos, 5, bytes.len() - *pos));
        }
        let ty = ColType::from_tag(bytes[*pos])
            .ok_or(Error::Wire(WireError::Corrupt("unknown vector type tag")))?;
        let count = u32::from_le_bytes(bytes[*pos + 1..*pos + 5].try_into().unwrap()) as usize;
        let mut at = *pos + 5;
        let width = match ty {
            ColType::I32 | ColType::U32 => 4,
            ColType::I64 | ColType::F64 => 8,
        };
        // The count is untrusted: bound it by the bytes actually present
        // before any allocation.
        let body = count.checked_mul(width).filter(|&b| at + b <= bytes.len()).ok_or(need(
            at,
            count.saturating_mul(width),
            bytes.len() - at,
        ))?;
        macro_rules! read {
            ($ctor:path, $ty:ty) => {{
                let mut v = Vec::with_capacity(count);
                for chunk in bytes[at..at + body].chunks_exact(width) {
                    v.push(<$ty>::from_le_bytes(chunk.try_into().unwrap()));
                }
                $ctor(v)
            }};
        }
        let out = match ty {
            ColType::I32 => read!(Vector::I32, i32),
            ColType::I64 => read!(Vector::I64, i64),
            ColType::U32 => read!(Vector::U32, u32),
            ColType::F64 => read!(Vector::F64, f64),
        };
        at += body;
        *pos = at;
        Ok(out)
    }
}

/// A predicate pushed into the compressed domain: one column compared
/// against a wire literal (`i64` carries every integer type exactly) or
/// tested for membership in a widened-value set. The storage layer
/// re-encodes the literal into the column's value type and, when the
/// segment's scheme allows it, into code space.
#[derive(Debug, Clone)]
pub enum PushPred {
    /// `column OP literal`.
    Cmp {
        /// Comparison operator.
        op: scc_core::PredOp,
        /// Literal in the `i64` carrier (exact for i32/u32/i64 columns).
        lit: i64,
    },
    /// `column IN set`, keyed like [`Vector::key_at`].
    InSet(std::collections::HashSet<u64>),
}

/// A column that is still compressed: the hook a storage layer
/// implements so the engine can evaluate predicates over codes and
/// decode values only when (and where) they are actually needed.
///
/// `offset`/`rows` are relative to the handle's own coordinate space
/// (the [`LazyCol`] carries the batch's window into it).
pub trait CodeCol: Send + Sync {
    /// Value type the column materializes to.
    fn col_type(&self) -> ColType;

    /// Evaluates `pred` over rows `[offset, offset + out.len())` without
    /// decoding, writing the selection into `out`. Returns `Ok(false)`
    /// when the predicate cannot be answered in code space (wrapped
    /// window, delta coding, plain storage, ...) — the caller must then
    /// materialize and evaluate normally. `Ok(true)` means `out` holds
    /// exactly the rows a decode-then-test evaluation would select.
    fn try_select(
        &self,
        pred: &PushPred,
        offset: usize,
        out: &mut [bool],
    ) -> Result<bool, scc_core::Error>;

    /// Decodes rows `[offset, offset + len)` into a vector.
    fn materialize(&self, offset: usize, len: usize) -> Result<Vector, scc_core::Error>;

    /// Decodes only the rows at `rows` (ascending, relative to
    /// `offset`), returning the gathered vector and the number of
    /// values actually decoded to serve it (block-granular schemes
    /// decode whole 128-value blocks).
    fn gather(&self, offset: usize, rows: &[usize]) -> Result<(Vector, u64), scc_core::Error>;
}

/// A batch column still in compressed form: a [`CodeCol`] handle plus
/// the window of rows this batch covers.
#[derive(Clone)]
pub struct LazyCol {
    /// The compressed column.
    pub col: Arc<dyn CodeCol>,
    /// First row of the batch's window, in the handle's coordinates.
    pub offset: usize,
    /// Rows in the window.
    pub len: usize,
}

impl LazyCol {
    /// Builds a lazy column over `col`'s rows `[offset, offset + len)`.
    pub fn new(col: Arc<dyn CodeCol>, offset: usize, len: usize) -> Self {
        Self { col, offset, len }
    }

    /// The [`Vector::Lazy`] placeholder for this window.
    pub fn placeholder(&self) -> Vector {
        Vector::Lazy { len: self.len, ty: self.col.col_type() }
    }
}

impl fmt::Debug for LazyCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LazyCol {{ offset: {}, len: {} }}", self.offset, self.len)
    }
}

/// A batch of rows: equal-length column vectors, plus an optional
/// side channel of [`LazyCol`] handles for columns that are still
/// compressed. Equality compares the vectors only.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The column vectors; all the same length.
    pub columns: Vec<Vector>,
    /// Per-column lazy handles; empty when every column arrived
    /// materialized, `None` entries for materialized columns otherwise.
    lazy: Vec<Option<LazyCol>>,
}

impl PartialEq for Batch {
    fn eq(&self, other: &Self) -> bool {
        self.columns == other.columns
    }
}

impl Batch {
    /// Builds a batch, checking column lengths agree.
    pub fn new(columns: Vec<Vector>) -> Self {
        if let Some(first) = columns.first() {
            let n = first.len();
            debug_assert!(columns.iter().all(|c| c.len() == n), "ragged batch");
        }
        Self { columns, lazy: Vec::new() }
    }

    /// Builds a batch with a lazy side channel: `lazy[i]`, when `Some`,
    /// backs the [`Vector::Lazy`] placeholder at `columns[i]`.
    pub fn with_lazy(columns: Vec<Vector>, lazy: Vec<Option<LazyCol>>) -> Self {
        assert_eq!(columns.len(), lazy.len(), "lazy side channel must parallel columns");
        debug_assert!(
            columns.iter().zip(&lazy).all(|(c, l)| match l {
                Some(l) => matches!(c, Vector::Lazy { len, .. } if *len == l.len),
                None => !matches!(c, Vector::Lazy { .. }),
            }),
            "lazy entries must pair with Lazy placeholders of the same length"
        );
        let mut b = Batch::new(columns);
        b.lazy = lazy;
        b
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vector::len)
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column `i`.
    pub fn col(&self, i: usize) -> &Vector {
        &self.columns[i]
    }

    /// True when any column is still compressed.
    pub fn has_lazy(&self) -> bool {
        self.lazy.iter().any(Option::is_some)
    }

    /// The lazy handle behind column `i`, when it is still compressed.
    pub fn lazy_col(&self, i: usize) -> Option<&LazyCol> {
        self.lazy.get(i).and_then(Option::as_ref)
    }

    /// Detaches and returns column `i`'s lazy handle, leaving the
    /// placeholder in place — used by `Select` to decode only the
    /// surviving rows itself.
    pub fn take_lazy(&mut self, i: usize) -> Option<LazyCol> {
        self.lazy.get_mut(i).and_then(Option::take)
    }

    /// Decodes column `i` if it is still compressed. Returns the number
    /// of values decoded (0 when the column was already materialized).
    pub fn materialize_col(&mut self, i: usize) -> Result<u64, scc_core::Error> {
        let Some(lz) = self.lazy.get_mut(i).and_then(Option::take) else {
            return Ok(0);
        };
        self.columns[i] = lz.col.materialize(lz.offset, lz.len)?;
        Ok(lz.len as u64)
    }

    /// Decodes every still-compressed column, returning the total number
    /// of values decoded. Operators that consume column values call this
    /// before touching the data; it is free for fully-materialized
    /// batches.
    pub fn ensure_values(&mut self) -> Result<u64, scc_core::Error> {
        if !self.has_lazy() {
            return Ok(0);
        }
        let mut decoded = 0;
        for i in 0..self.columns.len() {
            decoded += self.materialize_col(i)?;
        }
        Ok(decoded)
    }

    /// Gathers rows at `indices` across all columns.
    ///
    /// # Panics
    /// Panics if a column is still compressed (materialize first, or
    /// gather through [`Batch::take_lazy`]).
    pub fn gather(&self, indices: &[usize]) -> Batch {
        Batch::new(self.columns.iter().map(|c| c.gather(indices)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_compacts_rows() {
        let b = Batch::new(vec![
            Vector::I64(vec![10, 20, 30, 40]),
            Vector::F64(vec![1.0, 2.0, 3.0, 4.0]),
        ]);
        let g = b.gather(&[0, 3]);
        assert_eq!(g.col(0).as_i64(), &[10, 40]);
        assert_eq!(g.col(1).as_f64(), &[1.0, 4.0]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn key_at_is_type_stable() {
        let v = Vector::I32(vec![-1]);
        let w = Vector::I64(vec![-1]);
        // Same logical value, widened consistently within a type.
        assert_eq!(v.key_at(0), u32::MAX as u64);
        assert_eq!(w.key_at(0), u64::MAX);
    }

    #[test]
    fn append_same_type() {
        let mut a = Vector::U32(vec![1, 2]);
        a.append(&Vector::U32(vec![3]));
        assert_eq!(a.as_u32(), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn append_type_mismatch_panics() {
        let mut a = Vector::U32(vec![1]);
        a.append(&Vector::I64(vec![2]));
    }

    #[test]
    fn empty_batch() {
        let b = Batch::new(vec![]);
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn vector_wire_roundtrips_every_type() {
        let vectors = vec![
            Vector::I32(vec![i32::MIN, -1, 0, 7, i32::MAX]),
            Vector::I64(vec![i64::MIN, -1, 0, 7, i64::MAX]),
            Vector::U32(vec![0, 1, u32::MAX]),
            Vector::F64(vec![-0.5, 0.0, f64::MAX]),
            Vector::U32(Vec::new()),
        ];
        let mut buf = Vec::new();
        for v in &vectors {
            v.write_wire(&mut buf);
        }
        let mut pos = 0;
        for v in &vectors {
            assert_eq!(&Vector::read_wire(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn vector_wire_rejects_bad_tags_and_short_buffers() {
        let mut buf = Vec::new();
        Vector::I64(vec![1, 2, 3]).write_wire(&mut buf);
        // Unknown type tag.
        let mut bad = buf.clone();
        bad[0] = 99;
        assert!(Vector::read_wire(&bad, &mut 0).is_err());
        // Every truncation point fails typed, never panics.
        for cut in 0..buf.len() {
            assert!(Vector::read_wire(&buf[..cut], &mut 0).is_err(), "cut at {cut}");
        }
        // A count promising more data than the buffer holds.
        let mut lying = buf.clone();
        lying[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Vector::read_wire(&lying, &mut 0).is_err());
    }

    #[test]
    fn col_type_tags_are_stable_and_invertible() {
        for ty in [ColType::I32, ColType::I64, ColType::U32, ColType::F64] {
            assert_eq!(ColType::from_tag(ty.tag()), Some(ty));
        }
        assert_eq!(ColType::from_tag(0), None);
        assert_eq!(ColType::from_tag(5), None);
    }
}
