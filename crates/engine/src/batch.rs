//! Column vectors and batches: the unit of data flow between operators.

/// The type of one column vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 32-bit signed integers (dates as days, small numerics).
    I32,
    /// 64-bit signed integers (keys, decimals as scaled integers).
    I64,
    /// 32-bit unsigned integers (dictionary codes).
    U32,
    /// 64-bit floats (derived arithmetic, averages).
    F64,
}

/// A typed column vector.
#[derive(Debug, Clone, PartialEq)]
pub enum Vector {
    /// 32-bit signed values.
    I32(Vec<i32>),
    /// 64-bit signed values.
    I64(Vec<i64>),
    /// Dictionary codes.
    U32(Vec<u32>),
    /// Floats.
    F64(Vec<f64>),
    /// Boolean masks produced by comparison primitives.
    Mask(Vec<bool>),
}

impl Vector {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Vector::I32(v) => v.len(),
            Vector::I64(v) => v.len(),
            Vector::U32(v) => v.len(),
            Vector::F64(v) => v.len(),
            Vector::Mask(v) => v.len(),
        }
    }

    /// True when the vector holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The vector's column type.
    ///
    /// # Panics
    /// Panics on [`Vector::Mask`], which is not a storable column type.
    pub fn col_type(&self) -> ColType {
        match self {
            Vector::I32(_) => ColType::I32,
            Vector::I64(_) => ColType::I64,
            Vector::U32(_) => ColType::U32,
            Vector::F64(_) => ColType::F64,
            Vector::Mask(_) => panic!("masks are not a column type"),
        }
    }

    /// The underlying `i64` data (panics on other types).
    pub fn as_i64(&self) -> &[i64] {
        match self {
            Vector::I64(v) => v,
            other => panic!("expected I64 vector, got {:?}", other.type_name()),
        }
    }

    /// The underlying `i32` data (panics on other types).
    pub fn as_i32(&self) -> &[i32] {
        match self {
            Vector::I32(v) => v,
            other => panic!("expected I32 vector, got {:?}", other.type_name()),
        }
    }

    /// The underlying `u32` data (panics on other types).
    pub fn as_u32(&self) -> &[u32] {
        match self {
            Vector::U32(v) => v,
            other => panic!("expected U32 vector, got {:?}", other.type_name()),
        }
    }

    /// The underlying `f64` data (panics on other types).
    pub fn as_f64(&self) -> &[f64] {
        match self {
            Vector::F64(v) => v,
            other => panic!("expected F64 vector, got {:?}", other.type_name()),
        }
    }

    /// The underlying mask (panics on other types).
    pub fn as_mask(&self) -> &[bool] {
        match self {
            Vector::Mask(v) => v,
            other => panic!("expected Mask vector, got {:?}", other.type_name()),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Vector::I32(_) => "I32",
            Vector::I64(_) => "I64",
            Vector::U32(_) => "U32",
            Vector::F64(_) => "F64",
            Vector::Mask(_) => "Mask",
        }
    }

    /// Value at `i` widened to `i64` for key handling (F64 uses raw bits).
    #[inline]
    pub fn key_at(&self, i: usize) -> u64 {
        match self {
            Vector::I32(v) => v[i] as u32 as u64,
            Vector::I64(v) => v[i] as u64,
            Vector::U32(v) => v[i] as u64,
            Vector::F64(v) => v[i].to_bits(),
            Vector::Mask(v) => v[i] as u64,
        }
    }

    /// Gathers the elements at `indices` into a new vector of the same
    /// type (the compaction primitive behind selections and joins).
    pub fn gather(&self, indices: &[usize]) -> Vector {
        match self {
            Vector::I32(v) => Vector::I32(indices.iter().map(|&i| v[i]).collect()),
            Vector::I64(v) => Vector::I64(indices.iter().map(|&i| v[i]).collect()),
            Vector::U32(v) => Vector::U32(indices.iter().map(|&i| v[i]).collect()),
            Vector::F64(v) => Vector::F64(indices.iter().map(|&i| v[i]).collect()),
            Vector::Mask(v) => Vector::Mask(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Appends `other` (same type) onto `self`.
    pub fn append(&mut self, other: &Vector) {
        match (self, other) {
            (Vector::I32(a), Vector::I32(b)) => a.extend_from_slice(b),
            (Vector::I64(a), Vector::I64(b)) => a.extend_from_slice(b),
            (Vector::U32(a), Vector::U32(b)) => a.extend_from_slice(b),
            (Vector::F64(a), Vector::F64(b)) => a.extend_from_slice(b),
            (Vector::Mask(a), Vector::Mask(b)) => a.extend_from_slice(b),
            (a, b) => panic!("append type mismatch: {} vs {}", a.type_name(), b.type_name()),
        }
    }

    /// An empty vector of the given type.
    pub fn empty(ty: ColType) -> Vector {
        match ty {
            ColType::I32 => Vector::I32(Vec::new()),
            ColType::I64 => Vector::I64(Vec::new()),
            ColType::U32 => Vector::U32(Vec::new()),
            ColType::F64 => Vector::F64(Vec::new()),
        }
    }
}

/// A batch of rows: equal-length column vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// The column vectors; all the same length.
    pub columns: Vec<Vector>,
}

impl Batch {
    /// Builds a batch, checking column lengths agree.
    pub fn new(columns: Vec<Vector>) -> Self {
        if let Some(first) = columns.first() {
            let n = first.len();
            debug_assert!(columns.iter().all(|c| c.len() == n), "ragged batch");
        }
        Self { columns }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vector::len)
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column `i`.
    pub fn col(&self, i: usize) -> &Vector {
        &self.columns[i]
    }

    /// Gathers rows at `indices` across all columns.
    pub fn gather(&self, indices: &[usize]) -> Batch {
        Batch::new(self.columns.iter().map(|c| c.gather(indices)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_compacts_rows() {
        let b = Batch::new(vec![
            Vector::I64(vec![10, 20, 30, 40]),
            Vector::F64(vec![1.0, 2.0, 3.0, 4.0]),
        ]);
        let g = b.gather(&[0, 3]);
        assert_eq!(g.col(0).as_i64(), &[10, 40]);
        assert_eq!(g.col(1).as_f64(), &[1.0, 4.0]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn key_at_is_type_stable() {
        let v = Vector::I32(vec![-1]);
        let w = Vector::I64(vec![-1]);
        // Same logical value, widened consistently within a type.
        assert_eq!(v.key_at(0), u32::MAX as u64);
        assert_eq!(w.key_at(0), u64::MAX);
    }

    #[test]
    fn append_same_type() {
        let mut a = Vector::U32(vec![1, 2]);
        a.append(&Vector::U32(vec![3]));
        assert_eq!(a.as_u32(), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn append_type_mismatch_panics() {
        let mut a = Vector::U32(vec![1]);
        a.append(&Vector::I64(vec![2]));
    }

    #[test]
    fn empty_batch() {
        let b = Batch::new(vec![]);
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
    }
}
