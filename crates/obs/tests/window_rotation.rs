//! Property tests for [`WindowedHistogram`] epoch rotation.
//!
//! The contract the server's sliding-window percentiles lean on:
//! rotation may *expire* samples (that's its job) but must never lose
//! one early or count one twice — whatever order recorders advance
//! epochs in, and however the ring's slots get reclaimed.

use proptest::prelude::*;
use scc_obs::WindowedHistogram;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const WINDOW: usize = 4;

/// Monotone epoch walk: (epoch_advance, value) ops. Advances up to 6
/// force slot reclaim constantly (ring = WINDOW + 1 slots).
fn monotone_ops() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..6, 0u64..10_000), 1..200)
}

/// Reference model: exact per-epoch totals, merged over the window.
fn model_window(by_epoch: &BTreeMap<u64, Vec<u64>>, at: u64) -> (u64, u64, Option<u64>) {
    let oldest = (at + 1).saturating_sub(WINDOW as u64);
    let mut count = 0u64;
    let mut sum = 0u64;
    let mut max = None;
    for (&e, vs) in by_epoch.range(oldest..=at) {
        debug_assert!(e >= oldest);
        count += vs.len() as u64;
        sum += vs.iter().sum::<u64>();
        max = max.max(vs.iter().copied().max());
    }
    (count, sum, max)
}

proptest! {
    /// Forced rotation: record along a monotone epoch walk, then any
    /// snapshot taken at-or-after the newest epoch must agree exactly
    /// with a per-epoch reference model — every in-window sample
    /// present once, every expired sample gone.
    #[test]
    fn forced_rotation_matches_reference_model(ops in monotone_ops(), probe in 0u64..(WINDOW as u64 + 2)) {
        let w = WindowedHistogram::with_config(Duration::from_secs(1), WINDOW);
        let mut by_epoch: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut epoch = 0u64;
        for &(advance, value) in &ops {
            epoch += advance;
            w.record_at(epoch, value);
            by_epoch.entry(epoch).or_default().push(value);
        }
        // Snapshots strictly before the newest epoch could miss slots
        // already reclaimed by it; at-or-after, the ring guarantees
        // every in-window epoch is still resident.
        let at = epoch + probe;
        let snap = w.snapshot_at(at);
        let (count, sum, max) = model_window(&by_epoch, at);
        prop_assert_eq!(snap.count(), count, "at epoch {}", at);
        prop_assert_eq!(snap.sum(), sum);
        prop_assert_eq!(snap.max(), max);
        if count > 0 {
            let p100 = snap.percentile(1.0).unwrap();
            prop_assert_eq!(Some(p100), max, "p100 is the exact max");
        } else {
            prop_assert_eq!(snap.percentile(0.5), None);
        }
    }

    /// Out-of-order recorders (bounded epoch jitter): as long as no
    /// epoch expires, a covering snapshot holds *exactly* every sample
    /// — laggards fold forward in time but are never dropped or
    /// duplicated.
    #[test]
    fn jittered_epochs_conserve_every_sample(jitters in prop::collection::vec(0u64..8, 1..200)) {
        // Window wider than any epoch reached: nothing can expire.
        let w = WindowedHistogram::with_config(Duration::from_secs(1), 64);
        let mut max_epoch = 0u64;
        for (i, &j) in jitters.iter().enumerate() {
            // A drifting base with per-recorder jitter, like threads
            // computing `now_epoch()` at slightly different times.
            let e = (i as u64 / 8) + j;
            max_epoch = max_epoch.max(e);
            w.record_at(e, 1);
        }
        let snap = w.snapshot_at(max_epoch);
        prop_assert_eq!(snap.count(), jitters.len() as u64);
        prop_assert_eq!(snap.sum(), jitters.len() as u64);
    }
}

/// Concurrent writers racing real rotation: split a fixed sample
/// budget across threads that interleave live-clock and forced-epoch
/// records on 5 ms epochs, then verify the covering snapshot holds
/// exactly the budget. (The proptests above pin sequential semantics;
/// this pins the locking.)
#[test]
fn concurrent_forced_rotation_conserves_samples() {
    let w = Arc::new(WindowedHistogram::with_config(Duration::from_millis(5), 12_000));
    let threads = 4u64;
    let per_thread = 2_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let w = Arc::clone(&w);
            scope.spawn(move || {
                for i in 0..per_thread {
                    w.record_at(w.now_epoch() + (t + i) % 4, i);
                }
            });
        }
    });
    let snap = w.snapshot_at(w.now_epoch() + 4);
    assert_eq!(snap.count(), threads * per_thread);
}
