//! Minimal JSON tree, writer and recursive-descent parser — just
//! enough for the metrics export schema, with no dependencies.
//!
//! Numbers keep their lexical class: integers parse to [`Json::U64`] /
//! [`Json::I64`] and only decimals or exponents become [`Json::F64`],
//! so a write → parse → write cycle of an export is byte-stable (the
//! property the schema round-trip test pins down).

use std::fmt;

/// A JSON value. Objects preserve insertion order (the export writes
/// sorted metric names, and order survives a round trip).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer literal.
    U64(u64),
    /// A negative integer literal.
    I64(i64),
    /// A literal with a fraction or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key → value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `f64` for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object pairs if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Serializes compactly (no whitespace).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        use fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Guarantee a `.` or exponent so the value parses
                    // back as F64.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; degrade to null.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind)
            }),
            Json::Obj(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, ind);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(level) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(level + 1));
        }
        item(out, i, indent.map(|l| l + 1));
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document. Rejects trailing garbage.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII in \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not needed by the export
                            // schema; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are sound).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if fractional {
            text.parse::<f64>().map(Json::F64).map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Json::I64).map_err(|_| self.err("bad integer"))
        } else {
            text.parse::<u64>().map(Json::U64).map_err(|_| self.err("bad integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_primitives() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("42").unwrap(), Json::U64(42));
        assert_eq!(parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(parse("2.5").unwrap(), Json::F64(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::F64(1000.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parse_nested() {
        let doc = r#"{"a": [1, {"b": "x"}, 2.0], "c": {}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap(), &Json::Obj(vec![]));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn write_parse_write_is_stable() {
        let v = Json::Obj(vec![
            ("u".into(), Json::U64(18_446_744_073_709_551_615)),
            ("i".into(), Json::I64(-3)),
            ("f".into(), Json::F64(0.125)),
            ("whole_f".into(), Json::F64(2.0)),
            ("s".into(), Json::Str("quote \" backslash \\ tab \t".into())),
            ("arr".into(), Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        let text = v.pretty();
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed, v);
        assert_eq!(reparsed.pretty(), text);
        let compact = v.compact();
        assert_eq!(parse(&compact).unwrap(), v);
    }
}
