//! # Request-lifecycle tracing — spans, sampling, Chrome export
//!
//! A zero-dependency span tracer sized for the server's request path:
//!
//! * **Trace/span IDs** — 64-bit, process-nonce-mixed so client and
//!   server processes allocating independently don't collide when a
//!   trace crosses the wire.
//! * **RAII guards** — [`start_root`] / [`span`] return guards that
//!   time the region and parent children on the enclosing span via a
//!   thread-local stack; [`record_closed`] emits an already-finished
//!   span (used where a region's lifetime doesn't nest cleanly in a
//!   scope, e.g. per-segment scan spans that straddle operator calls).
//! * **Per-thread collectors** — a span is recorded by pushing onto a
//!   bounded thread-local buffer: no locks, no atomics, no sharing on
//!   the record path. The global bounded ring ([`STORE`]) is touched
//!   once per *trace*, at commit.
//! * **Head sampling + always-sample-on-slow** — the keep/drop decision
//!   is drawn once at the root ([`TraceConfig::sample_rate`]); unsampled
//!   traces still buffer locally when [`TraceConfig::slow_ns`] is set,
//!   and commit anyway if the root exceeds the threshold — so the p999
//!   outlier is always in the trace file even at 1% sampling. The
//!   threshold comes from the request deadline (server: half the
//!   configured deadline).
//! * **Wire propagation** — [`current_ctx`] exposes a 16-byte
//!   [`TraceCtx`] (trace id + parent span id) for the binary protocol;
//!   [`start_remote_root`] adopts it on the server so one trace spans
//!   client attempt → server phases. Contexts are only propagated for
//!   head-sampled traces: a slow-only trace commits client-side spans,
//!   but does not force remote recording (keeping remote overhead
//!   proportional to the sample rate).
//!
//! Everything is inert until [`set_collect`]`(true)` — one relaxed
//! atomic load guards every entry point, mirroring the metrics
//! registry's [`enabled()`](crate::enabled) gate.
//!
//! ## Export
//!
//! [`write_chrome_file`] drains the ring into Chrome trace-event JSON
//! (`{"traceEvents": [...]}`, `ph: "X"` complete events, ts/dur in
//! microseconds) — loadable in Perfetto / `chrome://tracing`. Span
//! args carry `trace_id`/`span_id`/`parent_id` as hex strings plus
//! numeric attributes, so tooling (and the `validate_trace` bin) can
//! rebuild the tree.

use crate::json::Json;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Wire size of a [`TraceCtx`]: two little-endian `u64`s.
pub const CTX_WIRE_BYTES: usize = 16;

/// Maximum numeric attributes per span.
pub const MAX_ATTRS: usize = 4;

/// Maximum spans buffered per in-flight trace; extras are dropped and
/// counted in [`Stats::pending_overflow`].
pub const MAX_SPANS_PER_TRACE: usize = 4096;

/// Maximum spans held in the committed ring; the oldest are evicted
/// and counted in [`Stats::ring_evicted`].
pub const STORE_CAPACITY: usize = 1 << 16;

/// The 16-byte trace context propagated through the binary protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace the remote work belongs to.
    pub trace_id: u64,
    /// Span on the initiating side that remote root spans parent on.
    pub parent_span: u64,
}

impl TraceCtx {
    /// Serializes to the wire layout: `[u64 LE trace_id][u64 LE parent_span]`.
    pub fn to_wire(self) -> [u8; CTX_WIRE_BYTES] {
        let mut b = [0u8; CTX_WIRE_BYTES];
        b[..8].copy_from_slice(&self.trace_id.to_le_bytes());
        b[8..].copy_from_slice(&self.parent_span.to_le_bytes());
        b
    }

    /// Parses the wire layout.
    pub fn from_wire(b: &[u8; CTX_WIRE_BYTES]) -> Self {
        Self {
            trace_id: u64::from_le_bytes(b[..8].try_into().unwrap()),
            parent_span: u64::from_le_bytes(b[8..].try_into().unwrap()),
        }
    }
}

/// One recorded span. `start_ns` is relative to the process trace
/// epoch (first tracer use), `parent_id == 0` means root.
#[derive(Debug, Clone)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (never 0).
    pub span_id: u64,
    /// Parent span id; 0 for a root.
    pub parent_id: u64,
    /// Whether `parent_id` lives in another process (came off the wire).
    pub remote_parent: bool,
    /// Span name (static taxonomy, e.g. `"server.execute"`).
    pub name: &'static str,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small per-thread id (Chrome `tid`).
    pub tid: u32,
    /// Numeric attributes (`attrs[..n_attrs]` are live).
    pub attrs: [(&'static str, u64); MAX_ATTRS],
    /// Live prefix of `attrs`.
    pub n_attrs: u8,
    /// Optional string attribute (e.g. kernel class).
    pub tag: Option<(&'static str, &'static str)>,
}

impl Span {
    fn push_attr(&mut self, name: &'static str, value: u64) {
        let n = self.n_attrs as usize;
        if n < MAX_ATTRS {
            self.attrs[n] = (name, value);
            self.n_attrs += 1;
        }
    }
}

/// Tracer configuration; see [`configure`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Head-sampling probability in `[0, 1]` drawn once per root.
    pub sample_rate: f64,
    /// Commit an unsampled trace anyway when the root runs at least
    /// this long; `0` disables slow-capture.
    pub slow_ns: u64,
}

static SAMPLE_RATE_BITS: AtomicU64 = AtomicU64::new(0);
static SLOW_NS: AtomicU64 = AtomicU64::new(0);
static COLLECT: AtomicBool = AtomicBool::new(false);

/// Sets the sampling configuration (process-wide).
pub fn configure(cfg: TraceConfig) {
    SAMPLE_RATE_BITS.store(cfg.sample_rate.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
    SLOW_NS.store(cfg.slow_ns, Ordering::Relaxed);
}

/// Current sampling configuration.
pub fn config() -> TraceConfig {
    TraceConfig {
        sample_rate: f64::from_bits(SAMPLE_RATE_BITS.load(Ordering::Relaxed)),
        slow_ns: SLOW_NS.load(Ordering::Relaxed),
    }
}

/// Master switch: when off (the default) every tracing entry point is
/// a single relaxed load and no state is touched.
pub fn set_collect(on: bool) {
    COLLECT.store(on, Ordering::Relaxed);
}

/// Whether span collection is on.
#[inline]
pub fn collecting() -> bool {
    COLLECT.load(Ordering::Relaxed)
}

/// Nanoseconds since the process trace epoch (anchored at first use).
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    crate::elapsed_ns(*EPOCH.get_or_init(Instant::now))
}

/// Instant → epoch-relative ns, saturating at 0 for pre-epoch instants.
fn instant_ns(at: Instant) -> u64 {
    now_ns().saturating_sub(crate::elapsed_ns(at))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Process-unique non-zero id: a counter mixed with a boot nonce, so
/// independent processes joining one trace are unlikely to collide.
fn next_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static NONCE: OnceLock<u64> = OnceLock::new();
    let nonce = *NONCE.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xD1F_F00D);
        splitmix64(t ^ (std::process::id() as u64) << 32)
    });
    splitmix64(nonce ^ COUNTER.fetch_add(1, Ordering::Relaxed)) | 1
}

fn thread_tid() -> u32 {
    static NEXT_TID: AtomicU32 = AtomicU32::new(1);
    thread_local! {
        static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// When an in-flight trace commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CommitRule {
    /// Head-sampled (or adopted from the wire): always commit.
    Always,
    /// Unsampled: commit only if the root outlives `slow_ns`.
    IfSlow,
}

/// The thread's in-flight trace: pending spans plus the open-guard
/// stack used for parenting. Purely thread-local — the record path
/// takes no locks.
struct ActiveTrace {
    trace_id: u64,
    rule: CommitRule,
    /// Parent stack; seeded with the remote parent for adopted scopes.
    stack: Vec<u64>,
    spans: Vec<Span>,
    overflow: u64,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Counters describing the tracer's own behaviour; see [`stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Traces committed to the ring.
    pub committed: u64,
    /// Traces discarded (unsampled, not slow).
    pub discarded: u64,
    /// Spans dropped because a trace exceeded [`MAX_SPANS_PER_TRACE`].
    pub pending_overflow: u64,
    /// Committed spans evicted because the ring exceeded [`STORE_CAPACITY`].
    pub ring_evicted: u64,
}

struct Store {
    spans: VecDeque<Span>,
    stats: Stats,
}

static STORE: OnceLock<Mutex<Store>> = OnceLock::new();

fn store() -> &'static Mutex<Store> {
    STORE.get_or_init(|| Mutex::new(Store { spans: VecDeque::new(), stats: Stats::default() }))
}

/// Tracer self-stats (committed/discarded traces, overflow drops).
pub fn stats() -> Stats {
    store().lock().unwrap().stats
}

fn commit_pending(trace: ActiveTrace, slow_enough: bool) {
    let keep = trace.rule == CommitRule::Always || slow_enough;
    let mut s = store().lock().unwrap();
    s.stats.pending_overflow += trace.overflow;
    if !keep {
        s.stats.discarded += 1;
        return;
    }
    s.stats.committed += 1;
    for span in trace.spans {
        if s.spans.len() >= STORE_CAPACITY {
            s.spans.pop_front();
            s.stats.ring_evicted += 1;
        }
        s.spans.push_back(span);
    }
}

/// RAII guard for a whole trace (returned by [`start_root`],
/// [`start_remote_root`] and [`adopt_scope`]). Dropping it finalizes
/// the root span (if any), applies the sampling decision, and either
/// commits the buffered spans to the global ring or discards them.
#[must_use = "dropping a TraceGuard immediately ends the trace"]
#[derive(Debug)]
pub struct TraceGuard {
    /// Index of the root span in the pending buffer, if this guard
    /// opened one (adopted scopes don't).
    root_idx: Option<usize>,
    started: Instant,
    armed: bool,
}

impl TraceGuard {
    fn inert() -> Self {
        Self { root_idx: None, started: Instant::now(), armed: false }
    }

    /// Whether this guard actually opened a trace (collection on and
    /// the trace is being buffered).
    pub fn is_active(&self) -> bool {
        self.armed
    }

    /// Adds a numeric attribute to the root span.
    pub fn add_attr(&self, name: &'static str, value: u64) {
        if let (true, Some(idx)) = (self.armed, self.root_idx) {
            ACTIVE.with(|a| {
                if let Some(t) = a.borrow_mut().as_mut() {
                    t.spans[idx].push_attr(name, value);
                }
            });
        }
    }

    /// Sets the root span's string attribute (last write wins).
    pub fn set_tag(&self, key: &'static str, value: &'static str) {
        if let (true, Some(idx)) = (self.armed, self.root_idx) {
            ACTIVE.with(|a| {
                if let Some(t) = a.borrow_mut().as_mut() {
                    t.spans[idx].tag = Some((key, value));
                }
            });
        }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let elapsed = crate::elapsed_ns(self.started);
        let trace = ACTIVE.with(|a| a.borrow_mut().take());
        let Some(mut trace) = trace else { return };
        if let Some(idx) = self.root_idx {
            trace.spans[idx].dur_ns = elapsed;
        }
        let slow_ns = SLOW_NS.load(Ordering::Relaxed);
        commit_pending(trace, slow_ns != 0 && elapsed >= slow_ns);
    }
}

/// RAII guard for one span inside an active trace (see [`span`]).
#[must_use = "dropping a SpanGuard immediately closes the span"]
#[derive(Debug)]
pub struct SpanGuard {
    idx: Option<usize>,
    started: Instant,
}

impl SpanGuard {
    fn inert() -> Self {
        Self { idx: None, started: Instant::now() }
    }

    /// Adds a numeric attribute to this span.
    pub fn add_attr(&self, name: &'static str, value: u64) {
        if let Some(idx) = self.idx {
            ACTIVE.with(|a| {
                if let Some(t) = a.borrow_mut().as_mut() {
                    t.spans[idx].push_attr(name, value);
                }
            });
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(idx) = self.idx else { return };
        let dur = crate::elapsed_ns(self.started);
        ACTIVE.with(|a| {
            if let Some(t) = a.borrow_mut().as_mut() {
                t.spans[idx].dur_ns = dur;
                // Guards are strict RAII, so this span is the top of
                // the parent stack.
                debug_assert_eq!(t.stack.last(), Some(&t.spans[idx].span_id));
                t.stack.pop();
            }
        });
    }
}

fn sample_draw() -> bool {
    let rate = f64::from_bits(SAMPLE_RATE_BITS.load(Ordering::Relaxed));
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    thread_local! {
        static RNG: RefCell<u64> = RefCell::new(next_id());
    }
    let draw = RNG.with(|r| {
        let mut s = r.borrow_mut();
        *s = splitmix64(*s);
        *s
    });
    // Top 53 bits → uniform in [0, 1).
    (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < rate
}

fn install(trace: ActiveTrace) -> bool {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        if slot.is_some() {
            // Nested roots aren't part of the taxonomy; keep the outer
            // trace and make the inner guard inert.
            false
        } else {
            *slot = Some(trace);
            true
        }
    })
}

fn push_span(trace: &mut ActiveTrace, mut span: Span, open: bool) -> Option<usize> {
    if trace.spans.len() >= MAX_SPANS_PER_TRACE {
        trace.overflow += 1;
        return None;
    }
    span.trace_id = trace.trace_id;
    if open {
        trace.stack.push(span.span_id);
    }
    trace.spans.push(span);
    Some(trace.spans.len() - 1)
}

fn blank_span(name: &'static str, parent_id: u64, start_ns: u64) -> Span {
    Span {
        trace_id: 0,
        span_id: next_id(),
        parent_id,
        remote_parent: false,
        name,
        start_ns,
        dur_ns: 0,
        tid: thread_tid(),
        attrs: [("", 0); MAX_ATTRS],
        n_attrs: 0,
        tag: None,
    }
}

/// Starts a new locally-rooted trace (client request, or a server
/// request with no wire context). Draws the head-sampling decision;
/// unsampled traces still buffer if slow-capture is configured.
/// Returns an inert guard when collection is off, when the draw says
/// no and slow-capture is disabled, or when a trace is already active
/// on this thread.
pub fn start_root(name: &'static str) -> TraceGuard {
    if !collecting() {
        return TraceGuard::inert();
    }
    let sampled = sample_draw();
    let slow_ns = SLOW_NS.load(Ordering::Relaxed);
    if !sampled && slow_ns == 0 {
        return TraceGuard::inert();
    }
    let trace_id = next_id();
    let mut trace = ActiveTrace {
        trace_id,
        rule: if sampled { CommitRule::Always } else { CommitRule::IfSlow },
        stack: Vec::with_capacity(8),
        spans: Vec::with_capacity(16),
        overflow: 0,
    };
    let root = blank_span(name, 0, now_ns());
    let root_idx = push_span(&mut trace, root, true);
    if install(trace) {
        TraceGuard { root_idx, started: Instant::now(), armed: true }
    } else {
        TraceGuard::inert()
    }
}

/// Starts a trace adopted from a wire context: the root span joins
/// `ctx.trace_id`, parents on `ctx.parent_span` (marked remote), and
/// always commits — the initiator already made the sampling decision.
/// `started` backdates the root (e.g. to frame arrival).
pub fn start_remote_root(name: &'static str, ctx: TraceCtx, started: Instant) -> TraceGuard {
    if !collecting() {
        return TraceGuard::inert();
    }
    let mut trace = ActiveTrace {
        trace_id: ctx.trace_id,
        rule: CommitRule::Always,
        stack: Vec::with_capacity(8),
        spans: Vec::with_capacity(16),
        overflow: 0,
    };
    let mut root = blank_span(name, ctx.parent_span, instant_ns(started));
    root.remote_parent = true;
    let root_idx = push_span(&mut trace, root, true);
    if install(trace) {
        TraceGuard { root_idx, started, armed: true }
    } else {
        TraceGuard::inert()
    }
}

/// Joins an existing trace from another thread of the *same* process
/// (e.g. a parallel-scan worker): spans recorded in this scope parent
/// on `ctx.parent_span` and always commit, but no root span is opened
/// — the parent thread owns the request span. Commits at guard drop.
pub fn adopt_scope(ctx: TraceCtx) -> TraceGuard {
    if !collecting() {
        return TraceGuard::inert();
    }
    let trace = ActiveTrace {
        trace_id: ctx.trace_id,
        rule: CommitRule::Always,
        stack: vec![ctx.parent_span],
        spans: Vec::new(),
        overflow: 0,
    };
    if install(trace) {
        TraceGuard { root_idx: None, started: Instant::now(), armed: true }
    } else {
        TraceGuard::inert()
    }
}

/// Opens a child span of the innermost open span on this thread.
/// Inert (near-free) when no trace is active.
pub fn span(name: &'static str) -> SpanGuard {
    if !collecting() {
        return SpanGuard::inert();
    }
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let Some(trace) = slot.as_mut() else { return SpanGuard::inert() };
        let parent = trace.stack.last().copied().unwrap_or(0);
        let span = blank_span(name, parent, now_ns());
        match push_span(trace, span, true) {
            Some(idx) => SpanGuard { idx: Some(idx), started: Instant::now() },
            None => SpanGuard::inert(),
        }
    })
}

/// Records an already-finished span (started at `started`, ending now)
/// as a child of the innermost open span. For regions whose lifetime
/// doesn't nest in a lexical scope — e.g. a scan's per-segment work,
/// which is closed when the *next* segment begins.
pub fn record_closed(
    name: &'static str,
    started: Instant,
    attrs: &[(&'static str, u64)],
    tag: Option<(&'static str, &'static str)>,
) {
    if !collecting() {
        return;
    }
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let Some(trace) = slot.as_mut() else { return };
        let parent = trace.stack.last().copied().unwrap_or(0);
        let mut span = blank_span(name, parent, instant_ns(started));
        span.dur_ns = crate::elapsed_ns(started);
        for &(k, v) in attrs.iter().take(MAX_ATTRS) {
            span.push_attr(k, v);
        }
        span.tag = tag;
        push_span(trace, span, false);
    });
}

/// The context to propagate to remote work started under the current
/// span: `Some` only when a trace is active *and* head-sampled (slow-
/// only traces don't force remote recording), with `parent_span` = the
/// innermost open span.
pub fn current_ctx() -> Option<TraceCtx> {
    if !collecting() {
        return None;
    }
    ACTIVE.with(|a| {
        let slot = a.borrow();
        let trace = slot.as_ref()?;
        if trace.rule != CommitRule::Always {
            return None;
        }
        Some(TraceCtx {
            trace_id: trace.trace_id,
            parent_span: trace.stack.last().copied().unwrap_or(0),
        })
    })
}

/// Takes every committed span out of the global ring.
pub fn drain() -> Vec<Span> {
    store().lock().unwrap().spans.drain(..).collect()
}

/// Committed spans currently in the ring (without draining).
pub fn ring_len() -> usize {
    store().lock().unwrap().spans.len()
}

fn hex_id(v: u64) -> String {
    format!("0x{v:016x}")
}

/// Renders spans as a Chrome trace-event JSON document (Perfetto /
/// `chrome://tracing` loadable). Events are sorted by start time;
/// `ts`/`dur` are microseconds with nanosecond fractions.
pub fn chrome_json(spans: &[Span]) -> Json {
    let mut sorted: Vec<&Span> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start_ns, s.span_id));
    let pid = std::process::id() as u64;
    let events: Vec<Json> = sorted
        .iter()
        .map(|s| {
            let mut args = vec![
                ("trace_id".to_string(), Json::Str(hex_id(s.trace_id))),
                ("span_id".to_string(), Json::Str(hex_id(s.span_id))),
                ("parent_id".to_string(), Json::Str(hex_id(s.parent_id))),
            ];
            if s.remote_parent {
                args.push(("remote_parent".to_string(), Json::U64(1)));
            }
            for &(k, v) in &s.attrs[..s.n_attrs as usize] {
                args.push((k.to_string(), Json::U64(v)));
            }
            if let Some((k, v)) = s.tag {
                args.push((k.to_string(), Json::Str(v.to_string())));
            }
            Json::Obj(vec![
                ("name".to_string(), Json::Str(s.name.to_string())),
                ("cat".to_string(), Json::Str("scc".to_string())),
                ("ph".to_string(), Json::Str("X".to_string())),
                ("ts".to_string(), Json::F64(s.start_ns as f64 / 1e3)),
                ("dur".to_string(), Json::F64(s.dur_ns as f64 / 1e3)),
                ("pid".to_string(), Json::U64(pid)),
                ("tid".to_string(), Json::U64(s.tid as u64)),
                ("args".to_string(), Json::Obj(args)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::Str("ns".to_string())),
    ])
}

/// Drains the ring and writes a Chrome trace-event JSON file. Returns
/// the number of spans written.
pub fn write_chrome_file(path: &std::path::Path) -> std::io::Result<usize> {
    let spans = drain();
    let doc = chrome_json(&spans);
    let mut f = std::fs::File::create(path)?;
    f.write_all(doc.pretty().as_bytes())?;
    f.write_all(b"\n")?;
    Ok(spans.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Tracer state is process-global; tests serialize on this.
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        let g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        drain();
        set_collect(true);
        configure(TraceConfig { sample_rate: 1.0, slow_ns: 0 });
        g
    }

    #[test]
    fn ctx_wire_roundtrip() {
        let ctx = TraceCtx { trace_id: 0x0123_4567_89AB_CDEF, parent_span: 42 };
        assert_eq!(TraceCtx::from_wire(&ctx.to_wire()), ctx);
        assert_eq!(ctx.to_wire().len(), CTX_WIRE_BYTES);
    }

    #[test]
    fn root_and_children_form_a_tree() {
        let _g = lock();
        {
            let root = start_root("test.root");
            root.add_attr("kind", 7);
            {
                let a = span("test.child_a");
                a.add_attr("n", 1);
                let _b = span("test.grandchild");
            }
            let _c = span("test.child_c");
        }
        set_collect(false);
        let spans = drain();
        assert_eq!(spans.len(), 4);
        let root = spans.iter().find(|s| s.name == "test.root").unwrap();
        assert_eq!(root.parent_id, 0);
        assert_eq!(root.attrs[0], ("kind", 7));
        let a = spans.iter().find(|s| s.name == "test.child_a").unwrap();
        let b = spans.iter().find(|s| s.name == "test.grandchild").unwrap();
        let c = spans.iter().find(|s| s.name == "test.child_c").unwrap();
        assert_eq!(a.parent_id, root.span_id);
        assert_eq!(b.parent_id, a.span_id);
        assert_eq!(c.parent_id, root.span_id);
        assert!(spans.iter().all(|s| s.trace_id == root.trace_id));
        assert!(root.dur_ns >= a.dur_ns);
    }

    #[test]
    fn unsampled_traces_discard_unless_slow() {
        let _g = lock();
        configure(TraceConfig { sample_rate: 0.0, slow_ns: 0 });
        {
            let g = start_root("test.unsampled");
            assert!(!g.is_active(), "rate 0 + no slow capture = inert");
        }
        // Slow-capture on: buffered, but a fast trace still discards.
        configure(TraceConfig { sample_rate: 0.0, slow_ns: u64::MAX });
        {
            let g = start_root("test.fast");
            assert!(g.is_active());
            let _c = span("test.fast_child");
        }
        assert_eq!(ring_len(), 0, "fast unsampled trace must discard");
        // A trace slower than the threshold commits despite rate 0.
        configure(TraceConfig { sample_rate: 0.0, slow_ns: 1 });
        {
            let _gd = start_root("test.slow");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        set_collect(false);
        let spans = drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "test.slow");
    }

    #[test]
    fn remote_root_joins_the_wire_trace() {
        let _g = lock();
        let ctx = TraceCtx { trace_id: 99, parent_span: 123 };
        {
            let _r = start_remote_root("test.server", ctx, Instant::now());
            let _c = span("test.server_child");
        }
        set_collect(false);
        let spans = drain();
        let root = spans.iter().find(|s| s.name == "test.server").unwrap();
        assert_eq!(root.trace_id, 99);
        assert_eq!(root.parent_id, 123);
        assert!(root.remote_parent);
        let child = spans.iter().find(|s| s.name == "test.server_child").unwrap();
        assert_eq!(child.parent_id, root.span_id);
        assert_eq!(child.trace_id, 99);
        assert!(!child.remote_parent);
    }

    #[test]
    fn adopt_scope_parents_on_the_given_span() {
        let _g = lock();
        let ctx = TraceCtx { trace_id: 7, parent_span: 70 };
        {
            let _a = adopt_scope(ctx);
            record_closed("test.worker_seg", Instant::now(), &[("seg", 3)], Some(("k", "avx2")));
        }
        set_collect(false);
        let spans = drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent_id, 70);
        assert_eq!(spans[0].trace_id, 7);
        assert_eq!(spans[0].attrs[0], ("seg", 3));
        assert_eq!(spans[0].tag, Some(("k", "avx2")));
    }

    #[test]
    fn ctx_propagates_only_for_head_sampled_traces() {
        let _g = lock();
        assert_eq!(current_ctx(), None, "no active trace");
        {
            let _r = start_root("test.sampled");
            let inner = span("test.inner");
            let ctx = current_ctx().expect("sampled trace propagates");
            // Parent must be the innermost open span.
            drop(inner);
            let outer_ctx = current_ctx().unwrap();
            assert_eq!(ctx.trace_id, outer_ctx.trace_id);
            assert_ne!(ctx.parent_span, outer_ctx.parent_span);
        }
        configure(TraceConfig { sample_rate: 0.0, slow_ns: u64::MAX });
        {
            let g = start_root("test.slow_only");
            assert!(g.is_active());
            assert_eq!(current_ctx(), None, "slow-only traces don't propagate");
        }
        set_collect(false);
        drain();
    }

    #[test]
    fn collection_off_is_fully_inert() {
        let _g = lock();
        set_collect(false);
        {
            let r = start_root("test.off");
            assert!(!r.is_active());
            let _c = span("test.off_child");
            record_closed("test.off_closed", Instant::now(), &[], None);
        }
        assert_eq!(ring_len(), 0);
    }

    #[test]
    fn chrome_export_shape() {
        let _g = lock();
        {
            let _r = start_root("test.export");
            let _c = span("test.export_child");
        }
        set_collect(false);
        let spans = drain();
        let doc = chrome_json(&spans);
        let text = doc.pretty();
        let parsed = crate::json::parse(&text).expect("export must reparse");
        let Json::Obj(top) = parsed else { panic!("top-level object") };
        let events = top.iter().find(|(k, _)| k == "traceEvents").unwrap();
        let Json::Arr(events) = &events.1 else { panic!("traceEvents array") };
        assert_eq!(events.len(), 2);
        // Sorted by ts, ph=X, args carry the ids.
        let mut last_ts = f64::MIN;
        for ev in events {
            let Json::Obj(fields) = ev else { panic!("event object") };
            let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
            assert_eq!(get("ph"), Some(Json::Str("X".to_string())));
            let Some(Json::F64(ts)) = get("ts") else { panic!("ts") };
            assert!(ts >= last_ts);
            last_ts = ts;
            let Some(Json::Obj(args)) = get("args") else { panic!("args") };
            assert!(args.iter().any(|(k, _)| k == "span_id"));
        }
    }
}
