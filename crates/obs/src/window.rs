//! # Sliding-window histograms — tail latency over the last N seconds
//!
//! A [`WindowedHistogram`] is a rotating ring of *epoch* histograms:
//! time is cut into fixed epochs (default one second) and each sample
//! lands in the slot for its epoch. A [`snapshot`](WindowedHistogram::snapshot)
//! merges the slots covering the last `window_epochs` epochs (including
//! the current partial one) into a single log₂-bucketed view, so
//! p50/p95/p99 answer "over the last N seconds", not "since boot" —
//! the difference between seeing a latency regression live and seeing
//! it diluted by an hour of healthy history.
//!
//! ## Rotation correctness
//!
//! Each ring slot is guarded by its own [`Mutex`]; a recorder locks
//! exactly one slot, reclaims it if it still holds an expired epoch,
//! and merges its sample — so rotation can never lose or double-count
//! a sample: the sample is in the slot's totals for exactly one epoch
//! value, and a snapshot either includes that epoch or it doesn't.
//! The ring holds `window_epochs + 1` slots, so the slot a new epoch
//! reclaims always carries an epoch that has already fallen out of
//! every possible window — reclaiming can't erase live data.
//!
//! The per-sample cost is one uncontended mutex (different epochs hit
//! different slots; within an epoch, recorders contend only with each
//! other and the rare snapshot). That is deliberate: windowed
//! histograms instrument *request-level* events (thousands/sec), not
//! per-value decode loops — the cumulative [`Histogram`](crate::Histogram)
//! stays lock-free for those.
//!
//! Epoch numbering is relative to the histogram's creation instant.
//! Tests drive rotation deterministically through
//! [`record_at`](WindowedHistogram::record_at) /
//! [`snapshot_at`](WindowedHistogram::snapshot_at) without sleeping.

use crate::{bucket_index, percentile_from_buckets, HISTOGRAM_BUCKETS};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default epoch length: 1 second.
pub const DEFAULT_EPOCH: Duration = Duration::from_secs(1);
/// Default number of epochs merged into a snapshot: a 10-second window.
pub const DEFAULT_WINDOW_EPOCHS: usize = 10;

/// One epoch's worth of samples. Plain fields — the owning slot mutex
/// is the synchronisation.
#[derive(Debug, Clone)]
struct Slot {
    /// Which epoch these totals belong to. `u64::MAX` = never used.
    epoch: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Slot {
    fn empty() -> Self {
        Self {
            epoch: u64::MAX,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    fn clear_for(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.buckets = [0; HISTOGRAM_BUCKETS];
    }

    fn merge_sample(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }
}

/// A log₂-bucketed histogram over a sliding time window (see the
/// [module docs](self) for the rotation design).
#[derive(Debug)]
pub struct WindowedHistogram {
    epoch_len: Duration,
    window_epochs: usize,
    origin: Instant,
    slots: Box<[Mutex<Slot>]>,
}

impl WindowedHistogram {
    /// A histogram with the default 1-second epoch and 10-epoch window.
    pub fn new() -> Self {
        Self::with_config(DEFAULT_EPOCH, DEFAULT_WINDOW_EPOCHS)
    }

    /// A histogram with `window_epochs` epochs of `epoch_len` each.
    /// Panics if either is zero.
    pub fn with_config(epoch_len: Duration, window_epochs: usize) -> Self {
        assert!(!epoch_len.is_zero(), "epoch length must be positive");
        assert!(window_epochs >= 1, "window needs at least one epoch");
        // +1 slot so reclaiming a slot for the newest epoch always
        // evicts an epoch strictly older than any window can cover.
        let slots = (0..window_epochs + 1).map(|_| Mutex::new(Slot::empty())).collect();
        Self { epoch_len, window_epochs, origin: Instant::now(), slots }
    }

    /// Epoch length.
    pub fn epoch_len(&self) -> Duration {
        self.epoch_len
    }

    /// Epochs merged into a snapshot.
    pub fn window_epochs(&self) -> usize {
        self.window_epochs
    }

    /// The span of time a snapshot covers.
    pub fn window(&self) -> Duration {
        self.epoch_len * self.window_epochs as u32
    }

    /// The epoch the wall clock is currently in.
    #[inline]
    pub fn now_epoch(&self) -> u64 {
        let elapsed = self.origin.elapsed();
        (elapsed.as_nanos() / self.epoch_len.as_nanos().max(1)) as u64
    }

    /// Records one sample into the current epoch.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_at(self.now_epoch(), value);
    }

    /// Records one sample into epoch `epoch`. Public so tests can force
    /// rotation deterministically; production code uses [`record`]
    /// (which stamps the current epoch).
    ///
    /// [`record`]: WindowedHistogram::record
    pub fn record_at(&self, epoch: u64, value: u64) {
        let mut slot = self.slots[epoch as usize % self.slots.len()].lock().unwrap();
        if slot.epoch != epoch {
            // Either a never-used slot or one whose epoch has rotated
            // out of every reachable window — reclaim it. A laggard
            // recorder that computed an epoch already evicted lands in
            // the freshly-claimed epoch instead: time-skewed by one
            // ring revolution at worst, but counted exactly once.
            if slot.epoch == u64::MAX || slot.epoch < epoch {
                slot.clear_for(epoch);
            }
            // slot.epoch > epoch: a racing recorder already advanced
            // this slot; fold the sample into the newer epoch rather
            // than resurrect the old one.
        }
        slot.merge_sample(value);
    }

    /// Merged view of the last `window_epochs` epochs, current partial
    /// epoch included.
    pub fn snapshot(&self) -> WindowSnapshot {
        self.snapshot_at(self.now_epoch())
    }

    /// Merged view of epochs `(at - window_epochs, at]`. Public for
    /// deterministic tests.
    pub fn snapshot_at(&self, at: u64) -> WindowSnapshot {
        let oldest = (at + 1).saturating_sub(self.window_epochs as u64);
        let mut snap = WindowSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
            window: self.window(),
        };
        for slot in self.slots.iter() {
            let slot = slot.lock().unwrap();
            if slot.epoch == u64::MAX || slot.epoch < oldest || slot.epoch > at {
                continue;
            }
            snap.count += slot.count;
            snap.sum = snap.sum.saturating_add(slot.sum);
            snap.min = snap.min.min(slot.min);
            snap.max = snap.max.max(slot.max);
            for (acc, b) in snap.buckets.iter_mut().zip(slot.buckets.iter()) {
                *acc += b;
            }
        }
        snap
    }

    /// Clears every slot.
    pub(crate) fn reset(&self) {
        for slot in self.slots.iter() {
            *slot.lock().unwrap() = Slot::empty();
        }
    }
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A merged, immutable view over one window. Quantiles interpolate
/// within log₂ buckets exactly like [`Histogram::percentile`]
/// (see [`crate::Histogram::percentile`]).
#[derive(Debug, Clone)]
pub struct WindowSnapshot {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
    window: Duration,
}

impl WindowSnapshot {
    /// Samples in the window.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples in the window.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` if the window is empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if the window is empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, or `None` if the window is empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Occupancy of bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// The span of time this snapshot covers.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Samples per second over the window — turns a windowed histogram
    /// of unit samples into a rate (shed/s, requests/s).
    pub fn rate_per_sec(&self) -> f64 {
        self.count as f64 / self.window.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Interpolated `q`-quantile over the window, clamped to the
    /// observed `[min, max]`. `None` when empty or `q` out of range.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let v = percentile_from_buckets(self.count, |i| self.buckets[i], q)?;
        Some(v.clamp(self.min()?, self.max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_slides_over_epochs() {
        let w = WindowedHistogram::with_config(Duration::from_millis(10), 3);
        w.record_at(0, 100);
        w.record_at(1, 200);
        w.record_at(2, 400);
        // Window at epoch 2 covers epochs 0..=2.
        let s = w.snapshot_at(2);
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), Some(100));
        assert_eq!(s.max(), Some(400));
        // At epoch 3 the window is 1..=3: epoch 0 has slid out.
        let s = w.snapshot_at(3);
        assert_eq!(s.count(), 2);
        assert_eq!(s.min(), Some(200));
        // Far future: everything has expired.
        assert_eq!(w.snapshot_at(100).count(), 0);
        assert_eq!(w.snapshot_at(100).percentile(0.5), None);
    }

    #[test]
    fn slot_reclaim_evicts_only_expired_epochs() {
        let w = WindowedHistogram::with_config(Duration::from_millis(10), 2);
        // 3 slots; epoch 3 reuses epoch 0's slot.
        w.record_at(0, 1);
        w.record_at(1, 2);
        w.record_at(2, 4);
        w.record_at(3, 8);
        let s = w.snapshot_at(3); // covers 2..=3
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum(), 12);
    }

    #[test]
    fn laggard_sample_lands_once() {
        let w = WindowedHistogram::with_config(Duration::from_millis(10), 2);
        w.record_at(0, 5);
        w.record_at(3, 7); // reclaims slot 0
                           // A laggard recording into the long-gone epoch 0 folds into the
                           // slot's current epoch (3): counted once, never resurrected.
        w.record_at(0, 9);
        let s = w.snapshot_at(3);
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum(), 16);
        assert_eq!(w.snapshot_at(10).count(), 0);
    }

    #[test]
    fn snapshot_percentiles_interpolate() {
        let w = WindowedHistogram::with_config(Duration::from_secs(1), 4);
        for v in 1000..2000u64 {
            w.record_at(1, v);
        }
        let s = w.snapshot_at(2);
        let p50 = s.percentile(0.5).unwrap();
        assert!(p50.abs_diff(1500) < 75, "p50 {p50}");
        assert_eq!(s.percentile(1.0), Some(1999));
        assert!((s.mean().unwrap() - 1499.5).abs() < 1.0);
    }

    #[test]
    fn rate_counts_unit_samples() {
        let w = WindowedHistogram::with_config(Duration::from_secs(1), 5);
        for _ in 0..50 {
            w.record_at(2, 1);
        }
        let s = w.snapshot_at(2);
        assert_eq!(s.count(), 50);
        assert!((s.rate_per_sec() - 10.0).abs() < 1e-9, "50 samples / 5s window");
    }

    #[test]
    fn live_clock_record_lands_in_current_window() {
        let w = WindowedHistogram::new();
        w.record(42);
        assert_eq!(w.snapshot().count(), 1);
        assert_eq!(w.snapshot().percentile(0.5), Some(42));
    }

    #[test]
    fn concurrent_writers_never_lose_or_double_count() {
        use std::sync::Arc;
        // 5 ms epochs force rotation-claims while 8 threads hammer;
        // the window (60 s) is far wider than the test runs, so no
        // epoch *expires* mid-test and afterwards every sample must be
        // visible in a covering snapshot — exactly once.
        let w = Arc::new(WindowedHistogram::with_config(Duration::from_millis(5), 12_000));
        let threads = 8u64;
        let per_thread = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        // Mix live-clock and forced-epoch records so
                        // epoch claims race with recording constantly.
                        if i % 2 == 0 {
                            w.record(1);
                        } else {
                            w.record_at(w.now_epoch() + (t + i) % 3, 1);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = w.snapshot_at(w.now_epoch() + 3);
        assert_eq!(s.count(), threads * per_thread);
        assert_eq!(s.sum(), threads * per_thread);
    }
}
