//! Versioned JSON export of a [`Registry`](crate::Registry) snapshot,
//! plus the schema validator the CI smoke job runs against it.
//!
//! ## Schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "generator": "scc-obs",
//!   "counters":   { "<name>": <u64>, ... },
//!   "gauges":     { "<name>": <number>, ... },
//!   "histograms": {
//!     "<name>": {
//!       "count": <u64>, "sum": <u64>,
//!       "min": <u64>|null, "max": <u64>|null, "mean": <number>|null,
//!       "buckets": [[<bucket_index>, <count>], ...]
//!     }, ...
//!   }
//! }
//! ```
//!
//! Metric names are sorted; `buckets` lists only non-empty buckets in
//! ascending index order (bucket 0 = zeros, bucket *i* = samples in
//! `[2^(i-1), 2^i)`). Consumers must ignore unknown top-level keys so
//! the schema can grow additively; any breaking change bumps
//! [`SCHEMA_VERSION`].
//!
//! Registries holding sliding-window histograms additionally export a
//! `windows` section (one snapshot per window at export time):
//!
//! ```json
//! "windows": {
//!   "<name>": {
//!     "window_s": <number>, "count": <u64>,
//!     "p50": <u64>|null, "p95": <u64>|null, "p99": <u64>|null,
//!     "mean": <number>|null, "rate_per_s": <number>
//!   }, ...
//! }
//! ```
//!
//! The section is additive within schema version 1: absent when no
//! windowed metric is registered, and pre-existing consumers ignore
//! it.

use crate::json::Json;
use crate::{Metric, Registry};

/// Version stamped into every export; bumped on breaking changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Snapshots `registry` into a schema-version-1 JSON document.
pub fn to_json(registry: &Registry) -> Json {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    let mut windows = Vec::new();
    for (name, metric) in registry.snapshot() {
        match metric {
            Metric::Counter(c) => counters.push((name, Json::U64(c.get()))),
            Metric::Gauge(g) => gauges.push((name, Json::F64(g.get()))),
            Metric::Window(w) => {
                let s = w.snapshot();
                let pct = |q: f64| s.percentile(q).map_or(Json::Null, Json::U64);
                windows.push((
                    name,
                    Json::Obj(vec![
                        ("window_s".into(), Json::F64(s.window().as_secs_f64())),
                        ("count".into(), Json::U64(s.count())),
                        ("p50".into(), pct(0.5)),
                        ("p95".into(), pct(0.95)),
                        ("p99".into(), pct(0.99)),
                        ("mean".into(), s.mean().map_or(Json::Null, Json::F64)),
                        ("rate_per_s".into(), Json::F64(s.rate_per_sec())),
                    ]),
                ));
            }
            Metric::Histogram(h) => {
                let buckets = h
                    .nonzero_buckets()
                    .into_iter()
                    .map(|(i, n)| Json::Arr(vec![Json::U64(i as u64), Json::U64(n)]))
                    .collect();
                histograms.push((
                    name,
                    Json::Obj(vec![
                        ("count".into(), Json::U64(h.count())),
                        ("sum".into(), Json::U64(h.sum())),
                        ("min".into(), h.min().map_or(Json::Null, Json::U64)),
                        ("max".into(), h.max().map_or(Json::Null, Json::U64)),
                        ("mean".into(), h.mean().map_or(Json::Null, Json::F64)),
                        ("buckets".into(), Json::Arr(buckets)),
                    ]),
                ));
            }
        }
    }
    let mut doc = vec![
        ("schema_version".into(), Json::U64(SCHEMA_VERSION)),
        ("generator".into(), Json::Str("scc-obs".into())),
        ("counters".into(), Json::Obj(counters)),
        ("gauges".into(), Json::Obj(gauges)),
        ("histograms".into(), Json::Obj(histograms)),
    ];
    if !windows.is_empty() {
        doc.push(("windows".into(), Json::Obj(windows)));
    }
    Json::Obj(doc)
}

/// Serializes [`to_json`] of `registry` to `path` (pretty-printed).
pub fn write_file(registry: &Registry, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_json(registry).pretty())
}

/// Checks that `doc` is a well-formed schema-version-1 export: key
/// presence and value types, exactly what the CI smoke job enforces.
/// Returns a list of violations (empty = valid).
pub fn validate(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    let mut fail = |msg: String| errors.push(msg);

    match doc.get("schema_version").and_then(Json::as_u64) {
        Some(v) if v == SCHEMA_VERSION => {}
        Some(v) => fail(format!("schema_version is {v}, expected {SCHEMA_VERSION}")),
        None => fail("schema_version missing or not a u64".into()),
    }
    if doc.get("generator").and_then(Json::as_str).is_none() {
        fail("generator missing or not a string".into());
    }

    match doc.get("counters").and_then(Json::as_obj) {
        None => fail("counters missing or not an object".into()),
        Some(pairs) => {
            for (name, v) in pairs {
                if v.as_u64().is_none() {
                    fail(format!("counter {name:?} is not a u64"));
                }
            }
        }
    }

    match doc.get("gauges").and_then(Json::as_obj) {
        None => fail("gauges missing or not an object".into()),
        Some(pairs) => {
            for (name, v) in pairs {
                if v.as_f64().is_none() {
                    fail(format!("gauge {name:?} is not a number"));
                }
            }
        }
    }

    match doc.get("histograms").and_then(Json::as_obj) {
        None => fail("histograms missing or not an object".into()),
        Some(pairs) => {
            for (name, h) in pairs {
                for key in ["count", "sum"] {
                    if h.get(key).and_then(Json::as_u64).is_none() {
                        fail(format!("histogram {name:?}: {key} missing or not a u64"));
                    }
                }
                for key in ["min", "max"] {
                    match h.get(key) {
                        Some(Json::Null) | Some(Json::U64(_)) => {}
                        _ => fail(format!("histogram {name:?}: {key} must be u64 or null")),
                    }
                }
                match h.get("mean") {
                    Some(Json::Null) => {}
                    Some(v) if v.as_f64().is_some() => {}
                    _ => fail(format!("histogram {name:?}: mean must be a number or null")),
                }
                match h.get("buckets").and_then(Json::as_arr) {
                    None => fail(format!("histogram {name:?}: buckets missing or not an array")),
                    Some(items) => {
                        for (i, item) in items.iter().enumerate() {
                            let ok = item.as_arr().is_some_and(|pair| {
                                pair.len() == 2
                                    && pair[0]
                                        .as_u64()
                                        .is_some_and(|idx| idx < crate::HISTOGRAM_BUCKETS as u64)
                                    && pair[1].as_u64().is_some()
                            });
                            if !ok {
                                fail(format!(
                                    "histogram {name:?}: buckets[{i}] is not a [index, count] pair"
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    // `windows` is optional (additive); when present, check its shape.
    if let Some(windows) = doc.get("windows") {
        match windows.as_obj() {
            None => fail("windows present but not an object".into()),
            Some(pairs) => {
                for (name, w) in pairs {
                    if w.get("count").and_then(Json::as_u64).is_none() {
                        fail(format!("window {name:?}: count missing or not a u64"));
                    }
                    for key in ["window_s", "rate_per_s"] {
                        match w.get(key) {
                            Some(v) if v.as_f64().is_some() => {}
                            _ => fail(format!("window {name:?}: {key} missing or not a number")),
                        }
                    }
                    for key in ["p50", "p95", "p99"] {
                        match w.get(key) {
                            Some(Json::Null) | Some(Json::U64(_)) => {}
                            _ => fail(format!("window {name:?}: {key} must be u64 or null")),
                        }
                    }
                    match w.get("mean") {
                        Some(Json::Null) => {}
                        Some(v) if v.as_f64().is_some() => {}
                        _ => fail(format!("window {name:?}: mean must be a number or null")),
                    }
                }
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("a.hits").add(12);
        r.counter("a.misses"); // zero-valued, still exported
        r.gauge("b.rate").set(0.25);
        let h = r.histogram("c.ns");
        for v in [0u64, 1, 5, 5, 1_000_000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn export_round_trips_and_validates() {
        let r = sample_registry();
        let doc = to_json(&r);
        assert!(validate(&doc).is_empty(), "{:?}", validate(&doc));

        let text = doc.pretty();
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed, doc, "write -> parse is lossless");
        assert_eq!(reparsed.pretty(), text, "parse -> write is stable");
        assert!(validate(&reparsed).is_empty());
    }

    #[test]
    fn export_contents_match_registry() {
        let doc = to_json(&sample_registry());
        assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(SCHEMA_VERSION));
        let counters = doc.get("counters").unwrap();
        assert_eq!(counters.get("a.hits").and_then(Json::as_u64), Some(12));
        assert_eq!(counters.get("a.misses").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("gauges").unwrap().get("b.rate").and_then(Json::as_f64), Some(0.25));
        let h = doc.get("histograms").unwrap().get("c.ns").unwrap();
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(5));
        assert_eq!(h.get("sum").and_then(Json::as_u64), Some(1_000_011));
        assert_eq!(h.get("min").and_then(Json::as_u64), Some(0));
        assert_eq!(h.get("max").and_then(Json::as_u64), Some(1_000_000));
        // 0 -> bucket 0; 1 -> bucket 1; 5,5 -> bucket 3; 1e6 -> bucket 20.
        let buckets = h.get("buckets").and_then(Json::as_arr).unwrap();
        let pairs: Vec<(u64, u64)> = buckets
            .iter()
            .map(|b| {
                let p = b.as_arr().unwrap();
                (p[0].as_u64().unwrap(), p[1].as_u64().unwrap())
            })
            .collect();
        assert_eq!(pairs, vec![(0, 1), (1, 1), (3, 2), (20, 1)]);
    }

    #[test]
    fn windows_section_exports_and_validates() {
        let r = sample_registry();
        // No windowed metric registered: the section stays absent.
        assert!(to_json(&r).get("windows").is_none());
        let w = r.windowed("d.win_ns");
        for v in [100u64, 200, 400] {
            w.record(v);
        }
        let doc = to_json(&r);
        assert!(validate(&doc).is_empty(), "{:?}", validate(&doc));
        let win = doc.get("windows").unwrap().get("d.win_ns").unwrap();
        assert_eq!(win.get("count").and_then(Json::as_u64), Some(3));
        assert!(win.get("p50").and_then(Json::as_u64).is_some());
        assert_eq!(win.get("window_s").and_then(Json::as_f64), Some(10.0));
        let text = doc.pretty();
        let reparsed = parse(&text).unwrap();
        assert!(validate(&reparsed).is_empty());

        // Malformed windows are flagged.
        let bad = parse(r#"{"windows": {"w": {"count": "x", "p50": -1}}}"#).unwrap();
        let errors = validate(&bad);
        assert!(errors.iter().any(|e| e.contains("count")));
        assert!(errors.iter().any(|e| e.contains("p50")));
        assert!(errors.iter().any(|e| e.contains("window_s")));
    }

    #[test]
    fn validator_flags_violations() {
        let doc = parse(r#"{"schema_version": 2, "counters": {"x": "nope"}}"#).unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("schema_version")));
        assert!(errors.iter().any(|e| e.contains("\"x\"")));
        assert!(errors.iter().any(|e| e.contains("gauges")));
        assert!(errors.iter().any(|e| e.contains("histograms")));
        assert!(errors.iter().any(|e| e.contains("generator")));
    }
}
