//! # scc-obs — zero-dependency observability for the scc workspace
//!
//! A hierarchical metrics registry with three instrument kinds —
//! [`Counter`], [`Gauge`] and log-scale [`Histogram`] — plus RAII timer
//! spans ([`TimeSpan`]) and a stable, versioned JSON export
//! ([`export`]). Metric names are dot-separated paths
//! (`storage.pool.hits`, `core.decode.pfor.ns`) so exports group
//! naturally by subsystem.
//!
//! ## Cost model
//!
//! The registry is designed so instrumented hot loops pay nothing when
//! telemetry is off:
//!
//! * **Runtime flag** — every recording macro first checks
//!   [`enabled()`], a single relaxed atomic load. Telemetry is
//!   *disabled by default*; benches and the CLI opt in with
//!   [`set_enabled`].
//! * **Handle caching** — macros with constant metric names resolve the
//!   registry entry once per call site through a `OnceLock`, so the
//!   steady-state cost of an enabled counter bump is one atomic add.
//! * **Compile-out** — building with the `off` feature turns the macros
//!   into empty expansions; not even the flag load survives.
//!
//! Instruments themselves are lock-free (atomics only); the registry
//! mutex is touched only on first resolution of a name and at export.
//!
//! ```
//! scc_obs::set_enabled(true);
//! scc_obs::counter_add!("doc.example.events", 3);
//! let c = scc_obs::global().counter("doc.example.events");
//! assert!(c.get() >= 3);
//! scc_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod json;
pub mod trace;
pub mod window;

pub use window::{WindowSnapshot, WindowedHistogram};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i)`, up to bucket 64 for
/// values with the top bit set.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.0.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A log₂-bucketed histogram of `u64` samples with exact count, sum,
/// min and max. Bucket boundaries are powers of two: bucket 0 counts
/// zeros, bucket `i` counts samples in `[2^(i-1), 2^i)`.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Index of the bucket a sample falls into.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive `[lo, hi]` value range covered by bucket `i`.
#[inline]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64.. => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// Shared quantile engine for [`Histogram`] and the windowed
/// snapshots: finds the bucket holding the `q`-th of `count` samples
/// and linearly interpolates within its `[lo, hi]` bounds by the
/// sample's rank inside the bucket. Callers clamp to their observed
/// `[min, max]`. `None` when `count == 0` or `q` is out of range.
/// Public so consumers of exported bucket arrays (e.g. a client
/// post-processing a server's stats JSON) can reuse the exact engine.
pub fn percentile_from_buckets(count: u64, bucket: impl Fn(usize) -> u64, q: f64) -> Option<u64> {
    if count == 0 || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for i in 0..HISTOGRAM_BUCKETS {
        let in_bucket = bucket(i);
        cum += in_bucket;
        if cum >= rank {
            let (lo, hi) = bucket_bounds(i);
            // Position of the ranked sample among this bucket's
            // occupants, as a fraction of the bucket: rank `pos` of
            // `in_bucket` maps to `pos / in_bucket` of the width, so a
            // full bucket's last sample reads the upper bound and a
            // lone median reads the middle, not an edge.
            let pos = rank - (cum - in_bucket);
            let frac = pos as f64 / in_bucket as f64;
            // f64 rounding can overshoot the top bucket's width by an
            // ulp; saturate rather than wrap past u64::MAX.
            return Some(lo.saturating_add(((hi - lo) as f64 * frac) as u64));
        }
    }
    // Racing recorders can leave the bucket sum momentarily behind
    // the count; the top bucket bound is the honest tail answer.
    Some(u64::MAX)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Mean sample value, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            None
        } else {
            Some(self.sum() as f64 / n as f64)
        }
    }

    /// Occupancy of bucket `i` (see [`bucket_index`]).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`) from the log₂
    /// buckets, linearly interpolated within the bucket holding the
    /// `q`-th sample and clamped to the exact observed `[min, max]`.
    /// Interpolation assumes samples spread uniformly inside a bucket;
    /// the worst case (all samples piled at one bucket edge) is still
    /// bounded by the bucket width, but typical skewed latency
    /// distributions land within a few percent of the true quantile
    /// instead of snapping to a power-of-two bound (which overstated
    /// p99 by up to 2×). `None` when empty or `q` is out of range.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let v = percentile_from_buckets(self.count(), |i| self.bucket(i), q)?;
        Some(v.clamp(self.min()?, self.max()?))
    }

    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let n = self.bucket(i);
                (n > 0).then_some((i, n))
            })
            .collect()
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`Histogram`].
    Histogram(Arc<Histogram>),
    /// A sliding-window [`WindowedHistogram`].
    Window(Arc<WindowedHistogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Window(_) => "window",
        }
    }
}

/// A named collection of instruments. Most code uses the process-wide
/// [`global()`] registry; tests can build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().unwrap();
        if let Some(m) = map.get(name) {
            return m.clone();
        }
        let m = make();
        map.insert(name.to_string(), m.clone());
        m
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use. Panics if `name` is already a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use. Panics if `name` is already a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use. Panics if `name` is already a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Returns the sliding-window histogram registered under `name`
    /// (default 1-second epochs, 10-epoch window), creating it on
    /// first use. Panics if `name` is already a different kind.
    pub fn windowed(&self, name: &str) -> Arc<WindowedHistogram> {
        self.windowed_with(name, window::DEFAULT_EPOCH, window::DEFAULT_WINDOW_EPOCHS)
    }

    /// Like [`Registry::windowed`] with an explicit epoch/window; the
    /// configuration of the *first* registration wins.
    pub fn windowed_with(
        &self,
        name: &str,
        epoch: std::time::Duration,
        window_epochs: usize,
    ) -> Arc<WindowedHistogram> {
        let make =
            || Metric::Window(Arc::new(WindowedHistogram::with_config(epoch, window_epochs)));
        match self.get_or_insert(name, make) {
            Metric::Window(w) => w,
            other => panic!("metric {name:?} is a {}, not a window", other.kind()),
        }
    }

    /// All registered metrics, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        self.metrics.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Zeroes every instrument **in place**: handles held by call sites
    /// (including the `OnceLock` caches inside the recording macros)
    /// stay valid and keep feeding the same entries.
    pub fn reset(&self) {
        for (_, m) in self.metrics.lock().unwrap().iter() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
                Metric::Window(w) => w.reset(),
            }
        }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide registry all the `*_add!` / `time_span!` macros
/// record into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Whether telemetry recording is currently on. One relaxed atomic
/// load; this is the gate every macro checks first.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "off")]
    {
        false
    }
    #[cfg(not(feature = "off"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Turns telemetry recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Starts a wall-clock probe if telemetry is enabled. Pair with an
/// `elapsed_ns` call; used by layers that keep their own plain-field
/// profiles (e.g. operator `OpProfile`s) rather than registry entries.
#[inline]
pub fn clock() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Nanoseconds since `start`, saturating at `u64::MAX`.
#[inline]
pub fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// RAII timer: records the span's lifetime in nanoseconds into a
/// histogram when dropped. Construct via [`TimeSpan::start`] or the
/// [`time_span!`] macro; a disabled span holds no clock and records
/// nothing.
#[must_use = "a TimeSpan records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct TimeSpan {
    inner: Option<(Arc<Histogram>, Instant)>,
}

impl TimeSpan {
    /// Starts a span feeding `hist`, if telemetry is enabled.
    pub fn start(hist: &Arc<Histogram>) -> Self {
        if enabled() {
            Self { inner: Some((Arc::clone(hist), Instant::now())) }
        } else {
            Self { inner: None }
        }
    }

    /// A span that records nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }
}

impl Drop for TimeSpan {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.inner.take() {
            hist.record(elapsed_ns(start));
        }
    }
}

/// Adds `$delta` to the global counter `$name` (a string literal or
/// other `&'static str` constant — the handle is cached per call
/// site). With the `off` feature, [`enabled()`] is a constant `false`
/// and the whole expansion is dead-code-eliminated.
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $delta:expr) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
                ::std::sync::OnceLock::new();
            HANDLE.get_or_init(|| $crate::global().counter($name)).add($delta as u64);
        }
    }};
}

/// Sets the global gauge `$name` (constant name; handle cached per
/// call site). Dead-code-eliminated with the `off` feature.
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $value:expr) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
                ::std::sync::OnceLock::new();
            HANDLE.get_or_init(|| $crate::global().gauge($name)).set($value as f64);
        }
    }};
}

/// Records `$value` into the global histogram `$name` (constant name;
/// handle cached per call site). Dead-code-eliminated with the `off`
/// feature.
#[macro_export]
macro_rules! histogram_record {
    ($name:expr, $value:expr) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
                ::std::sync::OnceLock::new();
            HANDLE.get_or_init(|| $crate::global().histogram($name)).record($value as u64);
        }
    }};
}

/// Opens a [`TimeSpan`] feeding the global histogram `$name` (constant
/// name; handle cached per call site). Bind it to a named local — its
/// drop closes the span:
///
/// ```
/// # scc_obs::set_enabled(true);
/// {
///     let _span = scc_obs::time_span!("doc.span.ns");
///     // ... timed work ...
/// }
/// # scc_obs::set_enabled(false);
/// ```
#[macro_export]
macro_rules! time_span {
    ($name:expr) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
                ::std::sync::OnceLock::new();
            $crate::TimeSpan::start(HANDLE.get_or_init(|| $crate::global().histogram($name)))
        } else {
            $crate::TimeSpan::disabled()
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let r = Registry::new();
        let c = r.counter("a.b");
        c.add(3);
        c.add(4);
        assert_eq!(r.counter("a.b").get(), 7);
    }

    #[test]
    fn concurrent_counter_increments() {
        let r = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("concurrent.hits");
                    for _ in 0..per_thread {
                        c.add(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("concurrent.hits").get(), threads * per_thread);
    }

    #[test]
    fn gauge_last_value_wins() {
        let r = Registry::new();
        let g = r.gauge("x");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(r.gauge("x").get(), -2.25);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::new();
        // Exhaustive boundary map: 0 -> bucket 0, [2^(i-1), 2^i) -> i.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 1); // 0
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(3), 2); // 4, 7
        assert_eq!(h.bucket(4), 1); // 8
        assert_eq!(h.bucket(10), 1); // 1023
        assert_eq!(h.bucket(11), 1); // 1024
        assert_eq!(h.bucket(64), 1); // u64::MAX
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn histogram_empty_has_no_extremes() {
        let h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn reset_zeroes_in_place() {
        let r = Registry::new();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram("h");
        c.add(5);
        g.set(9.0);
        h.record(100);
        r.reset();
        // The *same handles* read zero: reset must not replace entries.
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        c.add(1);
        assert_eq!(r.counter("c").get(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("same.name");
        r.gauge("same.name");
    }

    #[test]
    fn macros_respect_enabled_flag() {
        // Uses the global registry: only assert relative deltas, the
        // test binary may run other tests in parallel.
        let c = global().counter("obs.test.flagged");
        set_enabled(false);
        let before = c.get();
        counter_add!("obs.test.flagged", 10);
        assert_eq!(c.get(), before);
        set_enabled(true);
        counter_add!("obs.test.flagged", 10);
        assert_eq!(c.get(), before + 10);
        set_enabled(false);
    }

    #[test]
    fn percentile_lands_in_the_right_bucket_decade() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), None);
        // 90 fast samples around 100, 10 slow ones around 100_000.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let p50 = h.percentile(0.5).unwrap();
        assert!((100..200).contains(&p50), "p50 {p50}");
        let p99 = h.percentile(0.99).unwrap();
        assert_eq!(p99, 100_000, "clamped to the observed max, got {p99}");
        let p0 = h.percentile(0.0).unwrap();
        assert!((100..200).contains(&p0), "p0 {p0} bounded below by the observed min");
        assert_eq!(h.percentile(1.0).unwrap(), 100_000);
        assert_eq!(h.percentile(1.5), None);
        // A single sample is every percentile.
        let one = Histogram::new();
        one.record(7);
        assert_eq!(one.percentile(0.5), Some(7));
    }

    #[test]
    fn percentile_interpolates_within_the_bucket() {
        // Regression for the bucket-bound bias: 1000 uniform samples in
        // 1000..2000 nearly fill bucket 11 ([1024, 2047]); the old
        // upper-bound answer pinned p50 at 2047 (+36% vs the true
        // 1500). Interpolation must land within 5%.
        let h = Histogram::new();
        for v in 1000..2000u64 {
            h.record(v);
        }
        for (q, want) in [(0.25, 1250u64), (0.5, 1500), (0.75, 1750), (0.99, 1990)] {
            let got = h.percentile(q).unwrap();
            let err = got.abs_diff(want) as f64 / want as f64;
            assert!(err < 0.05, "q={q}: got {got}, want ~{want} (err {err:.3})");
        }
        // Degenerate distribution: every percentile is the sole value.
        let point = Histogram::new();
        for _ in 0..100 {
            point.record(700);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(point.percentile(q), Some(700), "q={q}");
        }
        // Zeros occupy the zero-width bucket 0.
        let zeros = Histogram::new();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.percentile(0.5), Some(0));
        // Top bucket: interpolation must not overflow u64.
        let top = Histogram::new();
        top.record(u64::MAX);
        top.record(u64::MAX - 1);
        assert!(top.percentile(1.0).unwrap() >= u64::MAX - 1);
    }

    #[test]
    fn bucket_bounds_cover_the_u64_line() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(11), (1024, 2047));
        assert_eq!(bucket_bounds(64), (1u64 << 63, u64::MAX));
        for i in 1..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, bucket_bounds(i - 1).1 + 1, "bucket {i} contiguous");
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            assert!(lo <= hi);
        }
    }

    #[test]
    fn time_span_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("span.ns");
        set_enabled(true);
        {
            let _span = TimeSpan::start(&h);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_enabled(false);
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1_000_000, "slept 1ms, recorded {}ns", h.sum());
    }
}
