//! Structural paper claims verified end to end at laptop scale (no
//! wall-clock assertions — timing claims live in the bench harness).

use scc::ir::{compress_file, gap_stream, synthesize, CollectionPreset, PostingsCodec};
use scc::model::{effective_exception_rate, result_bandwidth, Regime, ScanModel};
use scc::storage::{Disk, Layout, ScanMode};
use scc::tpch::queries::{query_ratio, run_query, PAPER_QUERIES};
use scc::tpch::{QueryConfig, TpchDb};
use std::sync::OnceLock;

fn db() -> &'static TpchDb {
    static DB: OnceLock<TpchDb> = OnceLock::new();
    DB.get_or_init(|| TpchDb::generate(0.01, 99))
}

#[test]
fn tpch_compression_ratios_are_in_the_paper_band() {
    // Paper Table 2: per-query DSM ratios between 1.7 and 8.2. Our
    // generator compresses a little better on key columns; allow 2-11.
    for q in PAPER_QUERIES {
        let r = query_ratio(db(), q);
        assert!((1.5..12.0).contains(&r), "q{q} ratio {r:.2}");
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "performance claim; run with --release")]
fn io_bound_speedup_tracks_compression_ratio() {
    // "On the Opteron system, the speedup for most of the DSM queries is
    // in line with the compression ratio" — pure scan queries only (join
    // queries have CPU-side work that caps the gain). Unoptimized builds
    // are CPU-bound by construction, so this only holds under --release.
    for q in [1u32, 6] {
        let unc = run_query(
            db(),
            &QueryConfig {
                mode: ScanMode::Uncompressed,
                disk: Disk::low_end(),
                ..Default::default()
            },
            q,
        );
        let cmp = run_query(
            db(),
            &QueryConfig {
                mode: ScanMode::Compressed,
                disk: Disk::low_end(),
                ..Default::default()
            },
            q,
        );
        let speedup = unc.total_seconds() / cmp.total_seconds();
        let ratio = query_ratio(db(), q);
        assert!(speedup > 0.5 * ratio, "q{q}: speedup {speedup:.2} vs ratio {ratio:.2}");
    }
}

#[test]
fn pax_reads_more_than_dsm() {
    for q in [1u32, 6, 14] {
        let dsm = run_query(db(), &QueryConfig { layout: Layout::Dsm, ..Default::default() }, q);
        let pax = run_query(db(), &QueryConfig { layout: Layout::Pax, ..Default::default() }, q);
        assert!(
            pax.stats.io_bytes > dsm.stats.io_bytes,
            "q{q}: pax {} dsm {}",
            pax.stats.io_bytes,
            dsm.stats.io_bytes
        );
    }
}

#[test]
fn equation_31_regimes() {
    // Slow disk: I/O bound; result = B*r.
    let slow = ScanModel { io_bw: 0.08, ratio: 4.0, query_bw: 2.0, decompression_bw: 3.0 };
    assert_eq!(slow.regime(), Regime::IoBound);
    // Fast disk at same ratio: CPU bound; result = QC/(Q+C).
    let fast = ScanModel { io_bw: 0.35, ..slow };
    assert_eq!(fast.regime(), Regime::CpuBound);
    assert!(fast.result_bandwidth() > slow.result_bandwidth());
    // Section 5 anchor: the paper's 350 -> 504 MB/s acceleration.
    let r = result_bandwidth(350.0, 3.47, 580.0, 3911.0);
    assert!((r - 504.0).abs() < 10.0, "got {r:.0}");
}

#[test]
fn compulsory_exception_model_matches_compressor() {
    use scc::core::pfor;
    for b in 1..=4u32 {
        for e_pct in [1.0, 5.0, 10.0] {
            let e = e_pct / 100.0;
            let n = 128 * 1024;
            // Data with exactly that exception rate.
            let values: Vec<u32> = (0..n as u32)
                .map(|i| if (i as f64 / n as f64) % 1.0 < e { 1 << 30 } else { i % (1 << b) })
                .collect();
            // Scatter exceptions deterministically.
            let mut v2 = values.clone();
            for (i, v) in v2.iter_mut().enumerate() {
                if (i * 7919) % 100_000 < (e * 100_000.0) as usize {
                    *v = 1 << 30;
                } else {
                    *v %= 1 << b;
                }
            }
            let seg = pfor::compress(&v2, 0, b);
            let real = seg.exception_count() as f64 / n as f64;
            let model = effective_exception_rate(
                v2.iter().filter(|&&v| v >= 1 << b).count() as f64 / n as f64,
                b,
            );
            // Within a factor band: the model assumes one global list.
            assert!(real < model * 1.6 + 0.02, "b={b} e={e}: real {real:.3} model {model:.3}");
        }
    }
}

#[test]
fn table4_orderings_hold_on_every_collection() {
    for preset in CollectionPreset::all() {
        let c = synthesize(preset, 31337);
        let gaps = gap_stream(&c);
        let pf = compress_file(&gaps, PostingsCodec::PforDelta).ratio();
        let co = compress_file(&gaps, PostingsCodec::Carryover12).ratio();
        let sh = compress_file(&gaps, PostingsCodec::Shuff).ratio();
        assert!(pf > 1.0, "{}: PFOR-DELTA {pf:.2}", c.name);
        assert!(co > pf * 0.9, "{}: carryover {co:.2} vs pfd {pf:.2}", c.name);
        assert!(sh > pf, "{}: shuff {sh:.2} vs pfd {pf:.2}", c.name);
    }
}

#[test]
fn inex_compresses_worse_than_trec() {
    // Paper Table 4: INEX's element-level gaps are the least compressible.
    let inex = {
        let c = synthesize(CollectionPreset::Inex, 5);
        compress_file(&gap_stream(&c), PostingsCodec::PforDelta).ratio()
    };
    for preset in [CollectionPreset::TrecFbis, CollectionPreset::TrecFt] {
        let c = synthesize(preset, 5);
        let r = compress_file(&gap_stream(&c), PostingsCodec::PforDelta).ratio();
        assert!(r > inex + 0.5, "{}: {r:.2} vs INEX {inex:.2}", c.name);
    }
}
