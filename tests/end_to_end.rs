//! Cross-crate integration: storage → engine pipelines over compressed
//! tables, equality across every storage configuration.

use scc::engine::{AggExpr, Expr, HashAggregate, Operator, Select};
use scc::storage::disk::stats_handle;
use scc::storage::{
    BufferPool, Compression, DecompressionGranularity, Disk, Layout, Scan, ScanMode, ScanOptions,
    Table, TableBuilder,
};
use std::sync::{Arc, Mutex};

fn build_table() -> Arc<Table> {
    let n = 50_000usize;
    TableBuilder::new("events")
        .seg_rows(8192)
        .compression(Compression::Auto)
        .add_i64("id", (0..n as i64).collect())
        .add_i64("amount", (0..n).map(|i| ((i * 37) % 1000) as i64).collect())
        .add_i32("day", (0..n).map(|i| (i / 100) as i32).collect())
        .add_str("kind", (0..n).map(|i| ["buy", "sell", "hold"][i % 3].to_string()).collect())
        .build()
}

fn total_amount_of_kind(table: &Arc<Table>, kind: &str, opts: ScanOptions) -> i64 {
    let stats = stats_handle();
    let scan = Scan::new(Arc::clone(table), &["amount", "kind"], opts, stats, None);
    let code = table.str_col("kind").codes_matching(|s| s == kind);
    let filtered = Select::new(scan, Expr::col(1).in_set(code));
    let mut agg = HashAggregate::new(filtered, vec![], vec![AggExpr::Sum(Expr::col(0))]);
    let out = agg.next().expect("one global group");
    out.col(0).as_i64()[0]
}

#[test]
fn query_result_invariant_across_all_storage_configs() {
    let table = build_table();
    let reference = total_amount_of_kind(&table, "sell", ScanOptions::default());
    assert!(reference > 0);
    for mode in [ScanMode::Compressed, ScanMode::Uncompressed] {
        for layout in [Layout::Dsm, Layout::Pax] {
            for granularity in
                [DecompressionGranularity::VectorWise, DecompressionGranularity::PageWise]
            {
                for vector_size in [128, 1024, 4096] {
                    for code_scan in [false, true] {
                        let opts = ScanOptions {
                            mode,
                            layout,
                            granularity,
                            vector_size,
                            disk: Disk::low_end(),
                            code_scan,
                        };
                        assert_eq!(
                            total_amount_of_kind(&table, "sell", opts),
                            reference,
                            "{mode:?}/{layout:?}/{granularity:?}/vs{vector_size}/cs{code_scan}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn compressed_scan_beats_uncompressed_on_io() {
    let table = build_table();
    let io_of = |mode| {
        let stats = stats_handle();
        let mut scan = Scan::new(
            Arc::clone(&table),
            &["id", "amount", "day"],
            ScanOptions { mode, ..Default::default() },
            Arc::clone(&stats),
            None,
        );
        while scan.next().is_some() {}
        let bytes = stats.lock().unwrap().io_bytes;
        bytes
    };
    let compressed = io_of(ScanMode::Compressed);
    let uncompressed = io_of(ScanMode::Uncompressed);
    assert!(
        compressed * 3 < uncompressed,
        "compressed {compressed} vs uncompressed {uncompressed}"
    );
}

#[test]
fn buffer_pool_compressed_caching_beats_uncompressed_budget() {
    // The RAM-CPU caching argument: with a budget that holds the whole
    // table compressed but not uncompressed, re-scans hit only in the
    // compressed design.
    let table = build_table();
    let budget = table.compressed_bytes() + 4096;
    assert!(budget < table.plain_bytes(), "test premise: budget between sizes");
    let run = |mode| {
        let pool = Arc::new(Mutex::new(BufferPool::new(budget)));
        let stats = stats_handle();
        for _ in 0..2 {
            let mut scan = Scan::new(
                Arc::clone(&table),
                &["id", "amount", "day", "kind"],
                ScanOptions { mode, ..Default::default() },
                Arc::clone(&stats),
                Some(Arc::clone(&pool)),
            );
            while scan.next().is_some() {}
        }
        let s = stats.lock().unwrap();
        (s.pool_hits, s.pool_misses)
    };
    let (hits_c, _misses_c) = run(ScanMode::Compressed);
    let (hits_u, misses_u) = run(ScanMode::Uncompressed);
    assert!(hits_c > 0, "compressed re-scan should hit");
    // The uncompressed working set exceeds the budget for at least some
    // columns, so it must keep missing more than the compressed one.
    assert!(misses_u > hits_u || hits_c > hits_u, "unc hits {hits_u} misses {misses_u}");
}

#[test]
fn segment_wire_format_survives_storage_roundtrip() {
    // Compress a column with the core API, serialize every segment, and
    // reload: same bytes, same values.
    let values: Vec<u32> =
        (0..100_000).map(|i| if i % 500 == 0 { i * 3_000 } else { i % 900 }).collect();
    let (seg, _) = scc::core::compress_auto(&values).expect("compressible");
    let bytes = seg.to_bytes();
    let reloaded = scc::core::Segment::<u32>::from_bytes(&bytes).expect("valid");
    assert_eq!(reloaded, seg);
    assert_eq!(reloaded.decompress(), values);
    assert_eq!(reloaded.to_bytes(), bytes, "serialization is canonical");
}
