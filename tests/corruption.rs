//! Corruption sweep: the decode path must never panic on damaged input.
//!
//! For v2 segments every byte of the file is covered by one of the six
//! section checksums (the checksum block itself is covered by virtue of
//! being compared against recomputed values), so *every* single-byte flip
//! must surface as a typed error from `try_from_bytes` / `wire::verify`.
//! For legacy v1 segments a flip may go undetected — that is the
//! documented gap v2 closes — but it must still never panic.

use scc::core::{pdict, pfor, pfordelta, wire, Dictionary, Layout, Segment, Value};
use scc::storage::{FaultPlan, FaultyDisk, ReadOutcome};

/// One segment per (scheme, exception-rate) cell of the sweep matrix.
fn corpus_u32() -> Vec<(&'static str, Vec<u8>)> {
    let clean: Vec<u32> = (0..640).map(|i| i % 32).collect();
    let exc: Vec<u32> = (0..640).map(|i| if i % 9 == 0 { i << 20 } else { i % 32 }).collect();
    let rising: Vec<u32> = (0..640).map(|i| i * 3 + (i % 7)).collect();
    let dict = Dictionary::new((0..10u32).map(|i| i * 1000).collect());
    let coded: Vec<u32> =
        (0..640).map(|i| if i % 13 == 0 { 777_777 } else { (i % 10) * 1000 }).collect();
    let k = scc::core::CompressKernel::default();
    vec![
        ("pfor/u32/no-exceptions", pfor::compress(&clean, 0, 5).to_bytes()),
        ("pfor/u32/11%-exceptions", pfor::compress(&exc, 0, 5).to_bytes()),
        ("pfordelta/u32", pfordelta::compress(&rising, 0, 3, 3).to_bytes()),
        ("pdict/u32/exceptions", pdict::compress(&coded, &dict).to_bytes()),
        // Format v3: same data in the vertical layout. Every byte is still
        // under a section checksum, so the sweep guarantee carries over.
        ("pfor/u32/v3-vertical", pfor::compress_in(&exc, 0, 5, k, Layout::Vertical).to_bytes()),
        ("pfordelta/u32/v3-vertical", pfordelta::compress_vertical(&rising, 0).to_bytes()),
        (
            "pdict/u32/v3-vertical",
            pdict::compress_in(&coded, &dict, dict.min_width(), k, Layout::Vertical).to_bytes(),
        ),
    ]
}

fn corpus_i64() -> Vec<(&'static str, Vec<u8>)> {
    let wide: Vec<i64> =
        (0..384).map(|i| -1_000_000 + i * 17 + if i % 11 == 0 { 1 << 40 } else { 0 }).collect();
    let rising: Vec<i64> = (0..384).map(|i| i * 64).collect();
    vec![
        ("pfor/i64/exceptions", pfor::compress(&wide, -1_000_000, 12).to_bytes()),
        ("pfordelta/i64", pfordelta::compress(&rising, 0, 64, 1).to_bytes()),
        (
            "pfor/i64/v3-vertical",
            pfor::compress_in(&wide, -1_000_000, 12, Default::default(), Layout::Vertical)
                .to_bytes(),
        ),
        ("pfordelta/i64/v3-vertical", pfordelta::compress_vertical(&rising, 0).to_bytes()),
    ]
}

/// Applies `check` to every single-bit and whole-byte flip of `bytes`.
fn sweep_flips(bytes: &[u8], mut check: impl FnMut(usize, u8, &[u8])) {
    let mut work = bytes.to_vec();
    for i in 0..bytes.len() {
        for mask in [1u8 << (i % 8), 0xFF] {
            work[i] ^= mask;
            check(i, mask, &work);
            work[i] ^= mask;
        }
    }
}

fn assert_flip_detected<V: Value>(label: &str, bytes: &[u8]) {
    assert!(Segment::<V>::try_from_bytes(bytes).is_ok(), "{label}: pristine decode");
    assert!(wire::verify(bytes).is_ok(), "{label}: pristine verify");
    sweep_flips(bytes, |i, mask, corrupted| {
        assert!(
            Segment::<V>::try_from_bytes(corrupted).is_err(),
            "{label}: flip of byte {i} (mask {mask:#04x}) decoded without error"
        );
        assert!(
            wire::verify(corrupted).is_err(),
            "{label}: flip of byte {i} (mask {mask:#04x}) verified without error"
        );
    });
}

#[test]
fn every_single_byte_flip_in_v2_is_detected() {
    for (label, bytes) in corpus_u32() {
        assert_flip_detected::<u32>(label, &bytes);
    }
    for (label, bytes) in corpus_i64() {
        assert_flip_detected::<i64>(label, &bytes);
    }
}

#[test]
fn every_truncation_is_detected() {
    for (label, bytes) in corpus_u32() {
        for cut in 0..bytes.len() {
            assert!(
                Segment::<u32>::try_from_bytes(&bytes[..cut]).is_err(),
                "{label}: truncation to {cut} bytes decoded without error"
            );
            assert!(
                wire::verify(&bytes[..cut]).is_err(),
                "{label}: truncation to {cut} bytes verified without error"
            );
        }
    }
}

#[test]
fn v1_flips_are_harmless_even_when_undetected() {
    let values: Vec<u32> = (0..640).map(|i| if i % 9 == 0 { i << 20 } else { i % 32 }).collect();
    let bytes = pfor::compress(&values, 0, 5).to_bytes_v1();
    assert_eq!(bytes[4], 1);
    let mut undetected = 0usize;
    sweep_flips(&bytes, |i, mask, corrupted| {
        // v1 has no checksums: a flip may parse. It must then either fail
        // typed or decode to (possibly wrong) values — never panic.
        let owned = corrupted.to_vec();
        let outcome = std::panic::catch_unwind(move || {
            if let Ok(seg) = Segment::<u32>::try_from_bytes(&owned) {
                let _ = seg.decompress();
                true
            } else {
                false
            }
        });
        match outcome {
            Ok(parsed) => {
                if parsed {
                    undetected += 1;
                }
            }
            Err(_) => panic!("v1 flip of byte {i} (mask {mask:#04x}) panicked"),
        }
    });
    // The gap is real: plenty of v1 flips sail through parsing, which is
    // exactly why v2 checksums exist.
    assert!(undetected > 0, "expected some undetected v1 flips");
}

#[test]
fn truncated_sections_surface_typed_errors_not_panics() {
    // The kernel-dispatch rework routes every block decode through
    // `bitpack::try_unpack`-style length validation, so a code section
    // shorter than the layout promises yields `Error::CorruptCodes`
    // instead of an index panic in a server worker.
    use scc::bitpack::{self, UnpackError};

    // Public bitpack surface: malformed requests are typed.
    let packed = bitpack::pack_vec(&(0..256u32).collect::<Vec<_>>(), 9);
    let mut out = vec![0u32; 256];
    assert!(bitpack::try_unpack(&packed, 9, &mut out).is_ok());
    assert!(matches!(
        bitpack::try_unpack(&packed[..packed.len() / 2], 9, &mut out),
        Err(UnpackError::TooShort { .. })
    ));
    assert!(matches!(
        bitpack::try_unpack(&packed, 33, &mut out),
        Err(UnpackError::WidthOutOfRange { .. })
    ));

    // Whole-pipeline sweep: truncate v1 and v2 byte streams at every
    // length and drive any segment that still parses through the typed
    // block/range decode entry points. Nothing may panic.
    let mut streams = corpus_u32();
    let values: Vec<u32> = (0..640).map(|i| if i % 9 == 0 { i << 20 } else { i % 32 }).collect();
    streams.push(("pfor/u32/v1", pfor::compress(&values, 0, 5).to_bytes_v1()));
    for (label, bytes) in streams {
        for cut in 0..bytes.len() {
            let owned = bytes[..cut].to_vec();
            let outcome = std::panic::catch_unwind(move || {
                if let Ok(seg) = Segment::<u32>::try_from_bytes(&owned) {
                    let mut block = vec![0u32; 128];
                    for blk in 0..seg.n_blocks() {
                        let _ = seg.try_decode_block(blk, &mut block[..seg.block_len(blk)]);
                    }
                    let mut all = vec![0u32; seg.len()];
                    let _ = seg.try_decode_range(0, &mut all);
                }
            });
            assert!(outcome.is_ok(), "{label}: truncation to {cut} bytes panicked the decoder");
        }
    }
}

#[test]
fn faulty_disk_corrupts_real_bytes_that_checksums_catch() {
    // End-to-end over the modeled disk: a corrupted copy of a real v2
    // segment must fail wire verification, and the injection must be
    // byte-for-byte deterministic for a fixed seed.
    let seg = pfor::compress(&(0..640u32).map(|i| i % 32).collect::<Vec<_>>(), 0, 5);
    let payload = seg.to_bytes();
    let plan = FaultPlan { seed: 42, bit_flip: 1.0, truncate: 0.0, transient_fail: 0.0 };
    let mut a = FaultyDisk::new(scc::storage::Disk::low_end(), plan);
    let mut b = FaultyDisk::new(scc::storage::Disk::low_end(), plan);
    use scc::storage::DiskRead;
    let id = (7, 0, 3);
    match (a.read_chunk(id, 1, Some(&payload)), b.read_chunk(id, 1, Some(&payload))) {
        (ReadOutcome::Corrupted(x), ReadOutcome::Corrupted(y)) => {
            assert_eq!(x, y, "same seed, same damage");
            assert_ne!(x, payload);
            assert!(wire::verify(&x).is_err(), "checksums must catch the injected flip");
        }
        other => panic!("bit_flip=1.0 must corrupt: {other:?}"),
    }
}
