//! Integration tests for the beyond-the-paper extensions: differential
//! updates flowing through engine pipelines, float compression through
//! the facade, and the merge join against postings-shaped data.

use scc::engine::{AggExpr, Expr, HashAggregate, MemSource, MergeJoin, Vector};
use scc::storage::disk::stats_handle;
use scc::storage::{materialize, Cell, MergingScan, ScanOptions, TableBuilder, TableDeltas};
use std::sync::Arc;

#[test]
fn updates_change_query_results_without_recompression() {
    // A compressed sales table; corrections arrive as deltas; the same
    // aggregation pipeline sees them immediately.
    let table = TableBuilder::new("sales")
        .seg_rows(1024)
        .add_i64("region", (0..10_000).map(|i| i % 4).collect())
        .add_i64("amount", vec![10; 10_000])
        .build();
    let sum_region0 = |deltas: Arc<TableDeltas>| {
        let scan = MergingScan::new(
            Arc::clone(&table),
            &["region", "amount"],
            ScanOptions { vector_size: 512, ..Default::default() },
            stats_handle(),
            deltas,
        );
        let mut agg =
            HashAggregate::new(scan, vec![Expr::col(0)], vec![AggExpr::Sum(Expr::col(1))]);
        let out = scc::engine::ops::collect(&mut agg);
        (0..out.len())
            .find(|&r| out.col(0).as_i64()[r] == 0)
            .map(|r| out.col(1).as_i64()[r])
            .unwrap_or(0)
    };
    let base = sum_region0(Arc::new(TableDeltas::new()));
    assert_eq!(base, 2500 * 10);

    let mut deltas = TableDeltas::new();
    deltas.update(1, 0, Cell::I64(1000)); // row 0 is region 0
    deltas.delete(4); // row 4 is region 0
    deltas.append(vec![Cell::I64(0), Cell::I64(7)]);
    let deltas = Arc::new(deltas);
    let updated = sum_region0(Arc::clone(&deltas));
    assert_eq!(updated, base + 990 - 10 + 7);

    // The periodic merge bakes the deltas in; a delta-free scan of the
    // fresh table agrees.
    let fresh =
        materialize(&table, &deltas, ScanOptions { vector_size: 512, ..Default::default() });
    let rebased = {
        let scan = MergingScan::new(
            Arc::clone(&fresh),
            &["region", "amount"],
            ScanOptions { vector_size: 512, ..Default::default() },
            stats_handle(),
            Arc::new(TableDeltas::new()),
        );
        let mut agg =
            HashAggregate::new(scan, vec![Expr::col(0)], vec![AggExpr::Sum(Expr::col(1))]);
        let out = scc::engine::ops::collect(&mut agg);
        (0..out.len())
            .find(|&r| out.col(0).as_i64()[r] == 0)
            .map(|r| out.col(1).as_i64()[r])
            .unwrap()
    };
    assert_eq!(rebased, updated);
}

#[test]
fn float_compression_through_the_facade() {
    let prices: Vec<f64> = (0..100_000).map(|i| (500 + i % 900) as f64 / 100.0).collect();
    let (seg, plan) = scc::core::compress_f64_auto(&prices).expect("prices compress");
    assert!(matches!(plan, scc::core::FloatPlan::Scaled { scale: 2, .. }));
    let back = seg.decompress();
    for (a, b) in back.iter().zip(&prices) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert!(seg.ratio() > 3.0, "ratio {}", seg.ratio());
}

#[test]
fn merge_join_on_postings_shaped_inputs() {
    // Postings ⋈ document table, both sorted by docid — the §5 join shape.
    let postings_docs: Vec<i64> = (0..5000).map(|i| i * 3).collect();
    let postings_tf: Vec<i64> = (0..5000).map(|i| 1 + i % 7).collect();
    let doc_ids: Vec<i64> = (0..15_000).collect();
    let doc_len: Vec<i64> = (0..15_000).map(|i| 100 + i % 400).collect();
    let mut join = MergeJoin::new(
        MemSource::new(vec![Vector::I64(postings_docs.clone()), Vector::I64(postings_tf)], 1024),
        MemSource::new(vec![Vector::I64(doc_ids), Vector::I64(doc_len)], 1024),
        0,
        0,
    );
    let out = scc::engine::ops::collect(&mut join);
    assert_eq!(out.len(), 5000, "every posting matches exactly one document");
    // Join keys align.
    for r in 0..out.len() {
        assert_eq!(out.col(0).as_i64()[r], out.col(2).as_i64()[r]);
    }
}

#[test]
fn point_lookups_on_a_compressed_table() {
    let table = TableBuilder::new("t")
        .seg_rows(2048)
        .add_i64("k", (0..50_000).collect())
        .add_str("s", (0..50_000).map(|i| ["x", "y", "z"][i % 3].to_string()).collect())
        .build();
    assert!(table.ratio() > 2.0);
    for row in [0usize, 1, 2047, 2048, 49_999] {
        assert_eq!(table.get_cell("k", row), row as i64);
        let code = table.get_cell("s", row) as usize;
        assert_eq!(table.str_col("s").dict[code], ["x", "y", "z"][row % 3]);
    }
}
