//! Conformance tests for `docs/FORMAT.md`: the wire layout is parsed
//! byte-by-byte, independently of `Segment::from_bytes`, so the document
//! and the implementation cannot drift apart silently.

use scc::core::{crc32c, pfor, pfordelta, Layout, Segment};

/// Sections start after the 32-byte header plus the 24-byte v2 checksum
/// block.
const SECTIONS: usize = 56;

fn rd32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
}

#[test]
fn header_fields_match_the_spec() {
    let values: Vec<u32> = (0..300).map(|i| if i % 50 == 7 { 1 << 30 } else { i % 32 }).collect();
    let seg = pfor::compress(&values, 0, 5);
    let bytes = seg.to_bytes();

    assert_eq!(&bytes[0..4], b"SCCS", "magic");
    assert_eq!(bytes[4], 2, "version");
    assert_eq!(bytes[5], 1, "scheme tag: PFOR");
    assert_eq!(bytes[6], 1, "value type tag: u32");
    assert_eq!(bytes[7], 5, "bit width");
    assert_eq!(rd32(&bytes, 8), 300, "n");
    assert_eq!(rd32(&bytes, 12) as usize, seg.exception_count(), "n_exc");
    assert_eq!(rd32(&bytes, 16), 0, "n_dict (not PDICT)");
    assert_eq!(rd32(&bytes, 20) as usize, scc::bitpack::packed_words(300, 5), "codes_words");
    assert_eq!(rd32(&bytes, 24), 0, "base low word");
}

#[test]
fn v2_checksum_block_matches_recomputed_crcs() {
    let values: Vec<u32> =
        (0..1000).map(|i| if i % 83 == 0 { i * 4093 } else { i % 100 }).collect();
    let seg = pfor::compress(&values, 0, 7);
    let bytes = seg.to_bytes();
    // Offsets 32..56 hold six CRC32C words: header, entries, delta
    // bases, dict, codes, exceptions — in file order.
    assert_eq!(rd32(&bytes, 32), crc32c(&bytes[0..32]), "header checksum");
    let n = rd32(&bytes, 8) as usize;
    let n_exc = rd32(&bytes, 12) as usize;
    let codes_words = rd32(&bytes, 20) as usize;
    let n_blocks = n.div_ceil(128);
    let entries = SECTIONS..SECTIONS + n_blocks * 4;
    let codes = entries.end..entries.end + codes_words * 4;
    let exc = codes.end..codes.end + n_exc * 4;
    assert_eq!(rd32(&bytes, 36), crc32c(&bytes[entries]), "entries checksum");
    assert_eq!(rd32(&bytes, 40), crc32c(&[]), "delta bases checksum (empty for PFOR)");
    assert_eq!(rd32(&bytes, 44), crc32c(&[]), "dict checksum (empty for PFOR)");
    assert_eq!(rd32(&bytes, 48), crc32c(&bytes[codes]), "codes checksum");
    assert_eq!(rd32(&bytes, 52), crc32c(&bytes[exc.clone()]), "exceptions checksum");
    assert_eq!(exc.end, bytes.len(), "sections cover the file exactly");
}

#[test]
fn v1_writer_still_produces_the_legacy_layout() {
    let values: Vec<u32> = (0..300).map(|i| i % 32).collect();
    let seg = pfor::compress(&values, 0, 5);
    let bytes = seg.to_bytes_v1();
    assert_eq!(bytes[4], 1, "version");
    let n_blocks = 300usize.div_ceil(128);
    let codes_words = scc::bitpack::packed_words(300, 5);
    // v1 sections start right after the 32-byte header: no checksums.
    assert_eq!(bytes.len(), 32 + n_blocks * 4 + codes_words * 4);
    let reloaded = Segment::<u32>::from_bytes(&bytes).unwrap();
    assert_eq!(reloaded.decompress(), values);
}

#[test]
fn section_sizes_add_up() {
    let values: Vec<u32> = (0..1000).map(|i| if i % 97 == 0 { i * 5000 } else { i % 64 }).collect();
    let seg = pfor::compress(&values, 0, 6);
    let bytes = seg.to_bytes();
    let n = rd32(&bytes, 8) as usize;
    let n_exc = rd32(&bytes, 12) as usize;
    let codes_words = rd32(&bytes, 20) as usize;
    let n_blocks = n.div_ceil(128);
    // PFOR u32: header + checksums + entries + codes + exceptions, no
    // delta bases, no dictionary.
    let expect = SECTIONS + n_blocks * 4 + codes_words * 4 + n_exc * 4;
    assert_eq!(bytes.len(), expect);
}

#[test]
fn entry_points_are_monotone_and_start_lists() {
    let values: Vec<u32> = (0..1024).map(|i| if i % 10 == 3 { 1 << 29 } else { 1 }).collect();
    let seg = pfor::compress(&values, 0, 4);
    let bytes = seg.to_bytes();
    let n = rd32(&bytes, 8) as usize;
    let n_exc = rd32(&bytes, 12) as usize;
    let n_blocks = n.div_ceil(128);
    let mut prev_start = 0u32;
    for blk in 0..n_blocks {
        let e = rd32(&bytes, SECTIONS + blk * 4);
        let patch_start = e & 0x7f;
        let exc_start = e >> 7;
        assert!(exc_start >= prev_start, "monotone at block {blk}");
        assert!(exc_start - prev_start <= 128);
        assert!(patch_start < 128);
        prev_start = exc_start;
    }
    assert!(prev_start as usize <= n_exc);
}

#[test]
fn exceptions_are_written_backwards() {
    // One exception with a known value: it must be the last 4 bytes.
    let mut values = vec![1u32; 256];
    values[200] = 0xDEAD_BEEF;
    let seg = pfor::compress(&values, 0, 2);
    assert_eq!(seg.exception_count(), 1);
    let bytes = seg.to_bytes();
    let last4 = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    assert_eq!(last4, 0xDEAD_BEEF);
}

#[test]
fn delta_bases_follow_entry_points() {
    let values: Vec<u32> = (0..512).map(|i| i * 3).collect();
    let seg = pfordelta::compress(&values, 0, 3, 1);
    let bytes = seg.to_bytes();
    assert_eq!(bytes[5], 2, "scheme tag: PFOR-DELTA");
    let n_blocks = 512usize.div_ceil(128);
    // Delta bases sit right after the entry points: block k's restart is
    // the value at index 128k - 1 (seed 0 for block 0).
    let db_off = SECTIONS + n_blocks * 4;
    assert_eq!(rd32(&bytes, db_off), 0, "block 0 seed");
    for blk in 1..n_blocks {
        assert_eq!(rd32(&bytes, db_off + blk * 4), values[blk * 128 - 1], "block {blk} restart");
    }
}

/// Independent reference for the v3 vertical code layout: value `i` of a
/// full 128-value block lives in lane `i % 4`, row `i / 4`; each lane is
/// an LSB-first `b`-word stream; lane streams interleave word-wise
/// (physical word `4w + l` is word `w` of lane `l`). The trailing
/// partial block is horizontal (logical order, LSB-first 32-value
/// groups). Hand-rolled here so FORMAT.md and `scc-bitpack` cannot
/// drift apart silently.
fn vertical_pack_reference(codes: &[u32], b: u32) -> Vec<u32> {
    assert!(b > 0 && b < 32, "reference covers the interior widths");
    let msk = (1u64 << b) - 1;
    let mut out = vec![0u32; scc::bitpack::packed_words(codes.len(), b)];
    let full = codes.len() / 128;
    for blk in 0..full {
        let word_base = blk * 4 * b as usize;
        for lane in 0..4 {
            let (mut acc, mut bits, mut w) = (0u64, 0usize, 0usize);
            for row in 0..32 {
                acc |= ((codes[blk * 128 + 4 * row + lane] as u64) & msk) << bits;
                bits += b as usize;
                if bits >= 32 {
                    out[word_base + 4 * w + lane] = acc as u32;
                    w += 1;
                    acc >>= 32;
                    bits -= 32;
                }
            }
        }
    }
    // Horizontal tail: logical order, one 32-value group per `b` words.
    let tail = &codes[full * 128..];
    let tail_base = full * 4 * b as usize;
    for (g, group) in tail.chunks(32).enumerate() {
        let (mut acc, mut bits, mut w) = (0u64, 0usize, g * b as usize);
        for &c in group {
            acc |= ((c as u64) & msk) << bits;
            bits += b as usize;
            if bits >= 32 {
                out[tail_base + w] = acc as u32;
                w += 1;
                acc >>= 32;
                bits -= 32;
            }
        }
        if bits > 0 {
            out[tail_base + w] = acc as u32;
        }
    }
    out
}

#[test]
fn v3_vertical_codes_match_reference_layout() {
    // 300 values = 2 full vertical blocks + a 44-value horizontal tail.
    let values: Vec<u32> = (0..300).map(|i| (i * 7919) % 64).collect();
    let seg = pfor::compress_in(&values, 0, 6, Default::default(), Layout::Vertical);
    assert_eq!(seg.exception_count(), 0, "codes are the values themselves");
    let bytes = seg.to_bytes();
    assert_eq!(bytes[4], 3, "version");
    assert_eq!(bytes[5], 1 | 0x80, "scheme tag PFOR with the layout bit");
    assert_eq!(bytes[7], 6, "bit width");
    let n_blocks = 300usize.div_ceil(128);
    let codes_words = rd32(&bytes, 20) as usize;
    assert_eq!(codes_words, scc::bitpack::packed_words(300, 6), "same word count as horizontal");
    let codes_off = SECTIONS + n_blocks * 4;
    let got: Vec<u32> = (0..codes_words).map(|w| rd32(&bytes, codes_off + w * 4)).collect();
    assert_eq!(got, vertical_pack_reference(&values, 6), "vertical code section layout");
    // And the segment still round-trips through the public reader.
    assert_eq!(Segment::<u32>::from_bytes(&bytes).unwrap().decompress(), values);
}

#[test]
fn v3_delta_bases_carry_four_seeds_per_block() {
    let values: Vec<u32> = (0..512).map(|i| i * 3).collect();
    let seg = pfordelta::compress_vertical(&values, 0);
    let bytes = seg.to_bytes();
    assert_eq!(bytes[4], 3, "version");
    assert_eq!(bytes[5], 2 | 0x80, "scheme tag PFOR-DELTA with the layout bit");
    let n_blocks = 512usize.div_ceil(128);
    let db_off = SECTIONS + n_blocks * 4;
    // Lane `l` of block `k` restarts from the value 4 lanes back:
    // values[128k + l - 4], or the seed for the first four values.
    for lane in 0..4 {
        assert_eq!(rd32(&bytes, db_off + lane * 4), 0, "block 0 lane {lane} seed");
    }
    for blk in 1..n_blocks {
        for lane in 0..4 {
            assert_eq!(
                rd32(&bytes, db_off + (blk * 4 + lane) * 4),
                values[blk * 128 + lane - 4],
                "block {blk} lane {lane} restart"
            );
        }
    }
}

#[test]
fn v3_checksum_block_matches_recomputed_crcs() {
    let values: Vec<u32> = (0..1000).map(|i| i * 2 + (i % 5)).collect();
    let seg = pfordelta::compress_vertical(&values, 0);
    let bytes = seg.to_bytes();
    assert_eq!(rd32(&bytes, 32), crc32c(&bytes[0..32]), "header checksum");
    let n = rd32(&bytes, 8) as usize;
    let n_exc = rd32(&bytes, 12) as usize;
    let codes_words = rd32(&bytes, 20) as usize;
    let n_blocks = n.div_ceil(128);
    let entries = SECTIONS..SECTIONS + n_blocks * 4;
    // v3 vertical PFOR-DELTA: four delta bases per block.
    let deltas = entries.end..entries.end + n_blocks * 4 * 4;
    let codes = deltas.end..deltas.end + codes_words * 4;
    let exc = codes.end..codes.end + n_exc * 4;
    assert_eq!(rd32(&bytes, 36), crc32c(&bytes[entries]), "entries checksum");
    assert_eq!(rd32(&bytes, 40), crc32c(&bytes[deltas]), "delta bases checksum");
    assert_eq!(rd32(&bytes, 44), crc32c(&[]), "dict checksum (empty)");
    assert_eq!(rd32(&bytes, 48), crc32c(&bytes[codes]), "codes checksum");
    assert_eq!(rd32(&bytes, 52), crc32c(&bytes[exc.clone()]), "exceptions checksum");
    assert_eq!(exc.end, bytes.len(), "sections cover the file exactly");
}

#[test]
fn format_is_stable_for_a_pinned_input() {
    // A golden sanity check: the same input must serialize identically
    // across runs (and, by policy, across versions of this crate at the
    // same format version).
    let values: Vec<u32> = (0..640).map(|i| (i * 7919) % 1000).collect();
    let a = pfor::compress(&values, 0, 10).to_bytes();
    let b = pfor::compress(&values, 0, 10).to_bytes();
    assert_eq!(a, b);
    // And reloading + reserializing is canonical.
    let reloaded = Segment::<u32>::from_bytes(&a).unwrap();
    assert_eq!(reloaded.to_bytes(), a);
}
