//! Integration tests for the `scc` command-line tool.

use std::process::Command;

fn scc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scc"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("scc_cli_test_{}_{name}", std::process::id()));
    p
}

fn write_u32s(path: &std::path::Path, values: &[u32]) {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn compress_inspect_decompress_roundtrip() {
    let input = tmp("in.bin");
    let compressed = tmp("out.scc");
    let output = tmp("out.bin");
    let values: Vec<u32> =
        (0..100_000).map(|i| if i % 97 == 0 { i * 1000 } else { 700 + i % 300 }).collect();
    write_u32s(&input, &values);

    let st = scc()
        .args(["compress", input.to_str().unwrap(), compressed.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert!(stdout.contains("x) with"), "{stdout}");

    let st = scc().args(["inspect", compressed.to_str().unwrap()]).output().unwrap();
    assert!(st.status.success());
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert!(stdout.contains("type u32"), "{stdout}");

    let st = scc()
        .args(["decompress", compressed.to_str().unwrap(), output.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));
    let round = std::fs::read(&output).unwrap();
    let orig = std::fs::read(&input).unwrap();
    assert_eq!(round, orig);

    for p in [input, compressed, output] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn analyze_prints_candidates() {
    let input = tmp("an.bin");
    write_u32s(&input, &(0..50_000u32).map(|i| i * 3).collect::<Vec<_>>());
    let st = scc().args(["analyze", input.to_str().unwrap()]).output().unwrap();
    assert!(st.status.success());
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert!(stdout.contains("PFOR-DELTA"), "{stdout}");
    let _ = std::fs::remove_file(input);
}

#[test]
fn explicit_scheme_and_width() {
    let input = tmp("ex.bin");
    let compressed = tmp("ex.scc");
    write_u32s(&input, &(0..10_000u32).map(|i| i % 64).collect::<Vec<_>>());
    let st = scc()
        .args([
            "compress",
            input.to_str().unwrap(),
            compressed.to_str().unwrap(),
            "--scheme",
            "pfor",
            "--bits",
            "6",
        ])
        .output()
        .unwrap();
    assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));
    assert!(String::from_utf8_lossy(&st.stdout).contains("PFOR b=6"));
    for p in [input, compressed] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn bad_inputs_fail_cleanly() {
    // Unknown command.
    let st = scc().args(["frobnicate", "/nonexistent"]).output().unwrap();
    assert!(!st.status.success());
    // Decompressing a non-scc file.
    let input = tmp("bad.bin");
    std::fs::write(&input, b"not an scc file").unwrap();
    let st = scc()
        .args(["decompress", input.to_str().unwrap(), "/tmp/never"])
        .output()
        .unwrap();
    assert!(!st.status.success());
    // Misaligned input length.
    let st = scc().args(["analyze", input.to_str().unwrap()]).output().unwrap();
    assert!(!st.status.success());
    let _ = std::fs::remove_file(input);
}
