//! Integration tests for the `scc` command-line tool.

use std::process::Command;

fn scc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scc"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("scc_cli_test_{}_{name}", std::process::id()));
    p
}

fn write_u32s(path: &std::path::Path, values: &[u32]) {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn compress_inspect_decompress_roundtrip() {
    let input = tmp("in.bin");
    let compressed = tmp("out.scc");
    let output = tmp("out.bin");
    let values: Vec<u32> =
        (0..100_000).map(|i| if i % 97 == 0 { i * 1000 } else { 700 + i % 300 }).collect();
    write_u32s(&input, &values);

    let st = scc()
        .args(["compress", input.to_str().unwrap(), compressed.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert!(stdout.contains("x) with"), "{stdout}");

    let st = scc().args(["inspect", compressed.to_str().unwrap()]).output().unwrap();
    assert!(st.status.success());
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert!(stdout.contains("type u32"), "{stdout}");

    let st = scc()
        .args(["decompress", compressed.to_str().unwrap(), output.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));
    let round = std::fs::read(&output).unwrap();
    let orig = std::fs::read(&input).unwrap();
    assert_eq!(round, orig);

    for p in [input, compressed, output] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn analyze_prints_candidates() {
    let input = tmp("an.bin");
    write_u32s(&input, &(0..50_000u32).map(|i| i * 3).collect::<Vec<_>>());
    let st = scc().args(["analyze", input.to_str().unwrap()]).output().unwrap();
    assert!(st.status.success());
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert!(stdout.contains("PFOR-DELTA"), "{stdout}");
    let _ = std::fs::remove_file(input);
}

#[test]
fn explicit_scheme_and_width() {
    let input = tmp("ex.bin");
    let compressed = tmp("ex.scc");
    write_u32s(&input, &(0..10_000u32).map(|i| i % 64).collect::<Vec<_>>());
    let st = scc()
        .args([
            "compress",
            input.to_str().unwrap(),
            compressed.to_str().unwrap(),
            "--scheme",
            "pfor",
            "--bits",
            "6",
        ])
        .output()
        .unwrap();
    assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));
    assert!(String::from_utf8_lossy(&st.stdout).contains("PFOR b=6"));
    for p in [input, compressed] {
        let _ = std::fs::remove_file(p);
    }
}

/// Compresses a small column and returns the path of the `.scc` file.
fn make_compressed(name: &str) -> std::path::PathBuf {
    let input = tmp(&format!("{name}_in.bin"));
    let compressed = tmp(&format!("{name}.scc"));
    write_u32s(
        &input,
        &(0..20_000u32).map(|i| if i % 91 == 0 { i * 500 } else { i % 128 }).collect::<Vec<_>>(),
    );
    let st = scc()
        .args(["compress", input.to_str().unwrap(), compressed.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));
    let _ = std::fs::remove_file(input);
    compressed
}

#[test]
fn vertical_layout_roundtrips_through_the_cli() {
    // Format v3 end-to-end: compress writes vertical segments under
    // SCC_LAYOUT=vertical; inspect/verify report the layout; decompress
    // restores the exact bytes. Horizontal stays on wire format v2.
    let input = tmp("vl_in.bin");
    let output = tmp("vl_out.bin");
    let values: Vec<u32> =
        (0..50_000u32).map(|i| if i % 91 == 0 { i * 500 } else { i % 128 }).collect();
    write_u32s(&input, &values);
    for (layout, version) in [("vertical", 3u8), ("horizontal", 2u8)] {
        let compressed = tmp(&format!("vl_{layout}.scc"));
        let st = scc()
            .env("SCC_LAYOUT", layout)
            .args(["compress", input.to_str().unwrap(), compressed.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));

        // The first segment's wire version sits right after the 9-byte
        // container preamble and 4-byte length prefix.
        let bytes = std::fs::read(&compressed).unwrap();
        assert_eq!(bytes[9 + 4 + 4], version, "{layout} wire version");

        let st = scc().args(["inspect", compressed.to_str().unwrap()]).output().unwrap();
        assert!(st.status.success());
        assert!(String::from_utf8_lossy(&st.stdout).contains(layout));

        let st = scc().args(["verify", compressed.to_str().unwrap()]).output().unwrap();
        assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));
        let stdout = String::from_utf8_lossy(&st.stdout);
        assert!(stdout.contains(layout) && stdout.contains("0 corrupt"), "{stdout}");

        let st = scc()
            .args(["decompress", compressed.to_str().unwrap(), output.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));
        assert_eq!(std::fs::read(&output).unwrap(), std::fs::read(&input).unwrap(), "{layout}");
        let _ = std::fs::remove_file(compressed);
    }
    for p in [input, output] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn verify_reports_clean_and_corrupt_segments() {
    let compressed = make_compressed("vf");

    let st = scc().args(["verify", compressed.to_str().unwrap()]).output().unwrap();
    assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert!(stdout.contains("verified"), "{stdout}");
    assert!(stdout.contains("0 corrupt"), "{stdout}");

    // Flip one byte in the middle of the payload: verify must fail with a
    // nonzero exit and report the corrupt file offset.
    let mut bytes = std::fs::read(&compressed).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&compressed, &bytes).unwrap();
    let st = scc().args(["verify", compressed.to_str().unwrap()]).output().unwrap();
    assert!(!st.status.success());
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert!(stdout.contains("CORRUPT at file offset"), "{stdout}");

    let _ = std::fs::remove_file(compressed);
}

#[test]
fn truncated_files_fail_cleanly_not_panic() {
    let compressed = make_compressed("tr");
    let bytes = std::fs::read(&compressed).unwrap();
    // Cut the container at a handful of nasty boundaries: inside the
    // 9-byte preamble, inside a length prefix, and inside a segment body.
    for cut in [0, 3, 7, 11, bytes.len() / 2, bytes.len() - 1] {
        let short = tmp("tr_cut.scc");
        std::fs::write(&short, &bytes[..cut]).unwrap();
        for cmd in ["inspect", "decompress"] {
            let st = scc()
                .args([cmd, short.to_str().unwrap(), "/tmp/scc_cli_never.bin"])
                .output()
                .unwrap();
            assert!(!st.status.success(), "{cmd} at cut {cut} should fail");
            let stderr = String::from_utf8_lossy(&st.stderr);
            assert!(!stderr.contains("panicked"), "{cmd} at cut {cut} panicked: {stderr}");
        }
        let _ = std::fs::remove_file(short);
    }
    // A cut that preserves the preamble must produce the typed
    // truncation message.
    let short = tmp("tr_cut2.scc");
    std::fs::write(&short, &bytes[..bytes.len() - 1]).unwrap();
    let st = scc().args(["inspect", short.to_str().unwrap()]).output().unwrap();
    assert!(!st.status.success());
    let stderr = String::from_utf8_lossy(&st.stderr);
    assert!(stderr.contains("truncated"), "{stderr}");
    for p in [short, compressed] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn explain_prints_annotated_operator_trees() {
    let metrics = tmp("explain_metrics.json");
    let st = scc()
        .args(["explain", "--queries", "1,6", "--sf", "0.002", "--metrics-json"])
        .arg(&metrics)
        .output()
        .unwrap();
    assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));
    let stdout = String::from_utf8_lossy(&st.stdout);
    // One tree per query, with per-operator counters and wall time.
    assert!(stdout.contains("Q1 —"), "{stdout}");
    assert!(stdout.contains("Q6 —"), "{stdout}");
    assert!(stdout.contains("Scan(lineitem:"), "{stdout}");
    assert!(stdout.contains("HashAggregate"), "{stdout}");
    assert!(stdout.contains("rows="), "{stdout}");
    assert!(stdout.contains("total="), "{stdout}");
    // The metrics dump is a schema-v1 JSON document with compression
    // telemetry populated by the queries' decode path.
    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.contains("\"schema_version\": 1"), "{json}");
    assert!(json.contains("core.decode.pfor.ns_per_value"), "{json}");
    let _ = std::fs::remove_file(metrics);
}

#[test]
fn explain_rejects_unknown_query() {
    let st = scc().args(["explain", "--queries", "2"]).output().unwrap();
    assert!(!st.status.success());
    assert!(String::from_utf8_lossy(&st.stderr).contains("not implemented"));
}

#[test]
fn bad_inputs_fail_cleanly() {
    // Unknown command.
    let st = scc().args(["frobnicate", "/nonexistent"]).output().unwrap();
    assert!(!st.status.success());
    // Decompressing a non-scc file.
    let input = tmp("bad.bin");
    std::fs::write(&input, b"not an scc file").unwrap();
    let st = scc().args(["decompress", input.to_str().unwrap(), "/tmp/never"]).output().unwrap();
    assert!(!st.status.success());
    // Misaligned input length.
    let st = scc().args(["analyze", input.to_str().unwrap()]).output().unwrap();
    assert!(!st.status.success());
    let _ = std::fs::remove_file(input);
}
