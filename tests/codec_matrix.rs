//! Cross-crate codec matrix: every integer codec (core patched schemes
//! and baselines) against every data shape, verifying round-trips and the
//! compression-ratio orderings the paper's design arguments rely on.

use scc::baselines::{
    carryover12::Carryover12,
    classic_dict::ClassicDict,
    classic_for::ClassicFor,
    elias::{EliasDelta, EliasGamma},
    golomb::{Golomb, Rice},
    huffman::ShuffHuffman,
    prefix::PrefixSuppression,
    simple9::Simple9,
    varint::VarInt,
    IntCodec,
};
use scc::core::{analyze, compress_with_plan, compress_with_plan_in, pfor, AnalyzeOpts, Layout};

fn shapes() -> Vec<(&'static str, Vec<u32>)> {
    let mut x = 0x9E3779B9u64;
    let mut rng = move |m: u32| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % m as u64) as u32
    };
    vec![
        ("constant", vec![42; 20_000]),
        ("clustered", (0..20_000).map(|i| 1000 + i % 128).collect()),
        ("monotone", (0..20_000u32).map(|i| i * 7).collect()),
        (
            "clustered+outliers",
            (0..20_000).map(|i| if i % 97 == 0 { 1 << 29 } else { i % 64 }).collect(),
        ),
        (
            "zipf-ish gaps",
            (0..20_000)
                .map(|_| {
                    let r = rng(1000);
                    if r < 900 {
                        r % 8
                    } else {
                        r * 1000
                    }
                })
                .collect(),
        ),
        ("uniform noise", (0..20_000).map(|_| rng(1 << 30)).collect()),
    ]
}

fn all_int_codecs() -> Vec<Box<dyn IntCodec>> {
    vec![
        Box::new(VarInt),
        Box::new(ClassicFor),
        Box::new(PrefixSuppression),
        Box::new(ClassicDict),
        Box::new(Golomb),
        Box::new(Rice),
        Box::new(EliasGamma),
        Box::new(EliasDelta),
        Box::new(Simple9),
        Box::new(Carryover12),
        Box::new(ShuffHuffman),
    ]
}

#[test]
fn every_codec_roundtrips_every_shape() {
    for (shape, values) in shapes() {
        for codec in all_int_codecs() {
            let bytes = codec.encode_vec(&values);
            assert_eq!(
                codec.decode_vec(&bytes, values.len()),
                values,
                "{} on {shape}",
                codec.name()
            );
        }
        // Core patched schemes via the analyzer.
        let analysis = analyze(&values, &AnalyzeOpts::default());
        for cand in analysis.candidates.iter().take(3) {
            let seg = compress_with_plan(&values, &cand.plan);
            assert_eq!(seg.decompress(), values, "{} on {shape}", cand.plan.name());
        }
    }
}

#[test]
fn every_plan_roundtrips_in_both_layouts() {
    // The layout axis (format v3): the same plan must decode to the same
    // values whether the codes are horizontal or vertical, through bulk
    // decode, wire round-trip, random access and range decode alike.
    for (shape, values) in shapes() {
        let analysis = analyze(&values, &AnalyzeOpts::default());
        for cand in analysis.candidates.iter().take(3) {
            for layout in [Layout::Horizontal, Layout::Vertical] {
                let seg = compress_with_plan_in(&values, &cand.plan, layout);
                assert_eq!(seg.layout(), layout, "{} on {shape}", cand.plan.name());
                assert_eq!(seg.decompress(), values, "{} on {shape} {layout:?}", cand.plan.name());
                let reloaded =
                    scc::core::Segment::<u32>::from_bytes(&seg.to_bytes()).expect("wire");
                assert_eq!(reloaded.layout(), layout);
                for i in (0..values.len()).step_by(997) {
                    assert_eq!(reloaded.get(i), values[i], "{shape} {layout:?} get({i})");
                }
                let start = values.len() / 3 / 128 * 128;
                let mut mid = vec![0u32; 1000.min(values.len() - start)];
                reloaded.try_decode_range(start, &mut mid).expect("range");
                assert_eq!(&mid[..], &values[start..start + mid.len()]);
            }
        }
    }
}

#[test]
fn pfor_handles_outliers_better_than_classic_for() {
    // The headline generalization claim: one outlier ruins FOR, not PFOR.
    let clean: Vec<u32> = (0..50_000).map(|i| i % 64).collect();
    let mut dirty = clean.clone();
    for i in (0..dirty.len()).step_by(1000) {
        dirty[i] = u32::MAX - i as u32;
    }
    let for_clean = ClassicFor.encode_vec(&clean).len();
    let for_dirty = ClassicFor.encode_vec(&dirty).len();
    let pfor_clean = pfor::compress(&clean, 0, 6).compressed_bytes();
    let pfor_dirty = pfor::compress(&dirty, 0, 6).compressed_bytes();
    // FOR degrades by >4x; PFOR barely moves.
    assert!(for_dirty > for_clean * 4, "FOR {for_clean} -> {for_dirty}");
    assert!(pfor_dirty < pfor_clean * 2, "PFOR {pfor_clean} -> {pfor_dirty}");
    assert!(pfor_dirty * 4 < for_dirty, "patched wins on dirty data");
}

#[test]
fn pdict_handles_skew_better_than_classic_dict() {
    // "dictionary compression needs always log2(|D|) bits, even if the
    // frequency distribution ... is highly skewed."
    let values: Vec<u32> = (0..100_000)
        .map(|i| if i % 100 == 0 { (i as u32) * 1000 } else { [7, 9][i % 2] })
        .collect();
    let classic = ClassicDict.encode_vec(&values).len();
    let analysis = analyze(&values, &AnalyzeOpts::default());
    let pdict_plan = analysis
        .candidates
        .iter()
        .find(|c| matches!(c.plan, scc::core::Plan::Pdict { .. }))
        .expect("pdict candidate");
    let seg = compress_with_plan(&values, &pdict_plan.plan);
    assert_eq!(seg.decompress(), values);
    assert!(
        seg.compressed_bytes() * 2 < classic,
        "PDICT {} vs classic dict {classic}",
        seg.compressed_bytes()
    );
}

#[test]
fn analyzer_never_loses_to_plain_storage_when_it_promises_gains() {
    for (shape, values) in shapes() {
        let analysis = analyze(&values, &AnalyzeOpts::default());
        if analysis.worthwhile() {
            let plan = &analysis.best().unwrap().plan;
            let seg = compress_with_plan(&values, plan);
            assert!(
                seg.compressed_bytes() < values.len() * 4 + 64,
                "{shape}: {} promised gains but produced {} bytes for {} raw",
                plan.name(),
                seg.compressed_bytes(),
                values.len() * 4
            );
        }
    }
}

#[test]
fn fine_grained_access_is_exact_everywhere() {
    for (shape, values) in shapes() {
        if let Some((seg, _)) = scc::core::compress_auto(&values) {
            for i in (0..values.len()).step_by(373) {
                assert_eq!(seg.get(i), values[i], "{shape} at {i}");
            }
        }
    }
}
