//! `scc` — command-line compressor for columns of little-endian integers.
//!
//! ```text
//! scc analyze    <in.bin>  [--type u32|i32|u64|i64]
//! scc compress   <in.bin>  <out.scc> [--type T] [--scheme auto|pfor|pfordelta|pdict] [--bits B]
//! scc decompress <in.scc>  <out.bin>
//! scc inspect    <in.scc>
//! scc verify     <in.scc>
//! scc explain    [--queries 1,6] [--sf 0.01] [--threads N] [--no-code-scan]
//!                [--metrics-json <out.json>]
//! scc serve      [--addr A] [--workers N] [--rows R] [--queue-depth Q] [--deadline-ms D]
//!                [--drain-ms D] [--write-timeout-ms W]
//!                [--trace-out <trace.json>] [--trace-sample R] [--trace-slow-ms M]
//! scc loadgen    [--addr A] [--requests N] [--threads T] [--rows R] [--corrupt]
//!                [--chaos] [--chaos-seed S] [--retry-attempts N] [--retry-deadline-ms D]
//!                [--stats-json <out.json>] [--client-metrics-json <out.json>]
//!                [--report-json <out.json>] [--shutdown] [--force]
//!                [--trace-json <trace.json>] [--trace-sample R]
//!                [--cluster --topology <file>]
//! scc cluster-serve --topology <file> --node <index> [--rows R] [--workers N]
//! scc top        [--addr A] [--interval-ms I] [--iterations N] [--no-clear]
//! ```
//!
//! File format: `SCCF` magic, a type tag, a segment count, then
//! length-prefixed `scc_core` wire segments of up to 2^20 values each.
//!
//! Corrupt or truncated inputs never panic: every structural defect is
//! reported as a typed [`scc::core::Error`] mapped to a message and a
//! nonzero exit. `scc verify` checks each segment's checksums without
//! decompressing and reports the first corrupt byte offset.

use scc::core::{
    analyze, compress_with_plan, frame, wire, AnalyzeOpts, Error, Integrity, Plan, Segment, Value,
};
use std::fs;
use std::process::ExitCode;

const FILE_MAGIC: &[u8; 4] = b"SCCF";
const SEG_VALUES: usize = 1 << 20;

fn type_tag(name: &str) -> Option<u8> {
    match name {
        "u32" => Some(1),
        "i32" => Some(2),
        "u64" => Some(3),
        "i64" => Some(4),
        _ => None,
    }
}

fn die(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage:\n  scc analyze    <in.bin> [--type T]\n  scc compress   <in.bin> <out.scc> \
         [--type T] [--scheme auto|pfor|pfordelta|pdict] [--bits B]\n  scc decompress <in.scc> \
         <out.bin>\n  scc inspect    <in.scc>\n  scc verify     <in.scc>\n  scc explain    \
         [--queries 1,6] [--sf 0.01] [--threads N] [--no-code-scan] [--metrics-json <out.json>]\n  scc serve      \
         [--addr A] [--workers N] [--rows R] [--queue-depth Q] [--deadline-ms D] [--drain-ms D] \
         [--write-timeout-ms W] [--trace-out J] [--trace-sample R] [--trace-slow-ms M]\n  \
         scc loadgen    \
         [--addr A] [--requests N] [--threads T] [--rows R] [--corrupt] [--chaos] \
         [--chaos-seed S] [--retry-attempts N] [--retry-deadline-ms D] \
         [--stats-json J] [--client-metrics-json J] \
         [--report-json J] [--shutdown] [--force] [--trace-json J] [--trace-sample R] \
         [--cluster --topology F]\n  \
         scc cluster-serve --topology F --node I [--rows R] [--workers N]\n  \
         scc top        [--addr A] [--interval-ms I] [--iterations N] [--no-clear]\n  \
         (T = u32|i32|u64|i64, default u32)"
    );
    ExitCode::FAILURE
}

fn parse_values<V: Value>(bytes: &[u8]) -> Result<Vec<V>, String> {
    let w = V::byte_width();
    if !bytes.len().is_multiple_of(w) {
        return Err(format!("input length {} is not a multiple of {w}", bytes.len()));
    }
    Ok(bytes.chunks_exact(w).map(V::read_le).collect())
}

fn pick_plan<V: Value>(values: &[V], scheme: &str, bits: Option<u32>) -> Result<Plan<V>, String> {
    let analysis = analyze(values, &AnalyzeOpts::default());
    let matches_scheme = |p: &Plan<V>| match scheme {
        "auto" => true,
        "pfor" => matches!(p, Plan::Pfor { .. }),
        "pfordelta" => matches!(p, Plan::PforDelta { .. }),
        "pdict" => matches!(p, Plan::Pdict { .. }),
        _ => false,
    };
    if !["auto", "pfor", "pfordelta", "pdict"].contains(&scheme) {
        return Err(format!("unknown scheme {scheme}"));
    }
    analysis
        .candidates
        .iter()
        .filter(|c| matches_scheme(&c.plan))
        .filter(|c| bits.is_none_or(|b| c.plan.bit_width() == b))
        .map(|c| c.plan.clone())
        .next()
        .ok_or_else(|| format!("no {scheme} candidate at the requested width"))
}

fn cmd_analyze<V: Value>(values: &[V]) {
    let analysis = analyze(values, &AnalyzeOpts::default());
    println!(
        "{} values of {}; plain storage {} bytes",
        values.len(),
        V::NAME,
        values.len() * V::byte_width()
    );
    println!("{:<12} {:>4} {:>14} {:>10}", "scheme", "b", "est bits/value", "est ratio");
    for cand in analysis.candidates.iter().take(6) {
        println!(
            "{:<12} {:>4} {:>14.2} {:>9.2}x",
            cand.plan.name(),
            cand.plan.bit_width(),
            cand.est_bits_per_value,
            V::BITS as f64 / cand.est_bits_per_value
        );
    }
    if !analysis.worthwhile() {
        println!("(recommendation: store plain)");
    }
}

fn cmd_compress<V: Value>(
    values: &[V],
    out_path: &str,
    scheme: &str,
    bits: Option<u32>,
) -> Result<(), String> {
    let plan = pick_plan(values, scheme, bits)?;
    let mut out = Vec::new();
    out.extend_from_slice(FILE_MAGIC);
    out.push(type_tag(V::NAME).expect("known type"));
    let n_segs = values.len().div_ceil(SEG_VALUES).max(1);
    out.extend_from_slice(&(n_segs as u32).to_le_bytes());
    let mut total_comp = 0usize;
    let chunks: Vec<&[V]> =
        if values.is_empty() { vec![&[][..]] } else { values.chunks(SEG_VALUES).collect() };
    for chunk in chunks {
        let seg = compress_with_plan(chunk, &plan);
        let bytes = seg.to_bytes();
        total_comp += bytes.len();
        frame::put_len_prefixed(&mut out, &bytes);
    }
    fs::write(out_path, &out).map_err(|e| format!("writing {out_path}: {e}"))?;
    let raw = values.len() * V::byte_width();
    println!(
        "{} -> {} bytes ({:.2}x) with {} b={} in {} segment(s)",
        raw,
        total_comp,
        raw as f64 / total_comp.max(1) as f64,
        plan.name(),
        plan.bit_width(),
        values.len().div_ceil(SEG_VALUES).max(1)
    );
    Ok(())
}

/// Walks the `SCCF` container. Every structural defect — a file too short
/// for the segment count, a length prefix past EOF, a segment body the
/// wire parser rejects — comes back as a typed [`Error`], never a panic.
fn read_segments<V: Value>(bytes: &[u8]) -> Result<Vec<Segment<V>>, Error> {
    if bytes.len() < 9 {
        return Err(Error::Truncated { offset: 5, need: 4, have: bytes.len().saturating_sub(5) });
    }
    let n_segs = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
    let mut pos = 9usize;
    // The count is untrusted input: grow the vec lazily rather than
    // pre-reserving an attacker-chosen capacity.
    let mut segs = Vec::new();
    for _ in 0..n_segs {
        let seg_bytes = frame::take_len_prefixed(bytes, &mut pos)?;
        segs.push(Segment::<V>::try_from_bytes(seg_bytes)?);
    }
    Ok(segs)
}

fn cmd_decompress<V: Value>(bytes: &[u8], out_path: &str) -> Result<(), String> {
    let mut out = Vec::new();
    for seg in read_segments::<V>(bytes).map_err(|e| e.to_string())? {
        for v in seg.decompress() {
            v.write_le(&mut out);
        }
    }
    fs::write(out_path, &out).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("wrote {} bytes", out.len());
    Ok(())
}

/// Per-segment integrity check: validates structure and checksums via
/// `wire::verify` without decompressing any data, and reports the file
/// offset of the first corrupt byte range. Type-agnostic — the width is
/// read from each segment's own header.
fn cmd_verify(bytes: &[u8]) -> Result<(), String> {
    if bytes.len() < 9 {
        return Err(Error::Truncated { offset: 5, need: 4, have: bytes.len().saturating_sub(5) }
            .to_string());
    }
    let n_segs = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
    let mut pos = 9usize;
    let mut corrupt = 0usize;
    let mut unverified = 0usize;
    let mut verified = 0usize;
    for i in 0..n_segs {
        let data_at = pos + frame::LEN_PREFIX_BYTES;
        let seg_bytes = match frame::take_len_prefixed(bytes, &mut pos) {
            Ok(b) => b,
            Err(e) => {
                println!("  seg {i}: CORRUPT: {e}");
                corrupt += 1;
                break;
            }
        };
        match wire::verify(seg_bytes) {
            Ok(r) => {
                let tag = match r.integrity {
                    Integrity::Verified => {
                        verified += 1;
                        "verified"
                    }
                    Integrity::Unverified => {
                        unverified += 1;
                        "unverified (v1: no checksums)"
                    }
                };
                println!(
                    "  seg {i}: v{} {:?} {} n={} {} bytes - {tag}",
                    r.version,
                    r.scheme,
                    r.layout.name(),
                    r.n,
                    r.bytes
                );
            }
            Err(f) => {
                println!("  seg {i}: CORRUPT at file offset {}: {}", data_at + f.offset, f.error);
                corrupt += 1;
            }
        }
    }
    println!(
        "{n_segs} segment(s): {verified} verified, {unverified} unverified, {corrupt} corrupt"
    );
    if corrupt > 0 {
        Err(format!("{corrupt} corrupt segment(s)"))
    } else {
        Ok(())
    }
}

fn cmd_inspect<V: Value>(bytes: &[u8]) -> Result<(), String> {
    let segs = read_segments::<V>(bytes).map_err(|e| e.to_string())?;
    println!("type {}; {} segment(s)", V::NAME, segs.len());
    for (i, seg) in segs.iter().enumerate() {
        let s = seg.stats();
        println!(
            "  seg {i}: {:?} {} b={} n={} exceptions={} ({:.2}%) {} bytes ({:.2}x)",
            seg.scheme(),
            seg.layout().name(),
            s.b,
            s.n,
            s.exceptions,
            100.0 * s.exceptions as f64 / s.n.max(1) as f64,
            s.compressed_bytes,
            s.ratio
        );
    }
    Ok(())
}

/// `scc explain`: EXPLAIN ANALYZE over TPC-H queries against a freshly
/// generated database. Prints one annotated operator tree per query with
/// per-operator rows, vectors, calls and wall time, plus the scan-level
/// I/O counters. `--metrics-json` additionally dumps the full telemetry
/// registry (schema v1).
fn cmd_explain(args: &[String]) -> Result<(), String> {
    let mut sf = 0.01f64;
    let mut queries: Vec<u32> = vec![1, 6];
    let mut metrics_path: Option<String> = None;
    let mut threads = 1usize;
    let mut code_scan = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer")?;
                if threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
                i += 2;
            }
            "--sf" => {
                sf = args
                    .get(i + 1)
                    .ok_or("--sf needs a value")?
                    .parse()
                    .map_err(|_| "--sf must be a number")?;
                i += 2;
            }
            "--queries" => {
                queries = args
                    .get(i + 1)
                    .ok_or("--queries needs a comma-separated list")?
                    .split(',')
                    .map(|s| s.trim().parse::<u32>().map_err(|_| format!("bad query number {s}")))
                    .collect::<Result<_, _>>()?;
                i += 2;
            }
            "--metrics-json" => {
                metrics_path = Some(args.get(i + 1).ok_or("--metrics-json needs a path")?.clone());
                i += 2;
            }
            "--no-code-scan" => {
                code_scan = false;
                i += 1;
            }
            other => return Err(format!("unknown explain option {other}")),
        }
    }
    use scc::tpch::queries::{EXTENDED_QUERIES, PAPER_QUERIES};
    for &q in &queries {
        if !PAPER_QUERIES.contains(&q) && !EXTENDED_QUERIES.contains(&q) {
            return Err(format!(
                "query {q} is not implemented (available: {PAPER_QUERIES:?} + {EXTENDED_QUERIES:?})"
            ));
        }
    }

    scc::obs::set_enabled(true);
    println!(
        "decode kernel: {} (override with SCC_KERNEL=scalar|sse41|avx2)",
        scc::bitpack::kernel::active()
    );
    println!(
        "encode layout: {} (auto from access telemetry; override with \
         SCC_LAYOUT=horizontal|vertical)",
        scc::core::choose_layout().name()
    );
    let db = scc::tpch::TpchDb::generate(sf, 20_060_703);
    let cfg = scc::tpch::QueryConfig { threads, code_scan, ..Default::default() };
    for &q in &queries {
        let run = scc::tpch::queries::run_query(&db, &cfg, q);
        println!(
            "Q{q} — {} row(s), {thr} scan thread(s), cpu {:.2} ms, modeled total {:.2} ms",
            run.batch.len(),
            run.cpu_seconds * 1e3,
            run.total_seconds() * 1e3,
            thr = threads,
        );
        print!("{}", run.explain.render());
        println!("  [{}]", run.stats);
        let (decoded, skipped) = run.explain.values_totals();
        if decoded + skipped > 0 {
            println!(
                "  compressed-domain: {decoded} values decoded, {skipped} skipped ({:.1}% \
                 answered in code space)",
                100.0 * skipped as f64 / (decoded + skipped) as f64
            );
        }
        println!();
    }
    let (h, v) = scc::core::telemetry::layout_counts();
    if h + v > 0 {
        println!("segments encoded: {h} horizontal, {v} vertical");
    }
    if let Some(path) = metrics_path {
        scc::core::telemetry::publish_derived();
        scc::obs::export::write_file(scc::obs::global(), std::path::Path::new(&path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("metrics written to {path}");
    }
    Ok(())
}

/// Pulls `--flag value` pairs out of an option list with uniform
/// error messages; used by the server subcommands.
struct OptParser<'a> {
    args: &'a [String],
    i: usize,
}

impl<'a> OptParser<'a> {
    fn new(args: &'a [String]) -> Self {
        Self { args, i: 0 }
    }

    fn next_flag(&mut self) -> Option<&'a str> {
        let flag = self.args.get(self.i)?;
        self.i += 1;
        Some(flag.as_str())
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        let v = self.args.get(self.i).ok_or(format!("{flag} needs a value"))?;
        self.i += 1;
        Ok(v.as_str())
    }

    fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        self.value(flag)?.parse().map_err(|_| format!("{flag}: bad value"))
    }
}

/// `scc serve`: expose the deterministic demo table over TCP (see
/// `docs/SERVER.md`). Blocks until a protocol `Shutdown` request
/// arrives, then prints the service-time percentiles the run observed.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config =
        scc::server::ServerConfig { addr: "127.0.0.1:7644".into(), ..Default::default() };
    let mut rows = 50_000usize;
    let mut trace_out: Option<String> = None;
    let mut trace_sample: f64 = 0.01;
    let mut trace_slow_ms: Option<u64> = None;
    let mut p = OptParser::new(args);
    while let Some(flag) = p.next_flag() {
        match flag {
            "--addr" => config.addr = p.value(flag)?.to_string(),
            "--workers" => config.workers = p.parse(flag)?,
            "--rows" => rows = p.parse(flag)?,
            "--queue-depth" => config.queue_depth = p.parse(flag)?,
            "--deadline-ms" => config.deadline = std::time::Duration::from_millis(p.parse(flag)?),
            "--drain-ms" => {
                config.drain_deadline = std::time::Duration::from_millis(p.parse(flag)?)
            }
            "--write-timeout-ms" => {
                config.write_timeout = std::time::Duration::from_millis(p.parse(flag)?)
            }
            "--max-scan-threads" => config.max_scan_threads = p.parse(flag)?,
            "--trace-out" => trace_out = Some(p.value(flag)?.to_string()),
            "--trace-sample" => trace_sample = p.parse(flag)?,
            "--trace-slow-ms" => trace_slow_ms = Some(p.parse(flag)?),
            other => return Err(format!("unknown serve option {other}")),
        }
    }
    if rows == 0 || config.workers == 0 {
        return Err("--rows and --workers must be positive".into());
    }
    if let Some(path) = &trace_out {
        if !(0.0..=1.0).contains(&trace_sample) {
            return Err("--trace-sample must be in 0..=1".into());
        }
        scc::obs::trace::configure(scc::obs::trace::TraceConfig {
            sample_rate: trace_sample,
            // 0 = derive from the request deadline (Server::start).
            slow_ns: trace_slow_ms.unwrap_or(0).saturating_mul(1_000_000),
        });
        scc::obs::trace::set_collect(true);
        println!("tracing to {path} (sample {trace_sample}, slow-capture on)");
    } else if trace_slow_ms.is_some() {
        return Err("--trace-slow-ms needs --trace-out".into());
    }
    let mut catalog = scc::server::Catalog::new();
    catalog.add(scc::server::demo_table(rows));
    let workers = config.workers;
    let server =
        scc::server::Server::start(config, catalog).map_err(|e| format!("binding server: {e}"))?;
    println!(
        "scc-server listening on {} ({} worker(s), table demo x {rows} rows)",
        server.local_addr(),
        workers
    );
    server.wait();
    println!("scc-server: shut down cleanly");
    if let Some(path) = &trace_out {
        let n = scc::obs::trace::write_chrome_file(std::path::Path::new(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("{n} trace span(s) written to {path} (chrome://tracing / Perfetto)");
    }
    for kind in ["segment_range", "scan", "stats"] {
        let hist = scc::obs::global().histogram(&format!("server.service_ns.{kind}"));
        if hist.count() == 0 {
            continue;
        }
        let p = |q| hist.percentile(q).unwrap_or(0) as f64 / 1_000.0;
        println!(
            "  {kind}: {} request(s), service time p50 {:.0}us p95 {:.0}us p99 {:.0}us",
            hist.count(),
            p(0.50),
            p(0.95),
            p(0.99)
        );
    }
    Ok(())
}

/// `scc cluster-serve`: serve one node's slice of the partitioned demo
/// table (see `docs/CLUSTER.md`). The topology file decides which
/// partitions this node hosts (as primary or replica) and which address
/// it binds; every node derives the same placement from the same file.
fn cmd_cluster_serve(args: &[String]) -> Result<(), String> {
    let mut topology_path: Option<String> = None;
    let mut node: Option<usize> = None;
    let mut rows = 50_000usize;
    let mut workers: Option<usize> = None;
    let mut p = OptParser::new(args);
    while let Some(flag) = p.next_flag() {
        match flag {
            "--topology" => topology_path = Some(p.value(flag)?.to_string()),
            "--node" => node = Some(p.parse(flag)?),
            "--rows" => rows = p.parse(flag)?,
            "--workers" => workers = Some(p.parse(flag)?),
            other => return Err(format!("unknown cluster-serve option {other}")),
        }
    }
    let topology_path = topology_path.ok_or("cluster-serve needs --topology <file>")?;
    let node = node.ok_or("cluster-serve needs --node <index>")?;
    let topology = scc::cluster::Topology::load(&topology_path).map_err(|e| e.to_string())?;
    if node >= topology.nodes.len() {
        return Err(format!("--node {node} out of range ({} nodes)", topology.nodes.len()));
    }
    if rows == 0 {
        return Err("--rows must be positive".into());
    }
    let table = scc::server::demo_table(rows);
    let manifest = topology.manifest_for("demo", rows, table.seg_rows());
    let parts = scc::storage::partition_table(&table, &manifest);
    let mut catalog = scc::server::Catalog::new();
    let mut hosted = Vec::new();
    for (pi, part) in parts.iter().enumerate() {
        if manifest.primary[pi] == node || manifest.replica[pi] == node {
            catalog.add(std::sync::Arc::clone(part));
            hosted.push(pi);
        }
    }
    let mut config =
        scc::server::ServerConfig { addr: topology.nodes[node].clone(), ..Default::default() };
    if let Some(w) = workers {
        config.workers = w;
    }
    let server = scc::server::Server::start(config, catalog)
        .map_err(|e| format!("binding shard {node} ({}): {e}", topology.nodes[node]))?;
    println!(
        "scc-cluster shard {node} listening on {} hosting partition(s) {hosted:?} of demo x {rows} rows",
        server.local_addr()
    );
    server.wait();
    println!("scc-cluster shard {node}: shut down cleanly");
    Ok(())
}

/// `scc loadgen`: closed-loop load against a running `scc serve`,
/// verifying every response byte-exactly against a local replica of
/// the demo table (`--rows` must match the server's). With `--cluster
/// --topology <file>`, drives a whole shard cluster through the
/// scatter-gather coordinator instead, byte-verifying merged results
/// against the same local replica.
fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    let mut cfg = scc::server::LoadgenConfig::default();
    let mut rows = 50_000usize;
    let mut stats_json: Option<String> = None;
    let mut client_metrics_json: Option<String> = None;
    let mut report_json: Option<String> = None;
    let mut shutdown = false;
    let mut force = false;
    let mut chaos = false;
    let mut chaos_seed: Option<u64> = None;
    let mut trace_json: Option<String> = None;
    let mut trace_sample: f64 = 1.0;
    let mut cluster = false;
    let mut topology_path: Option<String> = None;
    let mut p = OptParser::new(args);
    while let Some(flag) = p.next_flag() {
        match flag {
            "--addr" => cfg.addr = p.value(flag)?.to_string(),
            "--cluster" => cluster = true,
            "--topology" => topology_path = Some(p.value(flag)?.to_string()),
            "--requests" => cfg.requests = p.parse(flag)?,
            "--threads" => cfg.threads = p.parse(flag)?,
            "--scan-threads" => cfg.scan_threads = p.parse(flag)?,
            "--rows" => rows = p.parse(flag)?,
            "--seed" => cfg.seed = p.parse(flag)?,
            "--corrupt" => cfg.corrupt = true,
            "--chaos" => chaos = true,
            "--chaos-seed" => chaos_seed = Some(p.parse(flag)?),
            "--retry-attempts" => cfg.retry.max_attempts = p.parse(flag)?,
            "--retry-deadline-ms" => {
                cfg.retry.deadline = std::time::Duration::from_millis(p.parse(flag)?)
            }
            "--stats-json" => stats_json = Some(p.value(flag)?.to_string()),
            "--client-metrics-json" => client_metrics_json = Some(p.value(flag)?.to_string()),
            "--report-json" => report_json = Some(p.value(flag)?.to_string()),
            "--shutdown" => shutdown = true,
            "--force" => force = true,
            "--trace-json" => trace_json = Some(p.value(flag)?.to_string()),
            "--trace-sample" => trace_sample = p.parse(flag)?,
            other => return Err(format!("unknown loadgen option {other}")),
        }
    }
    if let Some(_path) = &trace_json {
        if !(0.0..=1.0).contains(&trace_sample) {
            return Err("--trace-sample must be in 0..=1".into());
        }
        // Sampled client requests carry their context to the server,
        // so one trace covers attempts, retries and server phases.
        scc::obs::trace::configure(scc::obs::trace::TraceConfig {
            sample_rate: trace_sample,
            slow_ns: 0,
        });
        scc::obs::trace::set_collect(true);
    }
    if chaos {
        // The composite plan: every fault type at once, deterministic
        // in the seed, with requests riding the default retry policy.
        cfg.chaos = Some(scc::server::ChaosPlan::composite(chaos_seed.unwrap_or(cfg.seed)));
    } else if chaos_seed.is_some() {
        return Err("--chaos-seed needs --chaos".into());
    }
    if force && !shutdown {
        return Err("--force needs --shutdown".into());
    }
    if rows == 0 || cfg.threads == 0 {
        return Err("--rows and --threads must be positive".into());
    }
    if cluster {
        let topology_path = topology_path.ok_or("--cluster needs --topology <file>")?;
        if cfg.corrupt || stats_json.is_some() || trace_json.is_some() {
            return Err("--corrupt/--stats-json/--trace-json are single-node options".into());
        }
        let topology = scc::cluster::Topology::load(&topology_path).map_err(|e| e.to_string())?;
        let table = scc::server::demo_table(rows);
        let manifest = topology.manifest_for("demo", rows, table.seg_rows());
        let mut coord = scc::cluster::Coordinator::new(
            topology,
            scc::cluster::ClusterConfig {
                retry: cfg.retry,
                chaos: cfg.chaos,
                shard_threads: cfg.scan_threads,
                ..Default::default()
            },
        );
        coord.register(manifest);
        let lcfg = scc::cluster::ClusterLoadgenConfig {
            requests: cfg.requests,
            threads: cfg.threads,
            seed: cfg.seed,
        };
        let report = scc::cluster::run_cluster_loadgen(&coord, &table, &lcfg)?;
        println!("{}", report.summary());
        if let Some(path) = report_json {
            fs::write(&path, report.to_json().pretty() + "\n")
                .map_err(|e| format!("writing {path}: {e}"))?;
            println!("report written to {path}");
        }
        if let Some(path) = client_metrics_json {
            let json = scc::obs::export::to_json(scc::obs::global()).pretty();
            fs::write(&path, json + "\n").map_err(|e| format!("writing {path}: {e}"))?;
            println!("client metrics written to {path}");
        }
        if shutdown {
            let acked = coord.shutdown_nodes(force);
            println!(
                "{acked} node(s) acknowledged shutdown ({})",
                if force { "forced" } else { "graceful drain" }
            );
        }
        if report.errors > 0 || report.verify_failures > 0 {
            return Err(format!(
                "{} failed and {} unverified response(s)",
                report.errors, report.verify_failures
            ));
        }
        return Ok(());
    } else if topology_path.is_some() {
        return Err("--topology needs --cluster".into());
    }
    let replica = scc::server::demo_table(rows);
    let report = scc::server::run_loadgen(&cfg, &replica)?;
    println!("{}", report.summary());
    if let Some(path) = &trace_json {
        let n = scc::obs::trace::write_chrome_file(std::path::Path::new(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("{n} trace span(s) written to {path} (chrome://tracing / Perfetto)");
    }
    if let Some(path) = report_json {
        fs::write(&path, report.to_json().pretty() + "\n")
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("report written to {path}");
    }
    if let Some(path) = stats_json {
        let mut client = scc::server::Client::connect(&cfg.addr)
            .map_err(|e| format!("connecting for stats: {e}"))?;
        let json = client.stats_json().map_err(|e| e.to_string())?;
        fs::write(&path, json + "\n").map_err(|e| format!("writing {path}: {e}"))?;
        println!("server metrics written to {path}");
    }
    if let Some(path) = client_metrics_json {
        // The loadgen process's own registry: client.retries,
        // client.backoff_ms and friends live here, not on the server.
        let json = scc::obs::export::to_json(scc::obs::global()).pretty();
        fs::write(&path, json + "\n").map_err(|e| format!("writing {path}: {e}"))?;
        println!("client metrics written to {path}");
    }
    if shutdown {
        let mut client = scc::server::Client::connect(&cfg.addr)
            .map_err(|e| format!("connecting for shutdown: {e}"))?;
        client.shutdown_server(force).map_err(|e| e.to_string())?;
        println!(
            "server acknowledged shutdown ({})",
            if force { "forced" } else { "graceful drain" }
        );
    }
    if report.errors > 0 || report.verify_failures > 0 {
        return Err(format!(
            "{} failed and {} unverified response(s)",
            report.errors, report.verify_failures
        ));
    }
    if report.corrupt_rejected != report.corrupt_sent {
        return Err(format!(
            "only {}/{} corrupt frames were refused with a typed error",
            report.corrupt_rejected, report.corrupt_sent
        ));
    }
    Ok(())
}

/// `scc top`: a live terminal dashboard over a running server's
/// windowed Health section — sliding-window p50/p95/p99, queue depth,
/// request and shed rates, and a p99 trend sparkline.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let mut cfg = scc::server::TopConfig::default();
    let mut p = OptParser::new(args);
    while let Some(flag) = p.next_flag() {
        match flag {
            "--addr" => cfg.addr = p.value(flag)?.to_string(),
            "--interval-ms" => {
                cfg.interval = std::time::Duration::from_millis(p.parse(flag)?);
            }
            "--iterations" => cfg.iterations = Some(p.parse(flag)?),
            "--no-clear" => cfg.clear_screen = false,
            other => return Err(format!("unknown top option {other}")),
        }
    }
    let mut out = std::io::stdout();
    let frames = scc::server::run_top(&cfg, &mut out).map_err(|e| e.to_string())?;
    println!("scc top: {frames} frame(s) rendered");
    Ok(())
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let cmd = args[0].as_str();
    if cmd == "explain" {
        return cmd_explain(&args[1..]);
    }
    if cmd == "serve" {
        return cmd_serve(&args[1..]);
    }
    if cmd == "loadgen" {
        return cmd_loadgen(&args[1..]);
    }
    if cmd == "cluster-serve" {
        return cmd_cluster_serve(&args[1..]);
    }
    if cmd == "top" {
        return cmd_top(&args[1..]);
    }
    let mut ty = "u32".to_string();
    let mut scheme = "auto".to_string();
    let mut bits: Option<u32> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--type" => {
                ty = args.get(i + 1).ok_or("--type needs a value")?.clone();
                i += 2;
            }
            "--scheme" => {
                scheme = args.get(i + 1).ok_or("--scheme needs a value")?.clone();
                i += 2;
            }
            "--bits" => {
                bits = Some(
                    args.get(i + 1)
                        .ok_or("--bits needs a value")?
                        .parse()
                        .map_err(|_| "--bits must be an integer")?,
                );
                i += 2;
            }
            other => {
                positional.push(&args[i]);
                let _ = other;
                i += 1;
            }
        }
    }
    type_tag(&ty).ok_or_else(|| format!("unknown type {ty}"))?;
    let input = positional.first().ok_or("missing input file")?;
    let bytes = fs::read(input.as_str()).map_err(|e| format!("reading {input}: {e}"))?;

    // For compressed inputs, the embedded tag overrides --type.
    let compressed_input = bytes.len() >= 9 && &bytes[..4] == FILE_MAGIC;

    // `verify` is type-agnostic (each segment header carries its own
    // width), so it runs before type resolution: a corrupted type tag
    // must not prevent verification.
    if cmd == "verify" {
        if bytes.len() < 4 || &bytes[..4] != FILE_MAGIC {
            return Err("input is not an scc file".into());
        }
        return cmd_verify(&bytes);
    }

    let eff_ty: String = if compressed_input {
        match bytes[4] {
            1 => "u32",
            2 => "i32",
            3 => "u64",
            4 => "i64",
            t => return Err(format!("unknown embedded type tag {t}")),
        }
        .to_string()
    } else {
        ty
    };

    macro_rules! with_type {
        ($V:ty) => {
            match cmd {
                "analyze" => {
                    cmd_analyze::<$V>(&parse_values::<$V>(&bytes)?);
                    Ok(())
                }
                "compress" => {
                    let out = positional.get(1).ok_or("missing output file")?;
                    cmd_compress::<$V>(&parse_values::<$V>(&bytes)?, out, &scheme, bits)
                }
                "decompress" => {
                    if !compressed_input {
                        return Err("input is not an scc file".into());
                    }
                    let out = positional.get(1).ok_or("missing output file")?;
                    cmd_decompress::<$V>(&bytes, out)
                }
                "inspect" => {
                    if !compressed_input {
                        return Err("input is not an scc file".into());
                    }
                    cmd_inspect::<$V>(&bytes)
                }
                other => Err(format!("unknown command {other}")),
            }
        };
    }
    match eff_ty.as_str() {
        "u32" => with_type!(u32),
        "i32" => with_type!(i32),
        "u64" => with_type!(u64),
        "i64" => with_type!(i64),
        _ => unreachable!("validated above"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return die("no command");
    }
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => die(&e),
    }
}
