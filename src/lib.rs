//! # scc — Super-Scalar RAM-CPU Cache Compression
//!
//! A from-scratch Rust reproduction of *Super-Scalar RAM-CPU Cache
//! Compression* (Zukowski, Héman, Nes, Boncz; ICDE 2006): the PFOR,
//! PFOR-DELTA and PDICT patched compression schemes, plus every substrate
//! the paper's evaluation runs on — an X100-style vectorized query
//! engine, a ColumnBM-style storage manager with DSM/PAX layouts and a
//! compressed buffer pool, a TPC-H generator with the paper's eleven
//! queries, an inverted-file retrieval substrate, and re-implementations
//! of every baseline codec.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! namespace. See each module's documentation for the details, and
//! `DESIGN.md` / `EXPERIMENTS.md` at the repository root for the
//! experiment index.
//!
//! ```
//! use scc::core::{compress_auto, pfor};
//!
//! let values: Vec<u32> = (0..100_000).map(|i| 500 + i % 200).collect();
//! let seg = pfor::compress(&values, 500, 8);
//! assert_eq!(seg.decompress(), values);
//!
//! let (auto_seg, plan) = compress_auto(&values).unwrap();
//! println!("{} at {:.2} bits/value", plan.name(), auto_seg.stats().bits_per_value);
//! ```

#![warn(missing_docs)]

/// Bit-packing and bit-stream kernels.
pub use scc_bitpack as bitpack;

/// Metrics registry, timer spans and JSON export.
pub use scc_obs as obs;

/// The paper's contribution: PFOR, PFOR-DELTA, PDICT.
pub use scc_core as core;

/// Baseline compressors (FOR, PS, dict, LZ family, Huffman, word-aligned).
pub use scc_baselines as baselines;

/// X100-style vectorized query engine.
pub use scc_engine as engine;

/// ColumnBM-style storage manager.
pub use scc_storage as storage;

/// TCP segment/scan server, protocol client and load generator.
pub use scc_server as server;

/// Scatter-gather cluster coordinator over scc-server shards.
pub use scc_cluster as cluster;

/// TPC-H generator and the paper's eleven queries.
pub use scc_tpch as tpch;

/// Inverted-file substrate.
pub use scc_ir as ir;

/// Analytical models (equation 3.1, compulsory exceptions, Table 1).
pub use scc_model as model;
