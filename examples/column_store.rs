//! A tour of the ColumnBM-style storage manager: build a table, scan it
//! compressed and uncompressed, watch the buffer pool absorb re-scans,
//! and compare vector-wise with page-wise decompression.
//!
//! ```text
//! cargo run --release --example column_store
//! ```

use scc::engine::{Expr, Operator, Select};
use scc::storage::disk::stats_handle;
use scc::storage::{
    BufferPool, Compression, DecompressionGranularity, Disk, Layout, Scan, ScanMode, ScanOptions,
    TableBuilder,
};
use std::sync::{Arc, Mutex};

fn main() {
    // A sensor-log style table: timestamps (monotone), device ids (low
    // cardinality), readings (clustered), status strings.
    let n = 2_000_000usize;
    let table = TableBuilder::new("sensor_log")
        .compression(Compression::Auto)
        .add_i64("ts", (0..n as i64).map(|i| 1_700_000_000 + i * 3).collect())
        .add_u32("device", (0..n).map(|i| (i % 157) as u32).collect())
        .add_i32("reading", (0..n).map(|i| 400 + ((i * 2_654_435_761) % 97) as i32).collect())
        .add_str(
            "status",
            (0..n).map(|i| ["OK", "OK", "OK", "WARN", "FAIL"][i % 5].to_string()).collect(),
        )
        .build();
    println!(
        "table: {} rows, {:.1} MB plain -> {:.1} MB compressed ({:.2}x)",
        table.n_rows(),
        table.plain_bytes() as f64 / 1e6,
        table.compressed_bytes() as f64 / 1e6,
        table.ratio()
    );
    for (name, col) in table.columns() {
        println!("  {name:<8} {:>9} -> {:>9} bytes", col.plain_bytes(), col.compressed_bytes());
    }

    // Scan + filter through the engine: count FAIL rows.
    let fail = table.str_col("status").codes_matching(|s| s == "FAIL");
    let stats = stats_handle();
    let scan = Scan::new(
        Arc::clone(&table),
        &["ts", "status"],
        ScanOptions { disk: Disk::low_end(), ..Default::default() },
        Arc::clone(&stats),
        None,
    );
    let mut filtered = Select::new(scan, Expr::col(1).in_set(fail));
    let mut fails = 0usize;
    while let Some(batch) = filtered.next() {
        fails += batch.len();
    }
    println!(
        "\nFAIL rows: {fails} — scan read {:.2} MB compressed, modeled {:.1} ms of I/O",
        stats.lock().unwrap().io_bytes as f64 / 1e6,
        stats.lock().unwrap().io_seconds * 1000.0
    );

    // Buffer pool: the compressed cache holds the whole table; a second
    // scan does no I/O at all.
    let pool = Arc::new(Mutex::new(BufferPool::new(table.compressed_bytes() + 1024)));
    for pass in 1..=2 {
        let stats = stats_handle();
        let mut scan = Scan::new(
            Arc::clone(&table),
            &["reading"],
            ScanOptions { disk: Disk::low_end(), ..Default::default() },
            Arc::clone(&stats),
            Some(Arc::clone(&pool)),
        );
        while scan.next().is_some() {}
        println!(
            "pass {pass}: {} pool hits, {} misses, {:.2} MB charged to disk",
            stats.lock().unwrap().pool_hits,
            stats.lock().unwrap().pool_misses,
            stats.lock().unwrap().io_bytes as f64 / 1e6
        );
    }

    // Page-wise vs vector-wise RAM traffic on the same scan.
    for (label, granularity) in [
        ("vector-wise (RAM-CPU cache)", DecompressionGranularity::VectorWise),
        ("page-wise  (I/O-RAM)", DecompressionGranularity::PageWise),
    ] {
        let stats = stats_handle();
        let mut scan = Scan::new(
            Arc::clone(&table),
            &["ts", "reading"],
            ScanOptions {
                mode: ScanMode::Compressed,
                granularity,
                vector_size: 1024,
                disk: Disk::middle_end(),
                layout: Layout::Dsm,
                // This loop measures decompression RAM traffic, so the
                // scan itself must decode (nothing consumes the values).
                code_scan: false,
            },
            Arc::clone(&stats),
            None,
        );
        while scan.next().is_some() {}
        println!(
            "{label}: {:.1} MB of RAM traffic",
            stats.lock().unwrap().ram_traffic_bytes as f64 / 1e6
        );
    }
}
