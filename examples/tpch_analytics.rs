//! TPC-H analytics end to end: generate data, load it into compressed
//! column stores, and run the paper's queries under different disks and
//! layouts.
//!
//! ```text
//! cargo run --release --example tpch_analytics [scale_factor]
//! ```

use scc::storage::{Disk, Layout, ScanMode};
use scc::tpch::queries::{query_ratio, run_query, PAPER_QUERIES};
use scc::tpch::{QueryConfig, TpchDb};

fn main() {
    let sf: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0.02);
    println!("generating TPC-H at SF {sf}...");
    let db = TpchDb::generate(sf, 1);
    println!(
        "lineitem: {} rows, {:.1} MB plain, {:.1} MB compressed ({:.2}x)",
        db.lineitem.n_rows(),
        db.lineitem.plain_bytes() as f64 / 1e6,
        db.lineitem.compressed_bytes() as f64 / 1e6,
        db.lineitem.ratio()
    );

    // Q6 in detail: revenue forecast.
    let cfg = QueryConfig { disk: Disk::low_end(), ..Default::default() };
    let run = run_query(&db, &cfg, 6);
    println!(
        "\nQ6 revenue = {:.2} (compressed scan: {:.1} ms total, {:.1} ms CPU, {:.2} MB I/O)",
        run.batch.col(0).as_f64()[0] / 100.0,
        run.total_seconds() * 1000.0,
        run.cpu_seconds * 1000.0,
        run.stats.io_bytes as f64 / 1e6
    );

    // The whole paper query set, compressed vs uncompressed on the
    // low-end disk.
    println!("\n{:>3} {:>7} {:>12} {:>12} {:>9}", "Q", "ratio", "unc ms", "cmp ms", "speedup");
    for q in PAPER_QUERIES {
        let unc = run_query(
            &db,
            &QueryConfig {
                mode: ScanMode::Uncompressed,
                disk: Disk::low_end(),
                ..Default::default()
            },
            q,
        );
        let cmp = run_query(
            &db,
            &QueryConfig {
                mode: ScanMode::Compressed,
                disk: Disk::low_end(),
                ..Default::default()
            },
            q,
        );
        println!(
            "{:>3} {:>7.2} {:>12.1} {:>12.1} {:>8.2}x",
            q,
            query_ratio(&db, q),
            unc.total_seconds() * 1000.0,
            cmp.total_seconds() * 1000.0,
            unc.total_seconds() / cmp.total_seconds()
        );
    }

    // Same store, PAX accounting: OLTP-friendlier layout, more I/O.
    let q1_pax = run_query(
        &db,
        &QueryConfig { layout: Layout::Pax, disk: Disk::low_end(), ..Default::default() },
        1,
    );
    println!(
        "\nQ1 under PAX reads {:.2} MB vs DSM {:.2} MB (whole chunks incl. comments)",
        q1_pax.stats.io_bytes as f64 / 1e6,
        run_query(&db, &QueryConfig { disk: Disk::low_end(), ..Default::default() }, 1)
            .stats
            .io_bytes as f64
            / 1e6
    );
}
