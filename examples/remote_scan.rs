//! Remote access over the scc-server protocol: start an in-process
//! server on an ephemeral port, then act as a network client — slice a
//! column (decoded and raw-compressed), stream a filtered scan, and
//! pull the server's metrics snapshot.
//!
//! ```text
//! cargo run --release --example remote_scan
//! ```

use scc::server::{demo_table, Catalog, Client, PredOp, Predicate, Server, ServerConfig};

fn main() {
    // --- Serve a deterministic demo table on 127.0.0.1:0 ---
    let rows = 100_000usize;
    let mut catalog = Catalog::new();
    catalog.add(demo_table(rows));
    let server = Server::start(ServerConfig::default(), catalog).expect("bind");
    let addr = server.local_addr().to_string();
    println!("serving {rows} rows on {addr}");

    let mut client = Client::connect(&addr).expect("connect");

    // --- Slice reads: the entry-point random-access path (paper §4.3) ---
    // Decoded on the server...
    let decoded = client.segment_range("demo", "key", 70_000, 256, false).expect("values");
    assert_eq!(decoded.as_i64()[0], 70_000);
    println!("decoded slice: {} values, first = {}", decoded.len(), decoded.as_i64()[0]);

    // ...or shipped as the raw compressed segments and decoded here.
    // Same bytes out, far fewer bytes over the wire — the paper's point
    // about keeping data compressed until the consumer needs it.
    let raw = client.segment_range("demo", "val", 70_000, 256, true).expect("raw");
    let local = client.segment_range("demo", "val", 70_000, 256, false).expect("values");
    assert_eq!(raw, local);
    println!("raw-compressed slice decoded client-side matches the server's decode");

    // --- A filtered scan, streamed as batch frames ---
    let pred = Predicate { column: "val".into(), op: PredOp::Lt, literal: 100 };
    let (batch, rows_out) = client.scan("demo", &["key", "val"], Some(pred), 2).expect("scan");
    println!(
        "filtered scan (val < 100): {rows_out} of {rows} rows, {} columns",
        batch.columns.len()
    );
    for v in batch.columns[1].as_i32().iter().take(5) {
        assert!(*v < 100);
    }

    // --- Server telemetry over the same protocol ---
    let stats = client.stats_json().expect("stats");
    let doc = scc::obs::json::parse(&stats).expect("schema v1 json");
    let counters = doc.get("counters").and_then(|m| m.as_obj()).expect("counters");
    for name in ["server.requests.segment_range", "server.requests.scan", "server.bytes_out"] {
        let value = counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .expect("counter present");
        println!("  {name} = {value:?}");
    }

    // --- Protocol-level shutdown (graceful drain) ---
    client.shutdown_server(false).expect("ack");
    drop(client);
    server.wait();
    println!("server shut down cleanly");
}
