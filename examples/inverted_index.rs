//! Information retrieval with compressed postings: build an inverted
//! index over a synthetic TREC-like collection, compare codecs, and run
//! the paper's top-N query.
//!
//! ```text
//! cargo run --release --example inverted_index
//! ```

use scc::ir::{
    compress_file, gap_stream, synthesize, top_n_by_tf, CollectionPreset, InvertedIndex,
    PostingsCodec,
};
use scc::model::{equilibrium_decompression_bw, result_bandwidth};
use std::time::Instant;

fn main() {
    let collection = synthesize(CollectionPreset::TrecFbis, 7);
    println!(
        "collection {}: {} docs, {} postings, mean d-gap {:.1}",
        collection.name,
        collection.n_docs,
        collection.n_postings(),
        collection.mean_gap()
    );

    // File-level compression comparison.
    let gaps = gap_stream(&collection);
    println!("\n{:<13} {:>7} {:>12}", "codec", "ratio", "bits/gap");
    for codec in [
        PostingsCodec::PforDelta,
        PostingsCodec::Carryover12,
        PostingsCodec::Shuff,
        PostingsCodec::Golomb,
        PostingsCodec::VByte,
    ] {
        let file = compress_file(&gaps, codec);
        println!("{:<13} {:>7.2} {:>12.2}", codec.name(), file.ratio(), 32.0 / file.ratio());
    }

    // Top-N query over per-term compressed lists.
    let index = InvertedIndex::build(&collection, PostingsCodec::PforDelta);
    let mut scratch = Vec::new();
    let t0 = Instant::now();
    let result = top_n_by_tf(&index, 0, 10, &mut scratch);
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "\ntop-10 docs for the densest term ({} postings, {:.2} ms):",
        result.postings,
        dt * 1000.0
    );
    for (tf, doc) in &result.docs {
        println!("  doc {doc:>8}  tf {tf}");
    }

    // The §5 equilibrium: when does a codec pay off on a 350 MB/s disk?
    let q_bw = 580.0; // the paper's measured query bandwidth, MB/s
    let c_star = equilibrium_decompression_bw(q_bw, 350.0).unwrap();
    println!("\nwith Q = {q_bw} MB/s and a 350 MB/s disk, break-even C* = {c_star:.0} MB/s;");
    for (name, ratio, dec_bw) in
        [("PFOR-DELTA", 3.47, 3911.0), ("carryover-12", 4.26, 740.0), ("shuff", 5.11, 164.0)]
    {
        let r = result_bandwidth(350.0, ratio, q_bw, dec_bw);
        println!(
            "  {name:<13} (paper numbers) -> effective scan {r:.0} MB/s {}",
            if r > 350.0 { "(accelerates)" } else { "(slows the query)" }
        );
    }
}
