//! Quickstart: compress a column three ways, decompress it, and poke at
//! fine-grained access.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use scc::core::{analyze, compress_auto, pdict, pfor, pfordelta, AnalyzeOpts, Dictionary};

fn main() {
    // A column shaped like real warehouse data: clustered values with a
    // few outliers.
    let values: Vec<u32> = (0..1_000_000)
        .map(|i| if i % 1000 == 999 { 5_000_000 + i } else { 20_000 + i % 512 })
        .collect();
    let raw_bytes = values.len() * 4;

    // --- PFOR: explicit base and width ---
    let seg = pfor::compress(&values, 20_000, 9);
    assert_eq!(seg.decompress(), values);
    let stats = seg.stats();
    println!(
        "PFOR        b={} exceptions={} ({:.2}%)  {:.2}x  {:.2} bits/value",
        stats.b,
        stats.exceptions,
        100.0 * stats.exceptions as f64 / stats.n as f64,
        stats.ratio,
        stats.bits_per_value
    );

    // --- Fine-grained access: single values without full decompression ---
    for idx in [0usize, 999, 123_456, 999_999] {
        assert_eq!(seg.get(idx), values[idx]);
    }
    println!("fine-grained get() agrees at spot-checked positions");

    // --- PFOR-DELTA: for sorted/clustered sequences ---
    let sorted: Vec<u32> = (0..1_000_000u32).map(|i| i * 3 + (i % 7)).collect();
    let dseg = pfordelta::compress(&sorted, 0, 0, 3);
    assert_eq!(dseg.decompress(), sorted);
    println!("PFOR-DELTA  {:.2}x on a monotone sequence", dseg.stats().ratio);

    // --- PDICT: skewed frequency distributions ---
    let skewed: Vec<u32> = (0..1_000_000u32)
        .map(|i| if i % 50 == 0 { 777_000 + i % 1000 } else { [3, 1 << 20, 9][i as usize % 3] })
        .collect();
    let dict = Dictionary::new(vec![3, 9, 1 << 20]);
    let pseg = pdict::compress(&skewed, &dict);
    assert_eq!(pseg.decompress(), skewed);
    println!("PDICT       {:.2}x with a 3-entry dictionary", pseg.stats().ratio);

    // --- Automatic scheme selection ---
    let analysis = analyze(&values, &AnalyzeOpts::default());
    println!("\nanalyzer ranking for the first column:");
    for cand in analysis.candidates.iter().take(4) {
        println!(
            "  {:10} b={:<2} est {:.2} bits/value",
            cand.plan.name(),
            cand.plan.bit_width(),
            cand.est_bits_per_value
        );
    }
    let (auto_seg, plan) = compress_auto(&values).expect("compressible");
    println!(
        "auto-chose {} -> {} bytes (raw {} bytes)",
        plan.name(),
        auto_seg.compressed_bytes(),
        raw_bytes
    );

    // --- Wire roundtrip ---
    let bytes = auto_seg.to_bytes();
    let back = scc::core::Segment::<u32>::from_bytes(&bytes).expect("valid segment");
    assert_eq!(back.decompress(), values);
    println!("serialized to {} bytes and back", bytes.len());
}
