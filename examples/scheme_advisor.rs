//! The scheme advisor: run the §3.1 analysis over differently-shaped
//! columns and see which scheme wins, at which width, and how close the
//! estimate lands to reality.
//!
//! ```text
//! cargo run --release --example scheme_advisor
//! ```

use scc::core::{analyze, compress_with_plan, AnalyzeOpts};

fn report(name: &str, values: &[u32]) {
    let analysis = analyze(values, &AnalyzeOpts::default());
    println!("\n=== {name} ({} values) ===", values.len());
    println!("{:<12} {:>4} {:>12} {:>10} {:>10}", "scheme", "b", "est bits/v", "real b/v", "ratio");
    for cand in analysis.candidates.iter().take(3) {
        let seg = compress_with_plan(values, &cand.plan);
        assert_eq!(seg.decompress(), values);
        let stats = seg.stats();
        println!(
            "{:<12} {:>4} {:>12.2} {:>10.2} {:>9.2}x",
            cand.plan.name(),
            cand.plan.bit_width(),
            cand.est_bits_per_value,
            stats.bits_per_value,
            stats.ratio
        );
    }
    if !analysis.worthwhile() {
        println!("(advisor: store plain — no scheme beats {} bits/value)", u32::BITS);
    }
}

fn main() {
    // Clustered values: FOR territory.
    report("clustered (dates)", &(0..500_000).map(|i| 8_000 + (i * 13 % 365)).collect::<Vec<_>>());

    // Clustered with outliers: where *patched* FOR shines.
    report(
        "clustered + 1% outliers",
        &(0..500_000)
            .map(|i| if i % 100 == 0 { 4_000_000_000 } else { 8_000 + (i * 13 % 365) })
            .collect::<Vec<_>>(),
    );

    // Monotone: delta territory.
    report("monotone (keys)", &(0..500_000u32).map(|i| i * 17).collect::<Vec<_>>());

    // Skewed frequencies over a huge domain: dictionary territory.
    report(
        "skewed enum over wide domain",
        &(0..500_000)
            .map(|i| match i % 100 {
                0..=79 => 3_000_000_000u32,
                80..=98 => 12345,
                _ => 777_000_000 + i,
            })
            .collect::<Vec<_>>(),
    );

    // Incompressible noise.
    let mut x = 0x243F6A88u32;
    report(
        "uniform random noise",
        &(0..500_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x
            })
            .collect::<Vec<_>>(),
    );
}
